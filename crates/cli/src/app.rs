//! Command dispatch for the `ssdep` binary.
//!
//! Subcommands:
//!
//! * `init` — print the paper's baseline system as a JSON spec to edit;
//! * `check <spec.json> [--json] [--fix] [--deny-warnings]` — run the
//!   whole preflight diagnostic catalog in one pass (every finding, no
//!   first-error abort), optionally auto-repairing the spec; the exit
//!   status is 0 clean / 1 warnings under `--deny-warnings` / 2 errors;
//! * `validate <spec.json>` — demands, utilization, and convention
//!   warnings;
//! * `evaluate <spec.json> --scenario <scope> [--age HOURS] [--json]` —
//!   full dependability evaluation under one or more failure scenarios
//!   (`--scenario` repeats; the design is prepared once and shared);
//! * `baseline` — the paper's §4.1 case study tables;
//! * `whatif` — the paper's Table 7 comparison;
//! * `optimize [--broad]` — search the candidate space for the cheapest
//!   design under the case-study scenario mix;
//! * `search [--broad] [--checkpoint F] [--resume F] [--deadline-secs S]
//!   [--max-retries N] [--jobs N]` — the same search run as a supervised
//!   batch: per-candidate panic isolation and deadline budgets,
//!   transient-error retries, progress checkpointed to an append-only
//!   journal, `--resume` to continue a killed run without repeating
//!   work, and `--jobs` to evaluate candidates on parallel workers
//!   (byte-identical output at any job count);
//! * `inject <spec.json> [--faults <plan.json>]` — simulate the design
//!   under timed hardware faults and report the degraded-mode worst-case
//!   data loss and recovery time against the fault-free baseline.

use crate::spec::SystemSpec;
use ssdep_core::analysis::evaluate;
use ssdep_core::composite::{evaluate_composite, CompositeOutcome, CompositeScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::report;
use ssdep_core::units::{Bytes, TimeDelta};
use std::fmt::Write as _;

/// Runs the CLI for the given arguments (without the binary name) and
/// returns the text to print.
///
/// # Errors
///
/// Returns a user-facing error message.
// The binary's `main` goes through `run_with_status` for the exit code;
// this status-free form is the test suite's entry point.
#[cfg_attr(not(test), allow(dead_code))]
pub fn run(args: &[String]) -> Result<String, String> {
    run_with_status(args).0
}

/// Runs the CLI and also returns the process exit status.
///
/// Most commands exit 0 on success and 1 on error; `ssdep check` uses
/// the full ladder — 0 clean, 1 warnings under `--deny-warnings`, 2
/// errors — so scripts can branch on the outcome without parsing text.
/// `ssdep journal inspect` exits 0 for a clean journal (a torn tail
/// alone is still clean) and 1 when corrupt spans need recovery, and the
/// supervised batch commands (`search`, `sweep`) exit 3 when the run
/// completed but its checkpoint journal degraded mid-run — the results
/// are valid, but not all of them are durably journaled.
pub fn run_with_status(args: &[String]) -> (Result<String, String>, u8) {
    let rest: Vec<&String> = args.iter().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check_command(&rest),
        Some("journal") => journal_command(&rest),
        Some("search") => status_of(search_command(&rest)),
        Some("serve") => status_of(serve_command(&rest)),
        Some("sweep") => {
            let result = match rest.split_first() {
                Some((first, tail)) if !first.starts_with("--") => sweep(first, tail),
                _ => sweep("growth", &rest),
            };
            status_of(result)
        }
        _ => match dispatch(args) {
            Ok(output) => (Ok(output), 0),
            Err(message) => (Err(message), 1),
        },
    }
}

/// Folds a command's `(text, status)` success into the common
/// `(result, status)` shape, mapping errors to exit 1.
fn status_of(result: Result<(String, u8), String>) -> (Result<String, String>, u8) {
    match result {
        Ok((output, status)) => (Ok(output), status),
        Err(message) => (Err(message), 1),
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let mut iter = args.iter();
    let command = iter.next().map(String::as_str).unwrap_or("help");
    match command {
        "init" => Ok(SystemSpec::baseline().to_json()),
        "validate" => {
            let path = iter.next().ok_or("usage: ssdep validate <spec.json>")?;
            let spec = load(path)?;
            validate(&spec)
        }
        "evaluate" => {
            let path = iter.next().ok_or_else(usage_evaluate)?;
            let rest: Vec<&String> = iter.collect();
            let spec = load(path)?;
            evaluate_command(&spec, &rest)
        }
        "baseline" => baseline(),
        "whatif" => whatif(),
        "optimize" => optimize(args.contains(&"--broad".to_string())),
        "degraded" => {
            let path = iter
                .next()
                .ok_or("usage: ssdep degraded <spec.json> [--catalog <file>]")?;
            let rest: Vec<&String> = iter.collect();
            let spec = load(path)?;
            degraded(&spec, load_catalog(&rest)?)
        }
        "risk" => {
            let path = iter
                .next()
                .ok_or("usage: ssdep risk <spec.json> [--catalog <file>]")?;
            let rest: Vec<&String> = iter.collect();
            let spec = load(path)?;
            risk(&spec, load_catalog(&rest)?)
        }
        "coverage" => {
            let path = iter.next().ok_or("usage: ssdep coverage <spec.json>")?;
            let spec = load(path)?;
            coverage(&spec)
        }
        "compare" => {
            let path_a = iter
                .next()
                .ok_or("usage: ssdep compare <a.json> <b.json>")?;
            let path_b = iter
                .next()
                .ok_or("usage: ssdep compare <a.json> <b.json>")?;
            compare(&load(path_a)?, &load(path_b)?)
        }
        "report" => {
            let path = iter.next().ok_or("usage: ssdep report <spec.json>")?;
            let spec = load(path)?;
            report::render_full_report(&spec.design, &spec.workload, &spec.requirements)
                .map_err(|e| e.to_string())
        }
        "inject" => {
            let path = iter.next().ok_or_else(usage_inject)?;
            let rest: Vec<&String> = iter.collect();
            let spec = load(path)?;
            inject(&spec, &rest)
        }
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(format!("unknown command `{other}`\n\n{}", help())),
    }
}

fn usage_evaluate() -> String {
    "usage: ssdep evaluate <spec.json> [--scenario object|array|building|site|region]... \
     [--age HOURS] [--size MIB] [--json]\n\
     (--scenario repeats to evaluate several failures in one run; --age and --size \
     apply to the most recent --scenario)\n\
     composite scenario forms: correlated:<scope>+<scope>@<corr> (correlated \
     multi-scope failure), second-fault:<first>+<second> (fault during recovery), \
     human-error (corruption rolled back past --age hours)"
        .to_string()
}

fn usage_inject() -> String {
    "usage: ssdep inject <spec.json> [--faults <plan.json>] \
     [--scenario object|array|building|site|region] [--age HOURS] [--size MIB] \
     [--horizon WEEKS] [--samples N]"
        .to_string()
}

/// Renders a library error for the terminal, adding a hint for the
/// conditions a user can act on. [`ssdep_core::Error`] is
/// `#[non_exhaustive]`, so the wildcard arm — not an exhaustive match —
/// keeps this compiling (with a plain rendering) when the library grows
/// new variants.
fn render_error(e: &ssdep_core::Error) -> String {
    use ssdep_core::Error;
    match e {
        Error::FaultUnresolvable { .. } => format!(
            "{e}\nhint: check the plan's device names, level indices, and scopes \
             against the design"
        ),
        Error::NonFiniteInput { .. } => {
            format!("{e}\nhint: a numeric field in the spec or fault plan is NaN or infinite")
        }
        Error::NoRecoverySource { .. } => format!(
            "{e}\nhint: every level able to serve this scope was lost; add protection \
             levels or reduce the fault plan"
        ),
        other => other.to_string(),
    }
}

/// `ssdep serve`: run the evaluation daemon until SIGTERM/SIGINT, then
/// drain gracefully. Prints the listen address eagerly (the only
/// command that writes before returning — a daemon's port must be
/// observable while it runs), blocks until a shutdown signal, and exits
/// 0 after a clean drain.
fn serve_command(args: &[&String]) -> Result<(String, u8), String> {
    use ssdep_serve::{ServeConfig, ServeFaultPlan, Server};

    let mut config = ServeConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .map(|v| (*v).clone())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value_for("--addr")?,
            "--jobs" => {
                config.jobs = value_for("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
            }
            "--queue-depth" => {
                config.queue_depth = value_for("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?;
            }
            "--deadline-secs" => {
                let secs: f64 = value_for("--deadline-secs")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-secs: {e}"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err("--deadline-secs must be a positive number".to_string());
                }
                config.deadline = std::time::Duration::from_secs_f64(secs);
            }
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    config.fault = ServeFaultPlan::from_env().map_err(|e| e.to_string())?;

    let server = Server::start(config).map_err(|e| e.to_string())?;
    ssdep_serve::signal::install();
    // Eager: the daemon blocks from here until a signal arrives, and
    // `--addr :0` callers need the real port now, not after drain.
    println!("ssdep serve: listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let summary = server.run_until(ssdep_serve::signal::shutdown_requested);
    let status = u8::from(summary.stuck_threads > 0);
    Ok((
        format!(
            "ssdep serve: drained — {} served, {} shed, {} stuck thread(s)",
            summary.served, summary.shed, summary.stuck_threads
        ),
        status,
    ))
}

fn help() -> String {
    "ssdep — storage system dependability evaluation\n\
     \n\
     commands:\n\
       init                         print the baseline system spec (JSON)\n\
       check <spec.json> [opts]     preflight every invariant; report all findings\n\
         --json                     emit the diagnostics as stable JSON\n\
         --fix                      print the auto-repaired spec to stdout\n\
         --deny-warnings            exit 1 when warnings remain\n\
         (exit status: 0 clean, 1 denied warnings, 2 errors)\n\
       validate <spec.json>         check utilization and conventions\n\
       evaluate <spec.json> [opts]  evaluate one or more failure scenarios\n\
         --scenario <scope>         object|array|building|site|region (default array);\n\
                                    repeat to evaluate several scenarios with one\n\
                                    shared preparation pass; composite forms:\n\
                                    correlated:site+array@0.8, second-fault:array+site,\n\
                                    human-error\n\
         --age <hours>              recovery target age for the most recent\n\
                                    --scenario (default 0 = now)\n\
         --size <mib>               corrupted object size for `object` (default 1)\n\
         --json                     emit the evaluation as JSON (an array when\n\
                                    --scenario repeats)\n\
       baseline                     the paper's §4.1 case study\n\
       whatif                       the paper's Table 7 comparison\n\
       optimize [--broad]           search candidate designs for lowest cost\n\
       search [opts]                the same search as a crash-tolerant batch\n\
         --broad                    search the broad candidate space\n\
         --checkpoint <file>        journal completed evaluations (JSON lines)\n\
         --resume <file>            replay a journal, then continue into it\n\
         --deadline-secs <s>        per-candidate wall-clock budget\n\
         --max-retries <n>          retries for transient failures (default 2)\n\
         --jobs <n>                 parallel evaluation workers (default 1);\n\
                                    output is byte-identical at any job count\n\
         (search and the supervised sweeps exit 3 when the run completed\n\
         but its checkpoint journal degraded mid-run, e.g. on a full disk)\n\
       journal inspect <file> [--json]  classify a checkpoint journal's\n\
                                    records, corruption, and torn tail\n\
                                    (exit 0 clean, 1 needs recovery)\n\
       journal recover <file> [--json]  quarantine corrupt lines into\n\
                                    <file>.quarantine and keep the rest\n\
       degraded <spec.json>         exposure matrix with each level out of service\n\
       risk <spec.json>             annualized availability / loss profile\n\
       coverage <spec.json>         which failure scopes the design survives\n\
       sweep [growth|links|vault|backup]  sensitivity sweep on the case study\n\
         --json                     emit the series as stable JSON\n\
         (links|vault|backup also take the supervisor flags above)\n\
       serve [opts]                 run the HTTP evaluation daemon until\n\
                                    SIGTERM/SIGINT, then drain in-flight work\n\
                                    and exit 0; endpoints: POST /evaluate,\n\
                                    POST /sweep (JSON-lines stream),\n\
                                    GET /healthz, GET /metrics\n\
         --addr <host:port>         listen address (default 127.0.0.1:7878;\n\
                                    port 0 picks a free port)\n\
         --jobs <n>                 worker threads (default 4)\n\
         --queue-depth <n>          admission queue depth; arrivals past it\n\
                                    are shed with 429 Retry-After (default 32)\n\
         --deadline-secs <s>        per-request evaluation deadline; over it\n\
                                    the request is answered 504 (default 10)\n\
         (SSDEP_SERVE_FAULT=slow|queue-full|journal-eio@N[@seed] injects a\n\
         deterministic fault into the Nth accepted request)\n\
       compare <a.json> <b.json>    side-by-side evaluation of two designs\n\
       report <spec.json>           the full dependability dossier\n\
       inject <spec.json> [opts]    simulate timed hardware faults\n\
         --faults <plan.json>       fault plan (default: the spec's `faults` section)\n\
         --scenario <scope>         failure to recover from (default array)\n\
         --horizon <weeks>          simulated span (default 16)\n\
         --samples <n>              failure instants to sweep (default 48)\n"
        .to_string()
}

fn load(path: &str) -> Result<SystemSpec, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    SystemSpec::from_json(&json)
}

/// Resolves one scope name, using `size_mib` for `object` scopes.
fn resolve_scope(scope_name: &str, size_mib: f64) -> Result<FailureScope, String> {
    match scope_name {
        "object" => Ok(FailureScope::DataObject {
            size: Bytes::from_mib(size_mib),
        }),
        "array" => Ok(FailureScope::Array),
        "building" => Ok(FailureScope::Building),
        "site" => Ok(FailureScope::Site),
        "region" => Ok(FailureScope::Region),
        other => Err(format!("unknown scenario `{other}`")),
    }
}

/// A positive age means point-in-time recovery; zero means "now".
fn resolve_target(age_hours: f64) -> RecoveryTarget {
    if age_hours > 0.0 {
        RecoveryTarget::Before {
            age: TimeDelta::from_hours(age_hours),
        }
    } else {
        RecoveryTarget::Now
    }
}

/// Builds one scenario from its parsed scope name, recovery-target age,
/// and (for `object`) corrupted-object size.
fn resolve_scenario(
    scope_name: &str,
    age_hours: f64,
    size_mib: f64,
) -> Result<FailureScenario, String> {
    Ok(FailureScenario::new(
        resolve_scope(scope_name, size_mib)?,
        resolve_target(age_hours),
    ))
}

/// Builds one possibly-composite scenario from its parsed name:
///
/// * a plain scope name (`array`) lowers to a single-fault scenario;
/// * `correlated:<scope>+<scope>[+...]@<corr>` is a correlated
///   multi-scope failure with correlation factor `corr` in (0, 1];
/// * `second-fault:<first>+<second>` is a fault striking during the
///   recovery from a first fault;
/// * `human-error` is a corrupting operator mistake, sized by `--size`
///   and rolled back past `--age` hours (default 24).
fn resolve_composite(
    name: &str,
    age_hours: f64,
    size_mib: f64,
) -> Result<CompositeScenario, String> {
    if let Some(rest) = name.strip_prefix("correlated:") {
        let (scopes_part, corr_part) = rest.split_once('@').ok_or_else(|| {
            format!(
                "`{name}`: correlated scenarios need `@<correlation>` \
                 (e.g. correlated:site+array@0.8)"
            )
        })?;
        let scopes = scopes_part
            .split('+')
            .map(|scope| resolve_scope(scope, size_mib))
            .collect::<Result<Vec<_>, _>>()?;
        let correlation = corr_part
            .parse()
            .map_err(|e| format!("bad correlation `{corr_part}`: {e}"))?;
        return Ok(CompositeScenario::Correlated {
            scopes,
            correlation,
            target: resolve_target(age_hours),
        });
    }
    if let Some(rest) = name.strip_prefix("second-fault:") {
        let (first, second) = rest.split_once('+').ok_or_else(|| {
            format!(
                "`{name}`: second-fault scenarios need `<first>+<second>` \
                 (e.g. second-fault:array+site)"
            )
        })?;
        return Ok(CompositeScenario::SecondFault {
            first: resolve_scope(first, size_mib)?,
            second: resolve_scope(second, size_mib)?,
            target: resolve_target(age_hours),
        });
    }
    if name == "human-error" {
        let age = if age_hours > 0.0 { age_hours } else { 24.0 };
        return Ok(CompositeScenario::HumanError {
            size: Bytes::from_mib(size_mib),
            age: TimeDelta::from_hours(age),
        });
    }
    Ok(CompositeScenario::Single {
        scenario: resolve_scenario(name, age_hours, size_mib)?,
    })
}

/// Parses a *single* scenario: the last `--scenario` wins and `--age`/
/// `--size` are order-independent. `inject` uses this form.
fn parse_scenario(args: &[&String]) -> Result<FailureScenario, String> {
    let mut scope_name = "array".to_string();
    let mut age_hours = 0.0f64;
    let mut size_mib = 1.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scenario" => {
                scope_name = iter.next().ok_or("--scenario needs a value")?.to_string();
            }
            "--age" => {
                age_hours = iter
                    .next()
                    .ok_or("--age needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --age: {e}"))?;
            }
            "--size" => {
                size_mib = iter
                    .next()
                    .ok_or("--size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --size: {e}"))?;
            }
            "--json" => {}
            other => return Err(format!("unknown option `{other}`\n{}", usage_evaluate())),
        }
    }
    resolve_scenario(&scope_name, age_hours, size_mib)
}

/// One scenario's worth of flags, before the scope name is resolved.
struct ScenarioSpec {
    scope_name: String,
    age_hours: Option<f64>,
    size_mib: Option<f64>,
}

/// Parses the `evaluate` command's scenario list, composite forms
/// included (see [`resolve_composite`]). Each `--scenario` opens a new
/// scenario and `--age`/`--size` bind to the most recent one; flags seen
/// *before* the first `--scenario` apply to the first scenario unless it
/// sets its own, which keeps single-scenario invocations
/// order-independent exactly as they always were. With no `--scenario`
/// at all the default is one array failure.
fn parse_scenarios(args: &[&String]) -> Result<Vec<CompositeScenario>, String> {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut pending_age: Option<f64> = None;
    let mut pending_size: Option<f64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scenario" => specs.push(ScenarioSpec {
                scope_name: iter.next().ok_or("--scenario needs a value")?.to_string(),
                age_hours: None,
                size_mib: None,
            }),
            "--age" => {
                let age = iter
                    .next()
                    .ok_or("--age needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --age: {e}"))?;
                match specs.last_mut() {
                    Some(spec) => spec.age_hours = Some(age),
                    None => pending_age = Some(age),
                }
            }
            "--size" => {
                let size = iter
                    .next()
                    .ok_or("--size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --size: {e}"))?;
                match specs.last_mut() {
                    Some(spec) => spec.size_mib = Some(size),
                    None => pending_size = Some(size),
                }
            }
            "--json" => {}
            other => return Err(format!("unknown option `{other}`\n{}", usage_evaluate())),
        }
    }
    if specs.is_empty() {
        specs.push(ScenarioSpec {
            scope_name: "array".to_string(),
            age_hours: None,
            size_mib: None,
        });
    }
    specs[0].age_hours = specs[0].age_hours.or(pending_age);
    specs[0].size_mib = specs[0].size_mib.or(pending_size);
    specs
        .iter()
        .map(|spec| {
            resolve_composite(
                &spec.scope_name,
                spec.age_hours.unwrap_or(0.0),
                spec.size_mib.unwrap_or(1.0),
            )
        })
        .collect()
}

fn usage_check() -> String {
    "usage: ssdep check <spec.json> [--json] [--fix] [--deny-warnings]".to_string()
}

/// The stable machine-readable shape of `ssdep check --json`.
#[derive(serde::Serialize)]
struct CheckReport {
    diagnostics: Vec<ssdep_core::diagnose::Diagnostic>,
    summary: CheckSummary,
}

/// Severity counts for [`CheckReport`].
#[derive(serde::Serialize)]
struct CheckSummary {
    errors: usize,
    warnings: usize,
    hints: usize,
}

/// The `D090` diagnostic: the spec file itself failed to parse, with the
/// parser's position folded into the path so `--json` consumers get it
/// without re-parsing the message.
fn parse_diagnostic(error: &crate::spec::SpecError) -> ssdep_core::diagnose::Diagnostic {
    use ssdep_core::diagnose::{Diagnostic, Severity};
    let path = match (error.line, error.column) {
        (Some(line), Some(column)) => format!("spec:{line}:{column}"),
        _ => "spec".to_string(),
    };
    Diagnostic {
        code: "D090".to_string(),
        severity: Severity::Error,
        path,
        message: error.message.clone(),
        suggestion: "fix the JSON syntax or field shape at the reported position".to_string(),
        fixable: false,
    }
}

/// Renders a diagnostic list for the terminal or (with `as_json`) as the
/// stable [`CheckReport`] JSON, and returns the exit status: 0 clean, 1
/// warnings present under `--deny-warnings`, 2 errors present.
fn render_check(
    diagnostics: Vec<ssdep_core::diagnose::Diagnostic>,
    as_json: bool,
    deny_warnings: bool,
    header: &str,
) -> (Result<String, String>, u8) {
    use ssdep_core::diagnose::Severity;
    let count = |severity: Severity| {
        diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    };
    let (errors, warnings, hints) = (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Hint),
    );
    let status = if errors > 0 {
        2
    } else if warnings > 0 && deny_warnings {
        1
    } else {
        0
    };
    if as_json {
        let report = CheckReport {
            diagnostics,
            summary: CheckSummary {
                errors,
                warnings,
                hints,
            },
        };
        return (
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string()),
            status,
        );
    }
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    for diagnostic in &diagnostics {
        let _ = writeln!(out, "{diagnostic}");
        if !diagnostic.suggestion.is_empty() {
            let _ = writeln!(out, "  fix: {}", diagnostic.suggestion);
        }
    }
    let _ = writeln!(
        out,
        "summary: {errors} error{}, {warnings} warning{}, {hints} hint{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
        if hints == 1 { "" } else { "s" },
    );
    (Ok(out), status)
}

/// `ssdep check`: run the full preflight catalog over a spec and report
/// every finding in one pass — no first-error abort.
fn check_command(args: &[&String]) -> (Result<String, String>, u8) {
    let mut path = None;
    let mut as_json = false;
    let mut fix = false;
    let mut deny_warnings = false;
    for arg in args {
        match arg.as_str() {
            "--json" => as_json = true,
            "--fix" => fix = true,
            "--deny-warnings" => deny_warnings = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other),
            other => {
                return (
                    (Err(format!("unknown option `{other}`\n{}", usage_check()))),
                    1,
                )
            }
        }
    }
    let Some(path) = path else {
        return (Err(usage_check()), 1);
    };
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => return (Err(format!("cannot read {path}: {e}")), 1),
    };
    // A spec that does not even parse is still a *diagnostic*, not an
    // opaque failure: D090 with the parser's line/column.
    let spec = match SystemSpec::from_json_detailed(&json) {
        Ok(spec) => spec,
        Err(error) => {
            return render_check(
                vec![parse_diagnostic(&error)],
                as_json,
                deny_warnings,
                &format!("check: {path}"),
            )
        }
    };
    let scenarios: Vec<FailureScenario> = default_catalog()
        .into_iter()
        .map(|w| w.scenario.as_ref().clone())
        .collect();
    if fix {
        let repaired = ssdep_core::diagnose::repair(&spec.design, &spec.workload, &scenarios);
        let after = ssdep_core::diagnose::preflight_with_composites(
            &repaired.design,
            &spec.workload,
            &scenarios,
            &spec.scenarios,
        );
        let status = u8::from(after.has_errors()) * 2;
        let fixed = SystemSpec {
            design: repaired.design,
            ..spec
        };
        // Stdout carries only the repaired spec so it pipes straight to
        // a file; re-run `check` on the result to see what remains.
        return (Ok(fixed.to_json()), status);
    }
    let report = ssdep_core::diagnose::preflight_with_composites(
        &spec.design,
        &spec.workload,
        &scenarios,
        &spec.scenarios,
    );
    render_check(
        report.diagnostics().to_vec(),
        as_json,
        deny_warnings,
        &format!("check: {path} (design: {})", spec.design.name()),
    )
}

fn validate(spec: &SystemSpec) -> Result<String, String> {
    let mut out = String::new();
    let utilization = ssdep_core::analysis::utilization(&spec.design, &spec.workload)
        .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "design: {}", spec.design.name());
    for warning in spec.design.convention_warnings() {
        let _ = writeln!(out, "warning: {warning}");
    }
    for device in &utilization.devices {
        let _ = writeln!(
            out,
            "{:<16} bandwidth {:>8}   capacity {:>8}",
            device.device_name, device.bandwidth_utilization, device.capacity_utilization
        );
    }
    let _ = writeln!(
        out,
        "system: bandwidth {} capacity {}",
        utilization.system_bandwidth, utilization.system_capacity
    );
    match utilization.check() {
        Ok(()) => {
            let _ = writeln!(out, "feasible: yes");
        }
        Err(e) => {
            let _ = writeln!(out, "feasible: NO — {e}");
        }
    }
    Ok(out)
}

fn evaluate_command(spec: &SystemSpec, args: &[&String]) -> Result<String, String> {
    // The spec's own `scenarios` section is the default composite list;
    // any explicit `--scenario` replaces it.
    let composites = if args.iter().any(|a| a.as_str() == "--scenario") || spec.scenarios.is_empty()
    {
        parse_scenarios(args)?
    } else {
        spec.scenarios.clone()
    };
    let as_json = args.iter().any(|a| a.as_str() == "--json");
    // All-plain-scope requests keep the original single-fault paths (and
    // their byte-identical output); any composite form switches to the
    // composite report.
    let singles: Option<Vec<FailureScenario>> = composites
        .iter()
        .map(|composite| match composite {
            CompositeScenario::Single { scenario } => Some(scenario.clone()),
            _ => None,
        })
        .collect();
    let Some(scenarios) = singles else {
        return evaluate_composites(spec, &composites, as_json);
    };
    if let [scenario] = scenarios.as_slice() {
        // The single-scenario path goes through the legacy entry point
        // (itself a thin wrapper over the staged pipeline) so its output
        // stays byte-identical to every earlier release.
        let evaluation = evaluate(&spec.design, &spec.workload, &spec.requirements, scenario)
            .map_err(|e| e.to_string())?;
        if as_json {
            return serde_json::to_string_pretty(&evaluation).map_err(|e| e.to_string());
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "design: {}   scenario: {}",
            spec.design.name(),
            scenario
        );
        let _ = writeln!(
            out,
            "\n== Utilization ==\n{}",
            report::render_utilization(&evaluation)
        );
        let _ = writeln!(
            out,
            "== Dependability ==\n{}",
            report::render_dependability(std::slice::from_ref(&evaluation))
        );
        let _ = writeln!(
            out,
            "== Recovery timeline ==\n{}",
            report::render_recovery_timeline(&evaluation)
        );
        let _ = writeln!(out, "== Costs ==\n{}", report::render_costs(&evaluation));
        if evaluation.meets_objectives(&spec.requirements) {
            let _ = writeln!(out, "objectives: met");
        } else {
            let _ = writeln!(out, "objectives: MISSED");
        }
        return Ok(out);
    }
    // Several scenarios share one PreparedDesign: demands, utilization,
    // and propagation ranges are computed once, not once per scenario.
    let prepared = ssdep_core::analysis::PreparedDesign::prepare(&spec.design, &spec.workload)
        .map_err(|e| e.to_string())?;
    let mut evaluations = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        evaluations.push(
            prepared
                .evaluate_scenario(&spec.requirements, scenario)
                .map_err(|e| format!("{scenario}: {e}"))?,
        );
    }
    if as_json {
        return serde_json::to_string_pretty(&evaluations).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design: {}   scenarios: {} (prepared once)",
        spec.design.name(),
        scenarios.len()
    );
    let _ = writeln!(
        out,
        "\n== Utilization ==\n{}",
        report::render_utilization(&evaluations[0])
    );
    let _ = writeln!(
        out,
        "== Dependability ==\n{}",
        report::render_dependability(&evaluations)
    );
    for evaluation in &evaluations {
        let _ = writeln!(
            out,
            "== Recovery timeline: {} ==\n{}",
            evaluation.scenario,
            report::render_recovery_timeline(evaluation)
        );
        let _ = writeln!(
            out,
            "== Costs: {} ==\n{}",
            evaluation.scenario,
            report::render_costs(evaluation)
        );
    }
    let met = evaluations
        .iter()
        .filter(|e| e.meets_objectives(&spec.requirements))
        .count();
    if met == evaluations.len() {
        let _ = writeln!(out, "objectives: met under every scenario");
    } else {
        let _ = writeln!(
            out,
            "objectives: MISSED under {} of {} scenarios",
            evaluations.len() - met,
            evaluations.len()
        );
    }
    Ok(out)
}

/// Evaluates and renders a composite-scenario list: the design is
/// prepared once, each composite lowers onto the single-fault machinery,
/// and the report leads with the end-to-end recovery math (prior
/// recovery + inflated main recovery) the composite adds on top of the
/// plain evaluation.
fn evaluate_composites(
    spec: &SystemSpec,
    composites: &[CompositeScenario],
    as_json: bool,
) -> Result<String, String> {
    let prepared = ssdep_core::analysis::PreparedDesign::prepare(&spec.design, &spec.workload)
        .map_err(|e| e.to_string())?;
    let mut outcomes: Vec<CompositeOutcome> = Vec::with_capacity(composites.len());
    for composite in composites {
        outcomes.push(
            evaluate_composite(&prepared, &spec.requirements, composite)
                .map_err(|e| format!("{composite}: {e}"))?,
        );
    }
    if as_json {
        return serde_json::to_string_pretty(&outcomes).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design: {}   composite scenarios: {} (prepared once)",
        spec.design.name(),
        outcomes.len()
    );
    for outcome in &outcomes {
        let _ = writeln!(out, "\n== {} ==", outcome.composite);
        let _ = writeln!(out, "lowered to: {}", outcome.scenario);
        if let Some(prior) = &outcome.prior_recovery {
            let _ = writeln!(
                out,
                "first-fault recovery: {:.1} hr",
                prior.total_time.as_hours()
            );
        }
        if (outcome.recovery_inflation - 1.0).abs() > 1e-12 {
            let _ = writeln!(
                out,
                "recovery inflation: x{:.2}",
                outcome.recovery_inflation
            );
        }
        let _ = writeln!(
            out,
            "worst-case data loss: {:.2} hr (source: {})",
            outcome.evaluation.loss.worst_loss.as_hours(),
            outcome
                .evaluation
                .loss
                .source_level_name()
                .unwrap_or("none"),
        );
        let _ = writeln!(
            out,
            "end-to-end recovery: {:.1} hr",
            outcome.total_recovery.as_hours()
        );
        let _ = writeln!(
            out,
            "== Recovery timeline: {} ==\n{}",
            outcome.scenario,
            report::render_recovery_timeline(&outcome.evaluation)
        );
    }
    Ok(out)
}

fn baseline() -> Result<String, String> {
    let spec = SystemSpec::baseline();
    let scenarios = [
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ];
    let mut evaluations = Vec::new();
    for scenario in &scenarios {
        evaluations.push(
            evaluate(&spec.design, &spec.workload, &spec.requirements, scenario)
                .map_err(|e| e.to_string())?,
        );
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Normal mode utilization (paper Table 5) ==\n{}",
        report::render_utilization(&evaluations[0])
    );
    let _ = writeln!(
        out,
        "== Dependability (paper Table 6) ==\n{}",
        report::render_dependability(&evaluations)
    );
    for evaluation in &evaluations {
        let _ = writeln!(
            out,
            "== Costs under {} failure (paper Figure 5) ==\n{}",
            evaluation.scenario.scope.name(),
            report::render_costs(evaluation)
        );
    }
    Ok(out)
}

fn whatif() -> Result<String, String> {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let mut table = report::TextTable::new([
        "Storage system design",
        "Outlays",
        "Array RT",
        "Array DL",
        "Array total",
        "Site RT",
        "Site DL",
        "Site total",
    ]);
    for design in ssdep_core::presets::what_if_designs() {
        let array = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        )
        .map_err(|e| format!("{}: {e}", design.name()))?;
        let site = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        )
        .map_err(|e| format!("{}: {e}", design.name()))?;
        table.row([
            design.name().to_string(),
            array.cost.total_outlays.to_string(),
            format!("{:.1} hr", array.recovery.total_time.as_hours()),
            format!("{:.2} hr", array.loss.worst_loss.as_hours()),
            array.cost.total_cost.to_string(),
            format!("{:.1} hr", site.recovery.total_time.as_hours()),
            format!("{:.2} hr", site.loss.worst_loss.as_hours()),
            site.cost.total_cost.to_string(),
        ]);
    }
    Ok(format!(
        "== What-if scenarios (paper Table 7) ==\n{}",
        table.render()
    ))
}

/// Parses an optional `--catalog <file>` argument: a JSON array of
/// weighted scenarios, falling back to [`default_catalog`].
fn load_catalog(args: &[&String]) -> Result<Vec<ssdep_core::analysis::WeightedScenario>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.as_str() == "--catalog" {
            let path = iter.next().ok_or("--catalog needs a file path")?;
            let json = std::fs::read_to_string(path.as_str())
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            return serde_json::from_str(&json).map_err(|e| format!("invalid catalog: {e}"));
        }
    }
    Ok(default_catalog())
}

/// The default weighted scenario catalog used by `degraded` and `risk`:
/// monthly object corruption, an array loss per decade, a site disaster
/// per half-century.
fn default_catalog() -> Vec<ssdep_core::analysis::WeightedScenario> {
    use ssdep_core::analysis::WeightedScenario;
    vec![
        WeightedScenario::new(
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(24.0),
                },
            ),
            12.0,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            0.1,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            0.02,
        ),
    ]
}

fn degraded(
    spec: &SystemSpec,
    catalog: Vec<ssdep_core::analysis::WeightedScenario>,
) -> Result<String, String> {
    use ssdep_core::analysis::{degraded_exposure, DegradedOutcome};
    let scenarios: Vec<FailureScenario> = catalog
        .into_iter()
        .map(|w| w.scenario.as_ref().clone())
        .collect();
    let report = degraded_exposure(&spec.design, &spec.workload, &spec.requirements, &scenarios)
        .map_err(|e| e.to_string())?;
    let mut headers = vec!["Degraded level".to_string()];
    headers.extend(
        scenarios
            .iter()
            .map(|s| format!("{} failure", s.scope.name())),
    );
    let mut table = report::TextTable::new(headers);
    for row in &report.rows {
        let mut cells = vec![row.level_name.clone()];
        for outcome in &row.outcomes {
            cells.push(match outcome {
                DegradedOutcome::Recoverable { extra_loss, .. } if extra_loss.is_zero() => {
                    "no change".to_string()
                }
                DegradedOutcome::Recoverable { extra_loss, .. } => {
                    format!("+{:.0} hr loss", extra_loss.as_hours())
                }
                DegradedOutcome::Unrecoverable => "UNRECOVERABLE".to_string(),
            });
        }
        table.row(cells);
    }
    let mut out = format!(
        "== Degraded-mode exposure: {} ==\n{}",
        spec.design.name(),
        table.render()
    );
    if let Some(critical) = report.most_critical_level() {
        out.push_str(&format!("most critical level: {}\n", critical.level_name));
    }
    Ok(out)
}

fn risk(
    spec: &SystemSpec,
    catalog: Vec<ssdep_core::analysis::WeightedScenario>,
) -> Result<String, String> {
    let summary: Vec<String> = catalog
        .iter()
        .map(|w| format!("{} x{}/yr", w.scenario.scope.name(), w.annual_frequency))
        .collect();
    let profile = ssdep_core::analysis::risk_profile(
        &spec.design,
        &spec.workload,
        &spec.requirements,
        &catalog,
    )
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "== Annualized risk profile: {} ==\n\
         availability:        {:.6} ({:.1} nines)\n\
         expected downtime:   {:.2} hr/yr\n\
         expected data loss:  {:.0} hr/yr of updates\n\
         expected total cost: {}/yr\n\
         worst-case recovery: {:.1} hr   worst-case loss: {:.0} hr\n\
         (catalog: {catalog_summary})\n",
        spec.design.name(),
        profile.availability,
        profile.nines(),
        profile.expected_annual_downtime.as_hours(),
        profile.expected_annual_loss.as_hours(),
        profile.expected_annual_cost,
        profile.worst_case_recovery.as_hours(),
        profile.worst_case_loss.as_hours(),
        catalog_summary = summary.join(", "),
    ))
}

fn compare(spec_a: &SystemSpec, spec_b: &SystemSpec) -> Result<String, String> {
    // Apples to apples: design B is evaluated under design A's workload
    // and requirements.
    let comparison = ssdep_core::analysis::compare::compare(
        &spec_a.design,
        &spec_b.design,
        &spec_a.workload,
        &spec_a.requirements,
        &ssdep_core::presets::paper_failure_scenarios(),
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!(
        "== Comparing `{}` (A) with `{}` (B) ==\n{}",
        comparison.name_a,
        comparison.name_b,
        ssdep_core::analysis::compare::render(&comparison)
    );
    if comparison.b_dominates() {
        out.push_str("B dominates A: better or equal everywhere, strictly better somewhere\n");
    }
    Ok(out)
}

fn coverage(spec: &SystemSpec) -> Result<String, String> {
    use ssdep_core::analysis::coverage::{coverage, default_ladder, ScopeCoverage};
    let report = coverage(
        &spec.design,
        &spec.workload,
        &spec.requirements,
        &default_ladder(),
    )
    .map_err(|e| e.to_string())?;
    let mut table =
        report::TextTable::new(["Failure scope", "Covered", "Recovery time", "Data loss"]);
    for row in &report.rows {
        match &row.coverage {
            ScopeCoverage::Covered { evaluation } => table.row([
                row.scope.name().to_string(),
                "yes".to_string(),
                report::paper_time(evaluation.recovery.total_time),
                format!("{:.0} hr", evaluation.loss.worst_loss.as_hours()),
            ]),
            ScopeCoverage::NotCovered { reason } => table.row([
                row.scope.name().to_string(),
                format!("NO — {reason}"),
                String::new(),
                String::new(),
            ]),
        };
    }
    let mut out = format!(
        "== Failure coverage: {} ==\n{}",
        spec.design.name(),
        table.render()
    );
    out.push_str(if report.fully_covered() {
        "every scope on the ladder is covered\n"
    } else {
        "some scopes are NOT covered — see rows above\n"
    });
    Ok(out)
}

/// Parses the shared supervisor flags (`--checkpoint`, `--resume`,
/// `--deadline-secs`, `--max-retries`, `--jobs`) out of `args`,
/// returning the configuration, whether any supervisor flag was
/// present, and the arguments left over for the command to interpret.
///
/// `--resume F` without `--checkpoint` also appends new progress to `F`,
/// so an interrupted run can be resumed repeatedly with one flag. The
/// `SSDEP_CRASH_AFTER=<n>` and `SSDEP_JOURNAL_FAULT=<kind@N[@seed]>`
/// environment variables arm test-only hooks (a crash after `n`
/// journaled evaluations; injected journal storage faults) parsed by
/// [`ssdep_opt::SupervisorConfig::apply_env_hooks`] — they exist for the
/// crash-resume and chaos smoke tests in `ci.sh`.
fn parse_supervisor_flags<'a>(
    args: &[&'a String],
) -> Result<(ssdep_opt::SupervisorConfig, bool, Vec<&'a String>), String> {
    let mut config = ssdep_opt::SupervisorConfig::default();
    let mut any = false;
    let mut leftover = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--checkpoint" => {
                let path = iter.next().ok_or("--checkpoint needs a file path")?;
                config.checkpoint = Some(std::path::PathBuf::from(path.as_str()));
                any = true;
            }
            "--resume" => {
                let path = iter.next().ok_or("--resume needs a file path")?;
                config.resume = Some(std::path::PathBuf::from(path.as_str()));
                any = true;
            }
            "--deadline-secs" => {
                let secs: f64 = iter
                    .next()
                    .ok_or("--deadline-secs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-secs: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--deadline-secs must be a positive number".to_string());
                }
                config.deadline = Some(std::time::Duration::from_secs_f64(secs));
                any = true;
            }
            "--max-retries" => {
                let retries: u32 = iter
                    .next()
                    .ok_or("--max-retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-retries: {e}"))?;
                config.retry = ssdep_core::RetryPolicy::new(retries)
                    .with_jitter(ssdep_opt::supervisor::RETRY_JITTER_SEED);
                any = true;
            }
            "--jobs" => {
                let jobs: usize = iter
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                config.jobs = jobs;
                any = true;
            }
            _ => leftover.push(*arg),
        }
    }
    if config.checkpoint.is_none() {
        config.checkpoint = config.resume.clone();
    }
    // The crash/fault env hooks are parsed by the library so binaries
    // and integration tests share one implementation.
    let config = config.apply_env_hooks().map_err(|e| e.to_string())?;
    Ok((config, any, leftover))
}

/// Renders a supervised run's provenance and quarantine for any
/// batch command's output header.
fn render_provenance(provenance: &ssdep_opt::Provenance, failed: &[String]) -> String {
    let mut out = format!("provenance: {}\n", provenance.summary());
    for line in failed {
        let _ = writeln!(out, "quarantined: {line}");
    }
    out
}

/// The stable machine-readable shape of `ssdep sweep <axis> --json`:
/// the same JSON at any `--jobs` count, so scripts can diff runs
/// byte-for-byte.
#[derive(serde::Serialize)]
struct SweepReport {
    axis: String,
    series: ssdep_opt::sweep::SweepSeries,
    provenance: ssdep_opt::Provenance,
}

fn sweep(axis: &str, rest: &[&String]) -> Result<(String, u8), String> {
    use ssdep_opt::sweep::{self, GrowthPoint, SweepSeries};
    let (config, supervised, leftover) = parse_supervisor_flags(rest)?;
    let mut as_json = false;
    for arg in &leftover {
        match arg.as_str() {
            "--json" => as_json = true,
            unknown => {
                return Err(format!(
                    "unknown sweep option `{unknown}` \
                     (--checkpoint|--resume|--deadline-secs|--max-retries|--jobs|--json)"
                ))
            }
        }
    }
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = default_catalog();

    let render_series = |series: &SweepSeries, title: &str, axis_label: &str| {
        let mut out = format!(
            "== {title} ==\n{}",
            sweep::render(&series.points, axis_label)
        );
        for broken in &series.broken {
            let _ = writeln!(
                out,
                "broken: {axis_label} = {}: {}",
                broken.value, broken.reason
            );
        }
        out
    };

    // The supervised axes share one driver; growth keeps its bespoke
    // feasibility-aware loop and does not take supervisor flags.
    let supervised_axis = |title: &str,
                           axis_label: &str,
                           values: &[f64],
                           make: fn(
        f64,
    ) -> Result<
        ssdep_core::hierarchy::StorageDesign,
        ssdep_core::Error,
    >,
                           scenarios: &[ssdep_core::analysis::WeightedScenario]|
     -> Result<(String, u8), String> {
        let run = sweep::supervised_sweep(
            axis_label,
            values,
            make,
            &workload,
            &requirements,
            scenarios,
            &ssdep_opt::Supervisor::new(config.clone()),
        )
        .map_err(|e| e.to_string())?;
        let status = if run.provenance.journal_degraded {
            3
        } else {
            0
        };
        if as_json {
            let text = serde_json::to_string_pretty(&SweepReport {
                axis: axis_label.to_string(),
                series: run.series,
                provenance: run.provenance,
            })
            .map_err(|e| e.to_string())?;
            return Ok((text, status));
        }
        let failed: Vec<String> = run
            .failed
            .iter()
            .map(|f| {
                format!(
                    "{axis_label} = {}: {} [{} after {} attempt{}]",
                    f.candidate.value,
                    f.error,
                    f.kind,
                    f.attempts,
                    if f.attempts == 1 { "" } else { "s" }
                )
            })
            .collect();
        let mut out = render_provenance(&run.provenance, &failed);
        if let Some(journal_error) = &run.journal_error {
            let _ = writeln!(out, "caveat: checkpoint journal lost mid-run ({journal_error}); rerun once space/IO recovers to re-checkpoint");
        }
        let _ = write!(out, "{}", render_series(&run.series, title, axis_label));
        Ok((out, status))
    };

    match axis {
        "growth" => {
            if supervised {
                return Err(
                    "the growth sweep does not take supervisor flags; use them with \
                     the links|vault|backup axes or `ssdep search`"
                        .to_string(),
                );
            }
            let design = ssdep_core::presets::baseline_design();
            let points = sweep::sweep_growth(
                &[0.5, 0.75, 1.0, 1.05, 1.1, 1.25, 1.5],
                &design,
                &workload,
                &requirements,
                &scenarios,
            )
            .map_err(|e| e.to_string())?;
            if as_json {
                let text = serde_json::to_string_pretty(&points).map_err(|e| e.to_string())?;
                return Ok((text, 0));
            }
            let mut table = report::TextTable::new(["Growth", "Outcome"]);
            for point in &points {
                match point {
                    GrowthPoint::Feasible { factor, point } => table.row([
                        format!("{factor:.2}x"),
                        format!(
                            "outlays {}, E[total] {}",
                            point.outlays, point.expected_total
                        ),
                    ]),
                    GrowthPoint::Infeasible { factor, reason } => {
                        table.row([format!("{factor:.2}x"), format!("INFEASIBLE — {reason}")])
                    }
                };
            }
            Ok((
                format!(
                    "== Dataset growth sweep (baseline design) ==\n{}",
                    table.render()
                ),
                0,
            ))
        }
        "links" => {
            let hw: Vec<_> = scenarios.into_iter().skip(1).collect();
            supervised_axis(
                "WAN link sweep",
                "links",
                &[1.0, 2.0, 4.0, 8.0, 16.0],
                sweep::mirror_links_design,
                &hw,
            )
        }
        "vault" => supervised_axis(
            "Vault interval sweep",
            "weeks",
            &[1.0, 2.0, 4.0, 8.0],
            sweep::vault_interval_design,
            &scenarios,
        ),
        "backup" => supervised_axis(
            "Backup interval sweep",
            "hours",
            &[24.0, 48.0, 96.0, 168.0],
            sweep::backup_interval_design,
            &scenarios,
        ),
        other => Err(format!(
            "unknown sweep axis `{other}` (growth|links|vault|backup)"
        )),
    }
}

/// `ssdep journal inspect|recover <path> [--json]` — checkpoint-journal
/// forensics. `inspect` classifies every line without modifying the
/// file and exits 1 when corrupt spans need recovery (0 for a clean
/// journal, torn tail included); `recover` moves corrupt lines into a
/// `<path>.quarantine` sidecar, atomically rewrites the journal with
/// only intact records, and exits 0.
fn journal_command(args: &[&String]) -> (Result<String, String>, u8) {
    let usage = "usage: ssdep journal inspect|recover <path> [--json]";
    let mut as_json = false;
    let mut positional: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => as_json = true,
            other if other.starts_with("--") => {
                return (Err(format!("unknown journal option `{other}`\n{usage}")), 1)
            }
            other => positional.push(other),
        }
    }
    let (action, path) = match positional[..] {
        [action, path] => (action, path),
        _ => return (Err(usage.to_string()), 1),
    };
    match action {
        "inspect" => match ssdep_opt::inspect_journal(path) {
            Ok(report) => {
                let status = if report.is_clean() { 0 } else { 1 };
                let text = if as_json {
                    match serde_json::to_string_pretty(&report) {
                        Ok(text) => text,
                        Err(e) => return (Err(e.to_string()), 1),
                    }
                } else {
                    render_inspect(&report)
                };
                (Ok(text), status)
            }
            Err(e) => (Err(e.to_string()), 1),
        },
        "recover" => match ssdep_opt::salvage_journal(path) {
            Ok(report) => {
                let text = if as_json {
                    match serde_json::to_string_pretty(&report) {
                        Ok(text) => text,
                        Err(e) => return (Err(e.to_string()), 1),
                    }
                } else {
                    render_salvage(&report)
                };
                (Ok(text), 0)
            }
            Err(e) => (Err(e.to_string()), 1),
        },
        other => (Err(format!("unknown journal action `{other}`\n{usage}")), 1),
    }
}

fn render_inspect(report: &ssdep_opt::InspectReport) -> String {
    let mut out = format!("journal: {}\n", report.path);
    let _ = writeln!(
        out,
        "lines: {} ({} v2 records, {} v1 records)",
        report.lines, report.v2_records, report.v1_records
    );
    let _ = writeln!(
        out,
        "max sequence: {} ({} missing)",
        report.max_seq, report.missing_seqs
    );
    if report.torn_tail {
        let _ = writeln!(out, "torn tail: yes (crash artifact; dropped on resume)");
    }
    for span in &report.corrupt_spans {
        let _ = writeln!(
            out,
            "corrupt: lines {}-{} ({} bytes): {}",
            span.first_line, span.last_line, span.bytes, span.reason
        );
    }
    if report.is_clean() {
        let _ = writeln!(out, "verdict: clean — resumes as-is");
    } else {
        let _ = writeln!(
            out,
            "verdict: CORRUPT — run `ssdep journal recover {}`",
            report.path
        );
    }
    out
}

fn render_salvage(report: &ssdep_opt::SalvageReport) -> String {
    if report.quarantined_lines == 0 {
        return format!(
            "journal: {}\nnothing to recover — {} intact record{} kept, file untouched\n",
            report.path,
            report.kept,
            if report.kept == 1 { "" } else { "s" },
        );
    }
    let mut out = format!("journal: {}\n", report.path);
    let _ = writeln!(
        out,
        "recovered: {} intact record{} kept",
        report.kept,
        if report.kept == 1 { "" } else { "s" },
    );
    let _ = writeln!(
        out,
        "quarantined: {} line{} ({} bytes) -> {}",
        report.quarantined_lines,
        if report.quarantined_lines == 1 {
            ""
        } else {
            "s"
        },
        report.quarantined_bytes,
        report.quarantine,
    );
    if report.torn_tail_dropped {
        let _ = writeln!(out, "torn tail: dropped (crash artifact)");
    }
    out
}

fn search_command(args: &[&String]) -> Result<(String, u8), String> {
    use ssdep_opt::search::{paper_scenarios, supervised_exhaustive};
    use ssdep_opt::space::DesignSpace;
    let (config, _, leftover) = parse_supervisor_flags(args)?;
    let mut broad = false;
    for arg in &leftover {
        match arg.as_str() {
            "--broad" => broad = true,
            other => {
                return Err(format!(
                    "unknown search option `{other}` \
                     (--broad|--checkpoint|--resume|--deadline-secs|--max-retries|--jobs)"
                ))
            }
        }
    }
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let space = if broad {
        DesignSpace::broad()
    } else {
        DesignSpace::minimal()
    };
    let supervised = supervised_exhaustive(
        &space,
        &workload,
        &requirements,
        &paper_scenarios(),
        &ssdep_opt::Supervisor::new(config),
    )
    .map_err(|e| e.to_string())?;

    let failed: Vec<String> = supervised
        .failed
        .iter()
        .map(|f| {
            format!(
                "{}: {} [{} after {} attempt{}]",
                f.candidate.label(),
                f.error,
                f.kind,
                f.attempts,
                if f.attempts == 1 { "" } else { "s" }
            )
        })
        .collect();
    let mut out = format!(
        "== Supervised design-space search ({} candidates) ==\n{}",
        supervised.provenance.total,
        render_provenance(&supervised.provenance, &failed)
    );
    if let Some(journal_error) = &supervised.journal_error {
        let _ = writeln!(
            out,
            "caveat: checkpoint journal lost mid-run ({journal_error}); rerun once \
             space/IO recovers to re-checkpoint"
        );
    }
    let result = &supervised.result;
    let _ = writeln!(
        out,
        "{} feasible, {} infeasible",
        result.ranked.len(),
        result.infeasible.len()
    );
    let front =
        ssdep_opt::pareto::qualified_cost_risk_front(&result.ranked, &supervised.provenance);
    if let Some(caveat) = front.caveat() {
        let _ = writeln!(out, "caveat: {caveat}");
    }
    let mut table = report::TextTable::new(["Rank", "Design", "E[total]/yr", "On frontier"]);
    for (rank, outcome) in result.ranked.iter().take(10).enumerate() {
        let on_front = front.members.iter().any(|m| std::ptr::eq(*m, outcome));
        table.row([
            format!("{}", rank + 1),
            outcome.label.clone(),
            outcome.expected_total.to_string(),
            if on_front { "yes" } else { "" }.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    let status = if supervised.provenance.journal_degraded {
        3
    } else {
        0
    };
    Ok((out, status))
}

fn optimize(broad: bool) -> Result<String, String> {
    use ssdep_opt::search::{exhaustive, paper_scenarios};
    use ssdep_opt::space::DesignSpace;
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let space = if broad {
        DesignSpace::broad()
    } else {
        DesignSpace::minimal()
    };
    let result = exhaustive(&space, &workload, &requirements, &paper_scenarios())
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} candidates evaluated, {} feasible",
        result.evaluations,
        result.ranked.len()
    );
    let mut table = report::TextTable::new(["Rank", "Design", "E[total]/yr"]);
    for (rank, outcome) in result.ranked.iter().take(10).enumerate() {
        table.row([
            format!("{}", rank + 1),
            outcome.label.clone(),
            outcome.expected_total.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    Ok(out)
}

/// The worst observed outcome of a failure-time sweep over one
/// simulation run.
struct SweepWorst {
    worst_loss: TimeDelta,
    worst_recovery: TimeDelta,
    evaluated: usize,
    no_source: usize,
    /// Failure instants whose evaluation broke unexpectedly, quarantined
    /// with the supervisor's taxonomy instead of aborting the sweep.
    failed: Vec<ssdep_opt::FailedOutcome<f64>>,
}

/// Sweeps `times` failure instants over a finished run and keeps the
/// worst observed loss and recovery time. Instants with no surviving
/// source are counted, not fatal — under a destructive fault plan the
/// tail of the horizon may legitimately have nothing left to restore
/// from. Any other per-instant error is quarantined as a
/// [`ssdep_opt::FailedOutcome`] so one pathological instant cannot take
/// down the whole comparison; quarantined instants are reported next to
/// the sample counts.
fn sweep_worst(
    design: &ssdep_core::hierarchy::StorageDesign,
    workload: &ssdep_core::workload::Workload,
    demands: &ssdep_core::demands::DemandSet,
    report: &ssdep_sim::SimReport,
    scenario: &FailureScenario,
    times: &[f64],
) -> SweepWorst {
    let mut worst = SweepWorst {
        worst_loss: TimeDelta::ZERO,
        worst_recovery: TimeDelta::ZERO,
        evaluated: 0,
        no_source: 0,
        failed: Vec::new(),
    };
    for &t in times {
        match ssdep_sim::recovery::simulate_failure(design, workload, demands, report, scenario, t)
        {
            Ok(observed) => {
                worst.evaluated += 1;
                worst.worst_loss = worst.worst_loss.max(observed.observed_loss);
                worst.worst_recovery = worst.worst_recovery.max(observed.recovery.total_time);
            }
            Err(ssdep_core::Error::NoRecoverySource { .. }) => worst.no_source += 1,
            Err(other) => worst.failed.push(ssdep_opt::FailedOutcome {
                candidate: t,
                error: render_error(&other),
                attempts: 1,
                kind: ssdep_opt::FailureKind::Errored,
            }),
        }
    }
    worst
}

fn inject(spec: &SystemSpec, args: &[&String]) -> Result<String, String> {
    use ssdep_sim::{Disruption, FaultPlan, SimConfig, Simulation};

    let mut plan: Option<FaultPlan> = None;
    let mut horizon_weeks = 16.0f64;
    let mut samples = 48usize;
    let mut scenario_args: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--faults" => {
                let path = iter.next().ok_or("--faults needs a file path")?;
                let json = std::fs::read_to_string(path.as_str())
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                plan = Some(
                    serde_json::from_str(&json).map_err(|e| format!("invalid fault plan: {e}"))?,
                );
            }
            "--horizon" => {
                horizon_weeks = iter
                    .next()
                    .ok_or("--horizon needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --horizon: {e}"))?;
            }
            "--samples" => {
                samples = iter
                    .next()
                    .ok_or("--samples needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --samples: {e}"))?;
            }
            "--scenario" | "--age" | "--size" => {
                scenario_args.push(arg);
                scenario_args.push(iter.next().ok_or_else(|| format!("{arg} needs a value"))?);
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage_inject())),
        }
    }
    let plan = plan.unwrap_or_else(|| spec.faults.clone());
    if plan.is_empty() {
        return Err(format!(
            "no faults to inject: pass --faults <plan.json> or add a `faults` \
             section to the spec\n{}",
            usage_inject()
        ));
    }
    let scenario = parse_scenario(&scenario_args)?;
    let horizon = TimeDelta::from_weeks(horizon_weeks);

    let demands = spec
        .design
        .demands(&spec.workload)
        .map_err(|e| render_error(&e))?;
    let clean = Simulation::new(&spec.design, &spec.workload, SimConfig::new(horizon))
        .map_err(|e| render_error(&e))?
        .run();
    let faulted = Simulation::new(
        &spec.design,
        &spec.workload,
        SimConfig::new(horizon).with_faults(plan.clone()),
    )
    .map_err(|e| render_error(&e))?
    .run();

    // Sample the back half of the horizon: the pipeline has warmed up and
    // the (typically mid-horizon) faults have had time to bite.
    let grid = ssdep_sim::validate::sample_grid(horizon * 0.5, horizon, samples);
    let clean_worst = sweep_worst(
        &spec.design,
        &spec.workload,
        &demands,
        &clean,
        &scenario,
        &grid,
    );
    let faulted_worst = sweep_worst(
        &spec.design,
        &spec.workload,
        &demands,
        &faulted,
        &scenario,
        &grid,
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fault injection: {} ({} fault{}, {horizon_weeks} wk horizon) ==",
        spec.design.name(),
        plan.len(),
        if plan.len() == 1 { "" } else { "s" },
    );
    for (level, destroyed) in (0..spec.design.levels().len()).map(|l| (l, faulted.destroyed_at(l)))
    {
        if let Some(at) = destroyed {
            let _ = writeln!(
                out,
                "level {level} ({}) destroyed at {:.1} hr",
                spec.design.levels()[level].name(),
                at / 3600.0
            );
        }
    }
    let (mut delayed_caps, mut delayed_comps, mut slowed, mut lost_rps, mut lost_flight) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for disruption in faulted.disruptions() {
        match disruption {
            Disruption::DelayedCapture { .. } => delayed_caps += 1,
            Disruption::DelayedCompletion { .. } => delayed_comps += 1,
            Disruption::SlowedPropagation { .. } => slowed += 1,
            Disruption::LostRetrievalPoints { count, .. } => lost_rps += count,
            Disruption::LostInFlight { .. } => lost_flight += 1,
            Disruption::CapturesCeased { .. } => {}
        }
    }
    let _ = writeln!(
        out,
        "disruptions: {delayed_caps} delayed captures, {delayed_comps} delayed completions, \
         {slowed} slowed transfers, {lost_rps} RPs lost, {lost_flight} lost in flight",
    );

    let mut table = report::TextTable::new([
        format!("Worst case ({scenario})"),
        "Fault-free".to_string(),
        "With faults".to_string(),
        "Delta".to_string(),
    ]);
    let delta_loss = faulted_worst.worst_loss.as_hours() - clean_worst.worst_loss.as_hours();
    let delta_rec = faulted_worst.worst_recovery.as_hours() - clean_worst.worst_recovery.as_hours();
    table.row([
        "recent data loss".to_string(),
        format!("{:.1} hr", clean_worst.worst_loss.as_hours()),
        format!("{:.1} hr", faulted_worst.worst_loss.as_hours()),
        format!("{delta_loss:+.1} hr"),
    ]);
    table.row([
        "recovery time".to_string(),
        format!("{:.1} hr", clean_worst.worst_recovery.as_hours()),
        format!("{:.1} hr", faulted_worst.worst_recovery.as_hours()),
        format!("{delta_rec:+.1} hr"),
    ]);
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "samples: {} evaluated, {} with no surviving source (fault-free: {}/{})",
        faulted_worst.evaluated,
        faulted_worst.no_source,
        clean_worst.evaluated,
        clean_worst.no_source,
    );
    for failure in clean_worst.failed.iter().chain(&faulted_worst.failed) {
        let _ = writeln!(
            out,
            "quarantined: failure at {:.1} hr: {}",
            failure.candidate / 3600.0,
            failure.error
        );
    }
    if !clean_worst.failed.is_empty() || !faulted_worst.failed.is_empty() {
        let _ = writeln!(
            out,
            "warning: worst-case figures above cover only the surviving samples"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    fn unwrap_single(composite: CompositeScenario) -> FailureScenario {
        match composite {
            CompositeScenario::Single { scenario } => scenario,
            other => panic!("expected a plain scenario, got {other}"),
        }
    }

    #[test]
    fn init_emits_a_parsable_spec() {
        let json = run(&args(&["init"])).unwrap();
        let spec = SystemSpec::from_json(&json).unwrap();
        assert_eq!(spec.design.name(), "baseline");
    }

    #[test]
    fn evaluate_roundtrip_through_a_temp_file() {
        let path = std::env::temp_dir().join("ssdep-test-spec.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "site",
        ]))
        .unwrap();
        assert!(out.contains("remote vaulting"));
        assert!(out.contains("1429 hr"));
        let json_out = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "array",
            "--json",
        ]))
        .unwrap();
        assert!(json_out.trim_start().starts_with('{'));
        std::fs::remove_file(&path).ok();
    }

    /// The baseline spec with three independent, fixable defects
    /// injected through serde (the builders would reject them).
    fn broken_spec_json() -> String {
        let spec = SystemSpec::baseline();
        let mut value = serde_json::to_value(&spec).unwrap();
        // 1. propW > accW on the backup level.
        value["design"]["levels"][2]["technique"]["Backup"]["full"]["propagation_window"] =
            serde_json::json!(1.0e9);
        // 2. A dangling transport on the vault level.
        value["design"]["levels"][3]["transports"]
            .as_array_mut()
            .unwrap()
            .push(serde_json::json!(99));
        // 3. A negative spare provisioning time.
        value["design"]["devices"][0]["spare"]["Dedicated"]["provisioning_time"] =
            serde_json::json!(-5.0);
        serde_json::to_string_pretty(&value).unwrap()
    }

    #[test]
    fn check_passes_the_baseline_spec() {
        let path = std::env::temp_dir().join("ssdep-test-check-clean.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let (result, status) = run_with_status(&args(&["check", path.to_str().unwrap()]));
        let out = result.unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("summary: 0 errors, 0 warnings"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_renders_composite_scenarios() {
        let path = std::env::temp_dir().join("ssdep-test-evaluate-composite.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "correlated:site+array@0.5",
            "--scenario",
            "second-fault:array+site",
            "--scenario",
            "human-error",
        ]))
        .unwrap();
        assert!(
            out.contains("composite scenarios: 3 (prepared once)"),
            "{out}"
        );
        assert!(
            out.contains("correlated site+array failures (correlation 0.5)"),
            "{out}"
        );
        assert!(out.contains("recovery inflation: x1.50"), "{out}");
        assert!(out.contains("first-fault recovery:"), "{out}");
        assert!(out.contains("end-to-end recovery:"), "{out}");

        // The JSON form carries the structured outcomes.
        let json = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "human-error",
            "--json",
        ]))
        .unwrap();
        let outcomes: Vec<CompositeOutcome> = serde_json::from_str(&json).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].total_recovery > TimeDelta::ZERO);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_uses_the_specs_scenarios_section_by_default() {
        let mut spec = SystemSpec::baseline();
        spec.scenarios = vec![CompositeScenario::Correlated {
            scopes: vec![FailureScope::Site, FailureScope::Array],
            correlation: 0.8,
            target: RecoveryTarget::Now,
        }];
        let path = std::env::temp_dir().join("ssdep-test-evaluate-spec-scenarios.json");
        std::fs::write(&path, spec.to_json()).unwrap();
        let out = run(&args(&["evaluate", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("correlation 0.8"), "{out}");
        // An explicit --scenario overrides the spec's list.
        let out = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "array",
        ]))
        .unwrap();
        assert!(out.contains("scenario: array failure"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_reports_composite_diagnostics_from_the_spec() {
        let mut spec = SystemSpec::baseline();
        spec.scenarios = vec![
            CompositeScenario::Correlated {
                scopes: vec![FailureScope::Site, FailureScope::Array],
                correlation: 0.0,
                target: RecoveryTarget::Now,
            },
            CompositeScenario::SecondFault {
                first: FailureScope::Site,
                second: FailureScope::Array,
                target: RecoveryTarget::Now,
            },
        ];
        let path = std::env::temp_dir().join("ssdep-test-check-composite.json");
        std::fs::write(&path, spec.to_json()).unwrap();
        let (result, status) = run_with_status(&args(&["check", path.to_str().unwrap()]));
        let out = result.unwrap();
        assert_eq!(status, 2, "{out}");
        assert!(out.contains("D070"), "{out}");
        assert!(out.contains("D074"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_reports_every_defect_in_one_run() {
        let path = std::env::temp_dir().join("ssdep-test-check-broken.json");
        std::fs::write(&path, broken_spec_json()).unwrap();
        let (result, status) = run_with_status(&args(&["check", path.to_str().unwrap()]));
        let out = result.unwrap();
        assert_eq!(status, 2, "{out}");
        for code in ["D020", "D004", "D009"] {
            assert!(out.contains(code), "missing {code} in {out}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_fix_emits_a_spec_that_rechecks_clean() {
        let path = std::env::temp_dir().join("ssdep-test-check-fix.json");
        std::fs::write(&path, broken_spec_json()).unwrap();
        let (result, status) = run_with_status(&args(&["check", path.to_str().unwrap(), "--fix"]));
        let fixed = result.unwrap();
        assert_eq!(status, 0, "repair clears every error: {fixed}");
        let fixed_path = std::env::temp_dir().join("ssdep-test-check-fixed.json");
        std::fs::write(&fixed_path, &fixed).unwrap();
        let (recheck, recheck_status) =
            run_with_status(&args(&["check", fixed_path.to_str().unwrap()]));
        let out = recheck.unwrap();
        assert_eq!(recheck_status, 0, "{out}");
        assert!(out.contains("summary: 0 errors"), "{out}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&fixed_path).ok();
    }

    #[test]
    fn check_json_output_is_stable_and_machine_readable() {
        let path = std::env::temp_dir().join("ssdep-test-check-json.json");
        std::fs::write(&path, broken_spec_json()).unwrap();
        let check_args = args(&["check", path.to_str().unwrap(), "--json"]);
        let (first, status) = run_with_status(&check_args);
        let first = first.unwrap();
        assert_eq!(status, 2);
        assert!(first.trim_start().starts_with('{'), "{first}");
        assert!(first.contains("\"summary\""), "{first}");
        assert!(first.contains("\"D020\""), "{first}");
        let (second, _) = run_with_status(&check_args);
        assert_eq!(first, second.unwrap(), "byte-for-byte across runs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_unparsable_spec_reports_d090_with_the_position() {
        let path = std::env::temp_dir().join("ssdep-test-check-d090.json");
        std::fs::write(&path, "{\n  broken").unwrap();
        let (result, status) = run_with_status(&args(&["check", path.to_str().unwrap()]));
        let out = result.unwrap();
        assert_eq!(status, 2, "{out}");
        assert!(out.contains("D090"), "{out}");
        assert!(out.contains("spec:2:3"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_deny_warnings_gates_the_exit_status() {
        let spec = SystemSpec::baseline();
        let mut value = serde_json::to_value(&spec).unwrap();
        // Vault retains fewer RPs than the backup above it → D031, a
        // warning with no errors.
        value["design"]["levels"][3]["technique"]["RemoteVault"]["params"]["retention_count"] =
            serde_json::json!(2);
        value["design"]["levels"][3]["technique"]["RemoteVault"]["params"]["retention_window"] =
            serde_json::json!(1.0e9);
        let path = std::env::temp_dir().join("ssdep-test-check-warn.json");
        std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap()).unwrap();
        let (result, status) = run_with_status(&args(&["check", path.to_str().unwrap()]));
        assert_eq!(status, 0, "{:?}", result);
        let (result, status) =
            run_with_status(&args(&["check", path.to_str().unwrap(), "--deny-warnings"]));
        let out = result.unwrap();
        assert_eq!(status, 1, "{out}");
        assert!(out.contains("D031"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_rejects_bad_usage() {
        let (result, status) = run_with_status(&args(&["check"]));
        assert!(result.unwrap_err().contains("usage"));
        assert_eq!(status, 1);
        let (result, status) = run_with_status(&args(&["check", "x.json", "--frobnicate"]));
        assert!(result.unwrap_err().contains("unknown option"));
        assert_eq!(status, 1);
        let (result, status) = run_with_status(&args(&["check", "/nonexistent/spec.json"]));
        assert!(result.unwrap_err().contains("cannot read"));
        assert_eq!(status, 1);
    }

    #[test]
    fn validate_reports_feasibility() {
        let path = std::env::temp_dir().join("ssdep-test-validate.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&["validate", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("feasible: yes"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn baseline_and_whatif_render_tables() {
        let out = run(&args(&["baseline"])).unwrap();
        assert!(out.contains("Table 5"));
        assert!(out.contains("tape backup"));
        let out = run(&args(&["whatif"])).unwrap();
        assert!(out.contains("asyncB mirror"));
    }

    #[test]
    fn degraded_and_risk_commands_report() {
        let path = std::env::temp_dir().join("ssdep-test-degraded.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&["degraded", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("UNRECOVERABLE"));
        assert!(out.contains("most critical level: remote vaulting"));
        let out = run(&args(&["risk", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("nines"));
        assert!(out.contains("expected data loss"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coverage_command_walks_the_ladder() {
        let path = std::env::temp_dir().join("ssdep-test-coverage.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&["coverage", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("region"));
        assert!(out.contains("every scope on the ladder is covered"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_command_emits_the_dossier() {
        let path = std::env::temp_dir().join("ssdep-test-report.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&["report", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("== Failure coverage =="));
        assert!(out.contains("== Annualized risk =="));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compare_command_diffs_two_specs() {
        let a = std::env::temp_dir().join("ssdep-test-cmp-a.json");
        std::fs::write(&a, SystemSpec::baseline().to_json()).unwrap();
        let b = std::env::temp_dir().join("ssdep-test-cmp-b.json");
        let mut spec = SystemSpec::baseline();
        spec.design = ssdep_core::presets::weekly_vault_design();
        std::fs::write(&b, spec.to_json()).unwrap();
        let out = run(&args(&[
            "compare",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("Comparing `baseline` (A) with `weekly vault` (B)"));
        assert!(out.contains("outlay change"));
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn custom_catalogs_flow_through_risk() {
        let spec_path = std::env::temp_dir().join("ssdep-test-catalog-spec.json");
        std::fs::write(&spec_path, SystemSpec::baseline().to_json()).unwrap();
        let catalog_path = std::env::temp_dir().join("ssdep-test-catalog.json");
        let catalog = r#"[{
            "scenario": {"scope": "Array", "target": "Now"},
            "annual_frequency": 2.0
        }]"#;
        std::fs::write(&catalog_path, catalog).unwrap();
        let out = run(&args(&[
            "risk",
            spec_path.to_str().unwrap(),
            "--catalog",
            catalog_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("array x2/yr"), "{out}");
        std::fs::remove_file(&spec_path).ok();
        std::fs::remove_file(&catalog_path).ok();
    }

    #[test]
    fn sweep_command_covers_every_axis() {
        let out = run(&args(&["sweep", "growth"])).unwrap();
        assert!(out.contains("INFEASIBLE"));
        let out = run(&args(&["sweep", "links"])).unwrap();
        assert!(out.contains("links"));
        assert!(out.contains("provenance:"), "{out}");
        let out = run(&args(&["sweep"])).unwrap();
        assert!(out.contains("growth sweep"));
        assert!(run(&args(&["sweep", "nonsense"])).is_err());
        assert!(run(&args(&["sweep", "links", "--frobnicate"])).is_err());
        // The growth axis has no supervised driver, so the flags are a
        // user error there, not a silent no-op.
        assert!(run(&args(&["sweep", "growth", "--deadline-secs", "10"])).is_err());
    }

    #[test]
    fn sweep_resumes_from_its_checkpoint() {
        let journal = std::env::temp_dir().join("ssdep-test-sweep-journal.jsonl");
        std::fs::remove_file(&journal).ok();
        let journal_arg = journal.to_str().unwrap();
        let first = run(&args(&["sweep", "vault", "--checkpoint", journal_arg])).unwrap();
        assert!(first.contains("4 evaluated, 0 resumed"), "{first}");
        let second = run(&args(&["sweep", "vault", "--resume", journal_arg])).unwrap();
        assert!(second.contains("0 evaluated, 4 resumed"), "{second}");
        // Identical tables either way.
        let table = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("=="))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&first), table(&second));
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn optimize_minimal_runs() {
        let out = run(&args(&["optimize"])).unwrap();
        assert!(out.contains("candidates evaluated"));
        assert!(out.contains("Rank"));
    }

    #[test]
    fn search_command_reports_provenance_and_frontier() {
        let out = run(&args(&["search"])).unwrap();
        assert!(out.contains("provenance:"), "{out}");
        assert!(out.contains("Rank"), "{out}");
        assert!(out.contains("On frontier"), "{out}");
        assert!(run(&args(&["search", "--frobnicate"])).is_err());
        assert!(run(&args(&["search", "--deadline-secs", "nope"])).is_err());
        assert!(run(&args(&["search", "--deadline-secs", "-4"])).is_err());
        assert!(run(&args(&["search", "--checkpoint"])).is_err());
    }

    #[test]
    fn search_resumes_bit_for_bit() {
        let journal = std::env::temp_dir().join("ssdep-test-search-journal.jsonl");
        std::fs::remove_file(&journal).ok();
        let journal_arg = journal.to_str().unwrap();
        let full = run(&args(&["search", "--checkpoint", journal_arg])).unwrap();
        let resumed = run(&args(&[
            "search",
            "--resume",
            journal_arg,
            "--max-retries",
            "0",
        ]))
        .unwrap();
        assert!(resumed.contains("0 evaluated"), "{resumed}");
        let ranking = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("Rank"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            ranking(&full),
            ranking(&resumed),
            "resume must not change the ranking"
        );
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn inject_reports_degraded_deltas() {
        let path = std::env::temp_dir().join("ssdep-test-inject.json");
        let mut spec = SystemSpec::baseline();
        spec.faults = ssdep_sim::FaultPlan::new().with_fault(ssdep_sim::InjectedFault {
            at: TimeDelta::from_weeks(8.0),
            target: ssdep_sim::FaultTarget::Scope {
                scope: FailureScope::Site,
            },
            kind: ssdep_sim::FaultKind::PermanentDestruction,
        });
        std::fs::write(&path, spec.to_json()).unwrap();
        let out = run(&args(&[
            "inject",
            path.to_str().unwrap(),
            "--scenario",
            "array",
        ]))
        .unwrap();
        assert!(out.contains("Fault injection"), "{out}");
        assert!(out.contains("destroyed at"), "{out}");
        assert!(out.contains("With faults"), "{out}");
        assert!(out.contains("no surviving source"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inject_without_faults_demands_a_plan() {
        let path = std::env::temp_dir().join("ssdep-test-inject-empty.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let err = run(&args(&["inject", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("no faults to inject"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inject_surfaces_fault_resolution_errors_with_hints() {
        let path = std::env::temp_dir().join("ssdep-test-inject-bad.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let plan_path = std::env::temp_dir().join("ssdep-test-inject-bad-plan.json");
        let plan = ssdep_sim::FaultPlan::new().with_fault(ssdep_sim::InjectedFault {
            at: TimeDelta::from_weeks(1.0),
            target: ssdep_sim::FaultTarget::Device {
                name: "flux capacitor".into(),
            },
            kind: ssdep_sim::FaultKind::PermanentDestruction,
        });
        std::fs::write(&plan_path, serde_json::to_string(&plan).unwrap()).unwrap();
        let err = run(&args(&[
            "inject",
            path.to_str().unwrap(),
            "--faults",
            plan_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("injected fault #0"), "{err}");
        assert!(err.contains("hint:"), "{err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn render_error_hints_only_where_actionable() {
        let err = ssdep_core::Error::fault_unresolvable(2, "no such device");
        assert!(render_error(&err).contains("hint:"));
        let err = ssdep_core::Error::non_finite("faults[0].at");
        assert!(render_error(&err).contains("hint:"));
        let err = ssdep_core::Error::invalid("x", "y");
        assert_eq!(render_error(&err), err.to_string());
    }

    #[test]
    fn unknown_inputs_are_rejected_with_usage() {
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&args(&["evaluate"])).unwrap_err().contains("usage"));
        assert!(run(&args(&["validate", "/nonexistent/x.json"]))
            .unwrap_err()
            .contains("cannot read"));
        let help_text = run(&args(&["help"])).unwrap();
        assert!(help_text.contains("commands:"));
        let empty = run(&[]).unwrap();
        assert!(empty.contains("commands:"));
    }

    #[test]
    fn scenario_parsing_covers_scopes_and_options() {
        let a = String::from("--scenario");
        let b = String::from("object");
        let c = String::from("--age");
        let d = String::from("24");
        let scenario = parse_scenario(&[&a, &b, &c, &d]).unwrap();
        assert!(matches!(scenario.scope, FailureScope::DataObject { .. }));
        assert_eq!(scenario.target.age(), TimeDelta::from_hours(24.0));

        let bad = String::from("--scenario");
        let worse = String::from("meteor");
        assert!(parse_scenario(&[&bad, &worse]).is_err());
    }

    #[test]
    fn scenario_lists_bind_flags_to_the_most_recent_scenario() {
        let list = args(&[
            "--scenario",
            "object",
            "--size",
            "2",
            "--scenario",
            "site",
            "--age",
            "48",
        ]);
        let refs: Vec<&String> = list.iter().collect();
        let scenarios: Vec<FailureScenario> = parse_scenarios(&refs)
            .unwrap()
            .into_iter()
            .map(unwrap_single)
            .collect();
        assert_eq!(scenarios.len(), 2);
        assert!(matches!(
            scenarios[0].scope,
            FailureScope::DataObject { .. }
        ));
        assert_eq!(scenarios[0].target.age(), TimeDelta::ZERO);
        assert!(matches!(scenarios[1].scope, FailureScope::Site));
        assert_eq!(scenarios[1].target.age(), TimeDelta::from_hours(48.0));

        // Flags before the first --scenario still apply to it, so the
        // historical single-scenario call shapes keep their meaning.
        let leading = args(&["--age", "24", "--scenario", "object"]);
        let refs: Vec<&String> = leading.iter().collect();
        let scenarios: Vec<FailureScenario> = parse_scenarios(&refs)
            .unwrap()
            .into_iter()
            .map(unwrap_single)
            .collect();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].target.age(), TimeDelta::from_hours(24.0));
    }

    #[test]
    fn evaluate_handles_repeated_scenarios_with_one_preparation() {
        let path = std::env::temp_dir().join("ssdep-test-multi-scenario.json");
        std::fs::write(&path, SystemSpec::baseline().to_json()).unwrap();
        let out = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "array",
            "--scenario",
            "site",
        ]))
        .unwrap();
        assert!(out.contains("scenarios: 2 (prepared once)"), "{out}");
        assert!(out.contains("== Recovery timeline: array failure"), "{out}");
        assert!(out.contains("== Recovery timeline: site failure"), "{out}");
        let json_out = run(&args(&[
            "evaluate",
            path.to_str().unwrap(),
            "--scenario",
            "array",
            "--scenario",
            "site",
            "--json",
        ]))
        .unwrap();
        assert!(json_out.trim_start().starts_with('['), "{json_out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_json_is_byte_identical_across_job_counts() {
        let serial = run(&args(&["sweep", "vault", "--json", "--jobs", "1"])).unwrap();
        let parallel = run(&args(&["sweep", "vault", "--json", "--jobs", "4"])).unwrap();
        assert_eq!(serial, parallel, "--jobs must not change the output");
        assert!(serial.trim_start().starts_with('{'), "{serial}");
        assert!(serial.contains("\"series\""), "{serial}");
        assert!(serial.contains("\"provenance\""), "{serial}");
        assert!(run(&args(&["sweep", "links", "--jobs", "0"])).is_err());
        assert!(run(&args(&["sweep", "links", "--jobs", "nope"])).is_err());
    }

    #[test]
    fn search_output_is_identical_at_any_job_count() {
        let serial = run(&args(&["search"])).unwrap();
        let parallel = run(&args(&["search", "--jobs", "3"])).unwrap();
        assert_eq!(serial, parallel, "--jobs must not change the output");
    }

    #[test]
    fn journal_inspect_and_recover_drive_the_exit_ladder() {
        let path = std::env::temp_dir().join(format!(
            "ssdep-test-journal-cli-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        {
            let mut writer = ssdep_opt::JournalWriter::open(&path, 1).unwrap();
            for i in 0..4u32 {
                writer.append(&i).unwrap();
            }
        }
        let path_str = path.to_str().unwrap();

        // Clean journal: inspect exits 0.
        let (result, status) = run_with_status(&args(&["journal", "inspect", path_str]));
        let out = result.unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("verdict: clean"), "{out}");

        // Corrupt a middle line: inspect exits 1 and the JSON report is
        // byte-stable across runs.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = "v2:not a frame".to_string();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let (result, status) = run_with_status(&args(&["journal", "inspect", path_str, "--json"]));
        let first_json = result.unwrap();
        assert_eq!(status, 1, "{first_json}");
        assert!(first_json.contains("\"corrupt_spans\""), "{first_json}");
        let (result, _) = run_with_status(&args(&["journal", "inspect", path_str, "--json"]));
        assert_eq!(first_json, result.unwrap(), "inspect --json must be stable");

        // Recover exits 0, quarantines the bad line, and the journal is
        // clean again.
        let (result, status) = run_with_status(&args(&["journal", "recover", path_str]));
        let out = result.unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("quarantined: 1 line"), "{out}");
        let (result, status) = run_with_status(&args(&["journal", "inspect", path_str]));
        assert_eq!(status, 0, "{}", result.unwrap());
        let quarantine = format!("{path_str}.quarantine");
        assert!(std::fs::read_to_string(&quarantine)
            .unwrap()
            .contains("not a frame"));

        // Usage errors.
        assert!(run(&args(&["journal"])).is_err());
        assert!(run(&args(&["journal", "inspect"])).is_err());
        assert!(run(&args(&["journal", "shred", path_str])).is_err());
        assert!(run(&args(&["journal", "inspect", path_str, "--verbose"])).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&quarantine).ok();
    }

    #[test]
    fn journal_inspect_of_a_missing_file_is_an_error() {
        let (result, status) = run_with_status(&args(&[
            "journal",
            "inspect",
            "/nonexistent/ssdep-no-such-journal.jsonl",
        ]));
        assert_eq!(status, 1);
        let message = result.unwrap_err();
        assert!(message.contains("ssdep-no-such-journal.jsonl"), "{message}");
    }
}

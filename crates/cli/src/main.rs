//! `ssdep` — command-line storage system dependability evaluation.
//!
//! See `ssdep help` for usage; the command logic lives in [`app`].

mod app;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (result, status) = app::run_with_status(&args);
    match result {
        Ok(output) => println!("{output}"),
        Err(message) => eprintln!("error: {message}"),
    }
    ExitCode::from(status)
}

//! Shared fixtures for the workspace's cross-crate integration tests
//! (the suites under the repository's top-level `tests/` directory).

#![forbid(unsafe_code)]

use ssdep_core::analysis::{evaluate, Evaluation};
use ssdep_core::error::Error;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::{Bytes, TimeDelta};

/// Evaluates a design under the paper's case-study inputs for one scope.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn evaluate_paper(design: &StorageDesign, scope: FailureScope) -> Result<Evaluation, Error> {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let target = match scope {
        FailureScope::DataObject { .. } => RecoveryTarget::Before {
            age: TimeDelta::from_hours(24.0),
        },
        _ => RecoveryTarget::Now,
    };
    let scenario = FailureScenario::new(scope, target);
    evaluate(design, &workload, &requirements, &scenario)
}

/// The paper's three case-study failure scopes.
pub fn paper_scopes() -> [FailureScope; 3] {
    [
        FailureScope::DataObject {
            size: Bytes::from_mib(1.0),
        },
        FailureScope::Array,
        FailureScope::Site,
    ]
}

//! Reproduction harness for the paper's evaluation section (§4).
//!
//! One function — and one `src/bin/` binary — per table and figure,
//! each printing our regenerated rows next to the published values.
//! `EXPERIMENTS.md` at the repository root records a captured run.
//!
//! | Paper artifact | Function / binary |
//! |---|---|
//! | Figure 1 (design hierarchy) | [`figure1`] / `figure1` |
//! | Figure 2 (policy cadence) | [`figure2`] / `figure2` |
//! | Table 2 (workload statistics) | [`table2`] / `table2` |
//! | Table 3 + 4 (inputs) | [`table3_table4`] / `table3` |
//! | Table 5 (utilization) | [`table5`] / `table5` |
//! | Table 6 (recovery/loss) | [`table6`] / `table6` |
//! | Table 7 (what-ifs) | [`table7`] / `table7` |
//! | Figure 3 (RP ranges) | [`figure3`] / `figure3` |
//! | Figure 4 (recovery timeline) | [`figure4`] / `figure4` |
//! | Figure 5 (cost breakdown) | [`figure5`] / `figure5` |
//! | §5 validation (sim vs analytic) | [`validate_sim`] / `validate_sim` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssdep_core::analysis::{evaluate, Evaluation};
use ssdep_core::error::Error;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::report::{self, TextTable};
use ssdep_core::units::{Bytes, TimeDelta};
use std::fmt::Write as _;

/// The three case-study scenarios (object / array / site).
pub fn paper_scenarios() -> [FailureScenario; 3] {
    [
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ]
}

fn baseline_evaluations() -> Result<Vec<Evaluation>, Error> {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    paper_scenarios()
        .iter()
        .map(|scenario| evaluate(&design, &workload, &requirements, scenario))
        .collect()
}

/// Figure 1: the baseline design's hierarchy as a tree.
pub fn figure1() -> String {
    format!(
        "== Figure 1: example storage system design ==\n{}",
        report::render_hierarchy(&ssdep_core::presets::baseline_design())
    )
}

/// Figure 2: the baseline policies' cadence parameters.
pub fn figure2() -> String {
    format!(
        "== Figure 2: parameter specification for the baseline ==\n{}",
        report::render_policy_calendar(&ssdep_core::presets::baseline_design())
    )
}

/// Table 2: generate a synthetic cello-like trace, measure its workload
/// statistics, and print them next to the published values.
///
/// # Errors
///
/// Propagates workload-measurement errors.
pub fn table2(trace_days: f64, seed: u64) -> Result<String, Error> {
    let fit = ssdep_workload::cello::cello_fit();
    let measured =
        ssdep_workload::cello::measured_cello_workload(TimeDelta::from_days(trace_days), seed)?;
    let paper = ssdep_core::presets::cello_workload();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 2: cello workload (synthetic substitution) ==\n\
         locality fit: {:.0}% of updates on {} hot extents (rms error {:.1}%)\n\
         trace: {} days, seed {}\n",
        fit.hot_fraction * 100.0,
        fit.hot_extents,
        fit.rms_relative_error * 100.0,
        trace_days,
        seed
    );
    let mut table = TextTable::new(["Statistic", "Paper", "Measured"]);
    table.row([
        "dataCap".to_string(),
        format!("{:.0} GiB", paper.data_capacity().as_gib()),
        format!("{:.0} GiB", measured.data_capacity().as_gib()),
    ]);
    table.row([
        "avgUpdateR".to_string(),
        format!("{:.0} KiB/s", paper.avg_update_rate().as_kib_per_sec()),
        format!("{:.0} KiB/s", measured.avg_update_rate().as_kib_per_sec()),
    ]);
    table.row([
        "burstM".to_string(),
        format!("{:.0}x", paper.burst_multiplier()),
        format!("{:.1}x", measured.burst_multiplier()),
    ]);
    for (label, window) in [
        ("batchUpdR(1 min)", TimeDelta::from_minutes(1.0)),
        ("batchUpdR(12 hr)", TimeDelta::from_hours(12.0)),
        ("batchUpdR(24 hr)", TimeDelta::from_hours(24.0)),
    ] {
        table.row([
            label.to_string(),
            format!(
                "{:.0} KiB/s",
                paper.batch_update_rate(window).as_kib_per_sec()
            ),
            format!(
                "{:.0} KiB/s",
                measured.batch_update_rate(window).as_kib_per_sec()
            ),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    Ok(out)
}

/// Tables 3 and 4: the policy and device configuration inputs, as the
/// presets encode them.
pub fn table3_table4() -> String {
    let design = ssdep_core::presets::baseline_design();
    let mut out = String::new();

    let mut policies = TextTable::new(["Technique", "accW", "propW", "holdW", "retCnt", "retW"]);
    for level in design.levels().iter().skip(1) {
        if let Some(params) = level.technique().params() {
            policies.row([
                level.name().to_string(),
                params.accumulation_window().to_string(),
                params.propagation_window().to_string(),
                params.hold_window().to_string(),
                params.retention_count().to_string(),
                params.retention_window().to_string(),
            ]);
        }
    }
    let _ = writeln!(
        out,
        "== Table 3: protection technique parameters ==\n{}",
        policies.render()
    );

    let mut devices = TextTable::new([
        "Device",
        "Usable capacity",
        "Max bandwidth",
        "devDelay",
        "Spare",
    ]);
    for spec in design.devices() {
        devices.row([
            spec.name().to_string(),
            spec.usable_capacity()
                .map_or("n/a".to_string(), |c| c.to_string()),
            spec.max_bandwidth()
                .map_or("n/a".to_string(), |b| b.to_string()),
            spec.access_delay().to_string(),
            spec.spare().to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "== Table 4: device configuration ==\n{}",
        devices.render()
    );
    out
}

/// Table 5: normal-mode bandwidth and capacity utilization.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn table5() -> Result<String, Error> {
    let evaluations = baseline_evaluations()?;
    Ok(format!(
        "== Table 5: normal mode utilization ==\n{}\n\
         paper: array 2.4% bw (12.4 MB/s) / 87.4% cap (8.0 TB); \
         tape 3.4% (8.1 MB/s) / 3.4% (6.6 TB); vault 2.6% cap (51.8 TB)\n",
        report::render_utilization(&evaluations[0])
    ))
}

/// Table 6: worst-case recovery time and recent data loss per scenario.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn table6() -> Result<String, Error> {
    let evaluations = baseline_evaluations()?;
    Ok(format!(
        "== Table 6: worst-case recovery time and recent data loss ==\n{}\n\
         paper: object 0.004 s / 12 hr; array 2.4 hr / 217 hr; site 26.4 hr / 1429 hr\n",
        report::render_dependability(&evaluations)
    ))
}

/// Table 7: the seven what-if designs under array and site failures.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn table7() -> Result<String, Error> {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let mut table = TextTable::new([
        "Storage system design",
        "Outlays",
        "Array RT",
        "Array DL",
        "Array penalties",
        "Array total",
        "Site RT",
        "Site DL",
        "Site penalties",
        "Site total",
    ]);
    for design in ssdep_core::presets::what_if_designs() {
        let array = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        )?;
        let site = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        )?;
        table.row([
            design.name().to_string(),
            array.cost.total_outlays.to_string(),
            format!("{:.1} hr", array.recovery.total_time.as_hours()),
            format!("{:.2} hr", array.loss.worst_loss.as_hours()),
            array.cost.total_penalties().to_string(),
            array.cost.total_cost.to_string(),
            format!("{:.1} hr", site.recovery.total_time.as_hours()),
            format!("{:.2} hr", site.loss.worst_loss.as_hours()),
            site.cost.total_penalties().to_string(),
            site.cost.total_cost.to_string(),
        ]);
    }
    Ok(format!(
        "== Table 7: what-if scenarios ==\n{}\n\
         paper DL columns (exactly reproduced): array 217/217/73/37/37/0.03/0.03 hr, \
         site 1429/253/253/217/217/0.03/0.03 hr\n",
        table.render()
    ))
}

/// Figure 3: the guaranteed RP time range at every level of the
/// baseline hierarchy.
pub fn figure3() -> String {
    let design = ssdep_core::presets::baseline_design();
    let ranges = ssdep_core::analysis::level_ranges(&design);
    let mut table = TextTable::new([
        "Level",
        "Freshest possible (holdW+propW)",
        "Freshest guaranteed (+accW)",
        "Oldest guaranteed (+retention)",
    ]);
    for range in &ranges {
        table.row([
            format!("{} ({})", range.level, range.level_name),
            format!("{:.1} hr", range.min_lag.as_hours()),
            format!("{:.1} hr", range.max_lag.as_hours()),
            format!("{:.1} hr", range.oldest_guaranteed.as_hours()),
        ]);
    }
    format!(
        "== Figure 3: guaranteed RP ranges (ages before the failure) ==\n{}\n\
         paper arithmetic: backup freshest-guaranteed 217 hr, vault 1429 hr\n",
        table.render()
    )
}

/// Figure 4: the site-disaster recovery timeline.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn figure4() -> Result<String, Error> {
    let evaluations = baseline_evaluations()?;
    let site = &evaluations[2];
    Ok(format!(
        "== Figure 4: site-disaster recovery timeline ==\n{}\n\
         paper: tape shipment (24 hr) overlaps facility provisioning (9 hr); \
         total 26.4 hr\n",
        report::render_recovery_timeline(site)
    ))
}

/// Figure 5: the overall cost breakdown per failure scenario.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn figure5() -> Result<String, Error> {
    let evaluations = baseline_evaluations()?;
    let mut out = String::from("== Figure 5: overall system cost per failure scenario ==\n");
    let _ = writeln!(out, "{}", report::render_cost_bars(&evaluations));
    for evaluation in &evaluations {
        let _ = writeln!(
            out,
            "-- {} failure --\n{}",
            evaluation.scenario.scope.name(),
            report::render_costs(evaluation)
        );
    }
    let _ = writeln!(
        out,
        "paper: outlays ~$0.97M split across foreground/mirroring/backup; \
         loss penalties dominate array ($11.94M total) and site ($71.94M total) failures"
    );
    Ok(out)
}

/// §5 validation: observed (simulated) worst cases versus the analytic
/// bounds, for the baseline design.
///
/// # Errors
///
/// Propagates simulation and evaluation errors.
pub fn validate_sim(weeks: f64, samples: usize) -> Result<String, Error> {
    use ssdep_sim::validate::{sample_grid, validate_scenario};
    use ssdep_sim::{SimConfig, Simulation};

    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let demands = design.demands(&workload)?;
    let horizon = TimeDelta::from_weeks(weeks);
    let report = Simulation::new(&design, &workload, SimConfig::new(horizon))?.run();
    let grid = sample_grid(TimeDelta::from_weeks(weeks / 2.0), horizon, samples);

    let mut table = TextTable::new([
        "Scenario",
        "Analytic DL",
        "Observed max DL",
        "Analytic RT",
        "Observed max RT",
        "Samples",
        "Bounds hold",
    ]);
    for scenario in paper_scenarios() {
        let outcome = validate_scenario(&design, &workload, &demands, &report, &scenario, &grid)?;
        table.row([
            scenario.scope.name().to_string(),
            format!("{:.1} hr", outcome.analytic_loss.as_hours()),
            format!("{:.1} hr", outcome.observed_max_loss.as_hours()),
            format!("{:.2} hr", outcome.analytic_recovery.as_hours()),
            format!("{:.2} hr", outcome.observed_max_recovery.as_hours()),
            format!("{}", outcome.evaluated_samples),
            if outcome.bounds_hold() {
                "yes"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    Ok(format!(
        "== Simulation validation ({weeks:.0}-week horizon, {samples} failure instants) ==\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_and_6_render_with_paper_values() {
        let t5 = table5().unwrap();
        assert!(t5.contains("87.3%") || t5.contains("87.4%"));
        let t6 = table6().unwrap();
        assert!(t6.contains("217 hr"));
        assert!(t6.contains("1429 hr"));
    }

    #[test]
    fn table7_covers_all_seven_designs() {
        let t7 = table7().unwrap();
        for name in [
            "baseline",
            "weekly vault",
            "weekly vault, F+I",
            "weekly vault, daily F",
            "snapshot",
            "asyncB mirror, 1 link",
            "asyncB mirror, 10 link",
        ] {
            assert!(t7.contains(name), "missing {name}");
        }
    }

    #[test]
    fn figures_render() {
        let f1 = figure1();
        assert!(f1.contains("level 0: primary copy"));
        let f2 = figure2();
        assert!(f2.contains("remote vaulting"));
        let f3 = figure3();
        assert!(f3.contains("remote vaulting"));
        let f4 = figure4().unwrap();
        assert!(f4.contains("ship media"));
        let f5 = figure5().unwrap();
        assert!(f5.contains("penalty: recent data loss"));
        assert!(f5.contains('#'), "figure 5 renders cost bars");
        let inputs = table3_table4();
        assert!(inputs.contains("tape library"));
    }

    #[test]
    fn quick_validation_run_holds_bounds() {
        let out = validate_sim(12.0, 8).unwrap();
        assert!(!out.contains("VIOLATED"), "{out}");
    }
}

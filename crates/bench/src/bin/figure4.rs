//! Regenerates paper Figure 4: the site-disaster recovery timeline.

fn main() {
    match ssdep_bench::figure4() {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

//! Runs the simulator-versus-analytic validation sweep (the paper's §5
//! future-work validation, done against the discrete-event simulator).

fn main() {
    match ssdep_bench::validate_sim(40.0, 128) {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

//! Regenerates paper Table 7: the what-if design comparison.

fn main() {
    match ssdep_bench::table7() {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

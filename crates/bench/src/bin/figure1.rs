//! Prints the paper's Figure 1: the baseline design's hierarchy.

fn main() {
    println!("{}", ssdep_bench::figure1());
}

//! Staged-evaluation performance snapshot (`BENCH_eval.json`'s
//! generator).
//!
//! Measures three hot paths introduced by the staged engine:
//!
//! * **multi-scenario expected cost** — the seed serial path (one
//!   single-shot `evaluate` per scenario, re-deriving demands and
//!   utilization every time) against the staged path (one
//!   `PreparedDesign`, one `evaluate_scenario` per scenario);
//! * **100-point sweep** — the plain sweep driver over a 100-value
//!   vault-interval axis;
//! * **parallel vs. serial** — the same sweep under the supervisor at
//!   `jobs = 1` and `jobs = 4`.
//!
//! Usage: `bench_eval [--json] [--iters N]`. With `--json` the numbers
//! print as a stable JSON object; redirect to `BENCH_eval.json` to
//! refresh the committed snapshot.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use ssdep_core::analysis::{evaluate, PreparedDesign, WeightedScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Bytes, TimeDelta};
use std::hint::black_box;
use std::time::Instant;

/// The benchmark's scenario catalog: every scope on the ladder, plus
/// the spread of object-corruption rollbacks that dominates real
/// frequency catalogs (the paper's case study puts object corruption at
/// monthly against 0.1/yr for array loss, so a representative catalog
/// is rollback-heavy).
fn scenario_grid() -> Vec<FailureScenario> {
    let mut scenarios: Vec<FailureScenario> = [1.0, 8.0, 12.0, 24.0, 48.0]
        .iter()
        .map(|&age| {
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(age),
                },
            )
        })
        .collect();
    scenarios.push(FailureScenario::new(
        FailureScope::DataObject {
            size: Bytes::from_mib(8.0),
        },
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::DataObject {
            size: Bytes::from_mib(64.0),
        },
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Array,
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Building,
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Site,
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Region,
        RecoveryTarget::Now,
    ));
    scenarios
}

/// Nanoseconds per iteration of `work`, averaged over `iters` runs.
fn time_ns(iters: u32, mut work: impl FnMut()) -> u128 {
    // One warm-up pass keeps one-time costs (allocator growth, lazy
    // statics) out of the measurement.
    work();
    let start = Instant::now();
    for _ in 0..iters {
        work();
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let mut iters: u32 = 300;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--iters" {
            match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => iters = n,
                None => {
                    eprintln!("--iters needs a positive integer");
                    std::process::exit(1);
                }
            }
        }
    }

    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = scenario_grid();

    // -- The preparation stage alone (demands + utilization + ranges).
    let prepare_ns = time_ns(iters, || {
        black_box(PreparedDesign::prepare(&design, &workload).unwrap());
    });

    if std::env::var("BENCH_EVAL_PER_SCENARIO").is_ok() {
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        for scenario in &scenarios {
            let ns = time_ns(iters, || {
                black_box(prepared.evaluate_scenario(&requirements, scenario).unwrap());
            });
            println!("scenario stage {ns:>6} ns  {scenario}");
        }
    }

    // -- Multi-scenario expected cost: seed serial vs staged. ---------
    let seed_ns = time_ns(iters, || {
        for scenario in &scenarios {
            black_box(evaluate(&design, &workload, &requirements, scenario).unwrap());
        }
    });
    // The staged arm drives the batch API end to end: one preparation,
    // then `evaluate_scenario_shared` over already-shared scenarios (the
    // form a weighted catalog holds them in).
    let shared: Vec<std::sync::Arc<FailureScenario>> = scenarios
        .iter()
        .map(|s| std::sync::Arc::new(s.clone()))
        .collect();
    let staged_ns = time_ns(iters, || {
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        for scenario in &shared {
            black_box(
                prepared
                    .evaluate_scenario_shared(&requirements, std::sync::Arc::clone(scenario))
                    .unwrap(),
            );
        }
    });
    let speedup = seed_ns as f64 / staged_ns.max(1) as f64;

    // -- 100-point sweep through the plain driver. --------------------
    let values: Vec<f64> = (0..100).map(|i| 1.0 + f64::from(i) * 0.1).collect();
    let catalog: Vec<WeightedScenario> = ssdep_core::presets::paper_scenario_catalog();
    let sweep_start = Instant::now();
    let series = ssdep_opt::sweep::sweep(
        &values,
        ssdep_opt::sweep::vault_interval_design,
        &workload,
        &requirements,
        &catalog,
    );
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    assert!(series.is_complete(), "the bench sweep must not break");

    // -- Parallel vs. serial supervised sweep. ------------------------
    let supervised_secs = |jobs: usize| {
        let config = ssdep_opt::SupervisorConfig {
            jobs,
            ..ssdep_opt::SupervisorConfig::default()
        };
        let start = Instant::now();
        let run = ssdep_opt::sweep::supervised_sweep(
            "weeks",
            &values,
            ssdep_opt::sweep::vault_interval_design,
            &workload,
            &requirements,
            &catalog,
            &ssdep_opt::Supervisor::new(config),
        )
        .unwrap();
        assert_eq!(run.series.points.len(), values.len());
        start.elapsed().as_secs_f64()
    };
    let serial_secs = supervised_secs(1);
    let parallel_secs = supervised_secs(4);

    if as_json {
        println!(
            "{{\n  \"generator\": \"bench_eval --json --iters {iters}\",\n  \
             \"multi_scenario\": {{\n    \"scenarios\": {nscen},\n    \
             \"prepare_ns\": {prepare_ns},\n    \
             \"seed_serial_ns_per_iter\": {seed_ns},\n    \
             \"staged_ns_per_iter\": {staged_ns},\n    \
             \"speedup\": {speedup:.2}\n  }},\n  \
             \"sweep_100_points\": {{\n    \"points\": 100,\n    \
             \"plain_secs\": {sweep_secs:.4},\n    \
             \"supervised_jobs1_secs\": {serial_secs:.4},\n    \
             \"supervised_jobs4_secs\": {parallel_secs:.4}\n  }}\n}}",
            nscen = scenarios.len(),
        );
    } else {
        println!("preparation stage alone: {prepare_ns} ns");
        println!(
            "multi-scenario ({} scenarios): seed {seed_ns} ns/iter, staged {staged_ns} ns/iter \
             ({speedup:.2}x)",
            scenarios.len()
        );
        println!("100-point sweep: plain {sweep_secs:.4} s");
        println!("supervised sweep: jobs=1 {serial_secs:.4} s, jobs=4 {parallel_secs:.4} s");
    }
}

//! Staged-evaluation performance snapshot (`BENCH_eval.json`'s
//! generator).
//!
//! Measures three hot paths introduced by the staged engine:
//!
//! * **multi-scenario expected cost** — the seed serial path (one
//!   single-shot `evaluate` per scenario, re-deriving demands and
//!   utilization every time) against the staged path (one
//!   `PreparedDesign`, one `evaluate_scenario` per scenario);
//! * **100-point sweep** — the plain sweep driver over a 100-value
//!   vault-interval axis;
//! * **parallel vs. serial** — the same sweep under the supervisor at
//!   `jobs = 1` and `jobs = 4`.
//!
//! * **candidate enumeration** — plain [`exhaustive`] against
//!   [`supervised_exhaustive`] at `jobs = 1` and `jobs = 4` over a
//!   dense parameter grid (10^5+ coherent candidates), the scale the
//!   chunked-claim supervisor must pay for.
//!
//! Usage: `bench_eval [--json] [--iters N] [--quick] [--gate]`. With
//! `--json` the numbers print as a stable JSON object; redirect to
//! `BENCH_eval.json` to refresh the committed snapshot. `--quick`
//! shrinks the enumeration grid to a few thousand candidates; `--gate`
//! runs only the quick enumeration and exits non-zero when the
//! supervised overhead blows its budget (the CI perf smoke gate).
//!
//! [`exhaustive`]: ssdep_opt::search::exhaustive
//! [`supervised_exhaustive`]: ssdep_opt::search::supervised_exhaustive

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use ssdep_core::analysis::{evaluate, PreparedDesign, WeightedScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_opt::space::{BackupChoice, DesignSpace, MirrorChoice, PitChoice, VaultChoice};
use std::hint::black_box;
use std::time::Instant;

/// The benchmark's scenario catalog: every scope on the ladder, plus
/// the spread of object-corruption rollbacks that dominates real
/// frequency catalogs (the paper's case study puts object corruption at
/// monthly against 0.1/yr for array loss, so a representative catalog
/// is rollback-heavy).
fn scenario_grid() -> Vec<FailureScenario> {
    let mut scenarios: Vec<FailureScenario> = [1.0, 8.0, 12.0, 24.0, 48.0]
        .iter()
        .map(|&age| {
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(age),
                },
            )
        })
        .collect();
    scenarios.push(FailureScenario::new(
        FailureScope::DataObject {
            size: Bytes::from_mib(8.0),
        },
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::DataObject {
            size: Bytes::from_mib(64.0),
        },
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Array,
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Building,
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Site,
        RecoveryTarget::Now,
    ));
    scenarios.push(FailureScenario::new(
        FailureScope::Region,
        RecoveryTarget::Now,
    ));
    scenarios
}

/// A dense policy grid whose coherent cross product runs past 10^5
/// candidates — the enumeration scale the supervised hot path is
/// specified against.
fn dense_space() -> DesignSpace {
    let mut pit = vec![PitChoice::None];
    for acc_hours in [4.0, 8.0, 12.0, 24.0] {
        for retained in [2, 4] {
            pit.push(PitChoice::SplitMirror {
                acc_hours,
                retained,
            });
        }
        for retained in [4, 8] {
            pit.push(PitChoice::Snapshot {
                acc_hours,
                retained,
            });
        }
    }
    let mut backup = vec![BackupChoice::None];
    for acc_hours in [24.0, 48.0, 96.0, 168.0] {
        for prop_hours in [12.0, 24.0, 48.0] {
            for retained in [4, 14, 28] {
                for daily_incrementals in [0, 5] {
                    backup.push(BackupChoice::Fulls {
                        acc_hours,
                        prop_hours,
                        retained,
                        daily_incrementals,
                    });
                }
            }
        }
    }
    let mut vault = vec![VaultChoice::None];
    for acc_weeks in [1.0, 2.0, 4.0] {
        for hold_hours in [12.0, 168.0, 684.0] {
            for retained in [13, 39] {
                vault.push(VaultChoice::Ship {
                    acc_weeks,
                    hold_hours,
                    retained,
                });
            }
        }
    }
    let mut mirror = vec![MirrorChoice::None];
    for links in [1, 2, 4, 8, 10] {
        mirror.push(MirrorChoice::Synchronous { links });
    }
    for acc_minutes in [0.5, 1.0, 5.0] {
        for links in [1, 4, 10] {
            mirror.push(MirrorChoice::Batched { acc_minutes, links });
        }
    }
    DesignSpace {
        pit,
        backup,
        vault,
        mirror,
    }
}

/// A slice of the same grid (a couple thousand candidates): big enough
/// to time, small enough for the CI perf gate.
fn quick_space() -> DesignSpace {
    let mut space = dense_space();
    space.pit.retain(|p| !matches!(p, PitChoice::SplitMirror { acc_hours, .. } | PitChoice::Snapshot { acc_hours, .. } if *acc_hours < 12.0));
    space.backup.retain(|b| match b {
        BackupChoice::None => true,
        BackupChoice::Fulls {
            prop_hours,
            daily_incrementals,
            ..
        } => *prop_hours > 12.0 && *daily_incrementals == 0,
    });
    space.vault.truncate(3);
    space.mirror.retain(|m| match m {
        MirrorChoice::None => true,
        MirrorChoice::Synchronous { links } => *links <= 4,
        MirrorChoice::Batched { acc_minutes, links } => *acc_minutes == 1.0 && *links != 4,
    });
    space
}

/// The enumeration timings: one plain pass, one supervised pass per job
/// count, each best-of-`repeats` (fresh supervisor — and therefore cold
/// cache — per pass, matching the cacheless plain driver).
struct EnumTimes {
    candidates: usize,
    plain_secs: f64,
    jobs1_secs: f64,
    jobs4_secs: f64,
}

fn best_of(repeats: u32, mut work: impl FnMut() -> f64) -> f64 {
    (0..repeats.max(1)).map(|_| work()).fold(f64::MAX, f64::min)
}

fn enumeration_times(
    space: &DesignSpace,
    workload: &ssdep_core::workload::Workload,
    requirements: &ssdep_core::requirements::BusinessRequirements,
    catalog: &[WeightedScenario],
    repeats: u32,
) -> EnumTimes {
    let candidates = space.len();
    let plain_secs = best_of(repeats, || {
        let start = Instant::now();
        let result = ssdep_opt::search::exhaustive(space, workload, requirements, catalog)
            .expect("plain enumeration");
        black_box(result.ranked.len());
        start.elapsed().as_secs_f64()
    });
    // Probe knob: BENCH_EVAL_CACHE_BYTES overrides the engine's memo
    // budget (0 disables caching), to attribute supervised overhead.
    let cache_override: Option<usize> = std::env::var("BENCH_EVAL_CACHE_BYTES")
        .ok()
        .and_then(|v| v.parse().ok());
    let supervised = |jobs: usize| {
        best_of(repeats, || {
            let mut supervisor = ssdep_opt::Supervisor::new(ssdep_opt::SupervisorConfig {
                jobs,
                ..ssdep_opt::SupervisorConfig::default()
            });
            if let Some(cache_bytes) = cache_override {
                supervisor = supervisor.with_engine(std::sync::Arc::new(
                    ssdep_opt::EvalEngine::new(ssdep_opt::EngineConfig {
                        cache_bytes,
                        ..ssdep_opt::EngineConfig::default()
                    }),
                ));
            }
            let start = Instant::now();
            let run = ssdep_opt::search::supervised_exhaustive(
                space,
                workload,
                requirements,
                catalog,
                &supervisor,
            )
            .expect("supervised enumeration");
            let secs = start.elapsed().as_secs_f64();
            assert!(run.failed.is_empty(), "the bench space must not quarantine");
            black_box(run.result.ranked.len());
            secs
        })
    };
    let jobs1_secs = supervised(1);
    let jobs4_secs = supervised(4);
    EnumTimes {
        candidates,
        plain_secs,
        jobs1_secs,
        jobs4_secs,
    }
}

/// Nanoseconds per iteration of `work`, averaged over `iters` runs.
fn time_ns(iters: u32, mut work: impl FnMut()) -> u128 {
    // One warm-up pass keeps one-time costs (allocator growth, lazy
    // statics) out of the measurement.
    work();
    let start = Instant::now();
    for _ in 0..iters {
        work();
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let mut iters: u32 = 300;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--iters" {
            match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => iters = n,
                None => {
                    eprintln!("--iters needs a positive integer");
                    std::process::exit(1);
                }
            }
        }
    }

    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = scenario_grid();

    if gate {
        // CI perf smoke gate: quick enumeration, best-of-3 per arm,
        // generous thresholds (noise-tolerant, regression-catching).
        // On a single-core host `--jobs 4` cannot be *faster*, so the
        // gate only requires it not be meaningfully slower.
        let catalog = ssdep_core::presets::paper_scenario_catalog();
        let times = enumeration_times(&quick_space(), &workload, &requirements, &catalog, 3);
        let over_plain = times.jobs1_secs / times.plain_secs.max(f64::MIN_POSITIVE);
        let jobs4_over_jobs1 = times.jobs4_secs / times.jobs1_secs.max(f64::MIN_POSITIVE);
        println!(
            "perf gate: {} candidates | plain {:.4}s | supervised jobs=1 {:.4}s \
             ({over_plain:.2}x plain) | jobs=4 {:.4}s ({jobs4_over_jobs1:.2}x jobs=1)",
            times.candidates, times.plain_secs, times.jobs1_secs, times.jobs4_secs,
        );
        let mut failed = false;
        if over_plain > 2.0 {
            eprintln!(
                "perf gate FAILED: supervised jobs=1 is {over_plain:.2}x plain (budget 2.0x)"
            );
            failed = true;
        }
        if jobs4_over_jobs1 > 1.5 {
            eprintln!("perf gate FAILED: jobs=4 is {jobs4_over_jobs1:.2}x jobs=1 (budget 1.5x)");
            failed = true;
        }
        if !failed {
            println!("perf gate passed");
        }
        std::process::exit(i32::from(failed));
    }

    // -- The preparation stage alone (demands + utilization + ranges).
    let prepare_ns = time_ns(iters, || {
        black_box(PreparedDesign::prepare(&design, &workload).unwrap());
    });

    if std::env::var("BENCH_EVAL_PER_SCENARIO").is_ok() {
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        for scenario in &scenarios {
            let ns = time_ns(iters, || {
                black_box(prepared.evaluate_scenario(&requirements, scenario).unwrap());
            });
            println!("scenario stage {ns:>6} ns  {scenario}");
        }
    }

    // -- Multi-scenario expected cost: seed serial vs staged. ---------
    let seed_ns = time_ns(iters, || {
        for scenario in &scenarios {
            black_box(evaluate(&design, &workload, &requirements, scenario).unwrap());
        }
    });
    // The staged arm drives the batch API end to end: one preparation,
    // then `evaluate_scenario_shared` over already-shared scenarios (the
    // form a weighted catalog holds them in).
    let shared: Vec<std::sync::Arc<FailureScenario>> = scenarios
        .iter()
        .map(|s| std::sync::Arc::new(s.clone()))
        .collect();
    let staged_ns = time_ns(iters, || {
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        for scenario in &shared {
            black_box(
                prepared
                    .evaluate_scenario_shared(&requirements, std::sync::Arc::clone(scenario))
                    .unwrap(),
            );
        }
    });
    let speedup = seed_ns as f64 / staged_ns.max(1) as f64;

    // -- 100-point sweep through the plain driver. --------------------
    let values: Vec<f64> = (0..100).map(|i| 1.0 + f64::from(i) * 0.1).collect();
    let catalog: Vec<WeightedScenario> = ssdep_core::presets::paper_scenario_catalog();
    let sweep_start = Instant::now();
    let series = ssdep_opt::sweep::sweep(
        &values,
        ssdep_opt::sweep::vault_interval_design,
        &workload,
        &requirements,
        &catalog,
    );
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    assert!(series.is_complete(), "the bench sweep must not break");

    // -- Parallel vs. serial supervised sweep. ------------------------
    let supervised_secs = |jobs: usize| {
        let config = ssdep_opt::SupervisorConfig {
            jobs,
            ..ssdep_opt::SupervisorConfig::default()
        };
        let start = Instant::now();
        let run = ssdep_opt::sweep::supervised_sweep(
            "weeks",
            &values,
            ssdep_opt::sweep::vault_interval_design,
            &workload,
            &requirements,
            &catalog,
            &ssdep_opt::Supervisor::new(config),
        )
        .unwrap();
        assert_eq!(run.series.points.len(), values.len());
        start.elapsed().as_secs_f64()
    };
    let serial_secs = supervised_secs(1);
    let parallel_secs = supervised_secs(4);

    // -- Candidate enumeration at scale. ------------------------------
    let space = if quick { quick_space() } else { dense_space() };
    let repeats = if quick { 3 } else { 1 };
    let enumeration = enumeration_times(
        &space,
        &workload,
        &requirements,
        &ssdep_core::presets::paper_scenario_catalog(),
        repeats,
    );
    let enum_over_plain = enumeration.jobs1_secs / enumeration.plain_secs.max(f64::MIN_POSITIVE);
    let enum_jobs4_over_jobs1 =
        enumeration.jobs4_secs / enumeration.jobs1_secs.max(f64::MIN_POSITIVE);

    if as_json {
        println!(
            "{{\n  \"generator\": \"bench_eval --json --iters {iters}\",\n  \
             \"multi_scenario\": {{\n    \"scenarios\": {nscen},\n    \
             \"prepare_ns\": {prepare_ns},\n    \
             \"seed_serial_ns_per_iter\": {seed_ns},\n    \
             \"staged_ns_per_iter\": {staged_ns},\n    \
             \"speedup\": {speedup:.2}\n  }},\n  \
             \"sweep_100_points\": {{\n    \"points\": 100,\n    \
             \"plain_secs\": {sweep_secs:.4},\n    \
             \"supervised_jobs1_secs\": {serial_secs:.4},\n    \
             \"supervised_jobs4_secs\": {parallel_secs:.4}\n  }},\n  \
             \"enumeration\": {{\n    \"candidates\": {candidates},\n    \
             \"plain_secs\": {eplain:.4},\n    \
             \"supervised_jobs1_secs\": {ejobs1:.4},\n    \
             \"supervised_jobs4_secs\": {ejobs4:.4},\n    \
             \"supervised_over_plain\": {enum_over_plain:.2},\n    \
             \"jobs4_over_jobs1\": {enum_jobs4_over_jobs1:.2},\n    \
             \"note\": \"measured on a single-core host, so parallel speedup is not \
observable and jobs=4 can only be asserted not-materially-slower than jobs=1; the \
supervised-over-plain residual at this scale is memo-cache admission churn (every \
candidate is unique, a 0% hit rate: with BENCH_EVAL_CACHE_BYTES=0 the ratio drops to \
about 1.4x) - moderate-scale runs sit near 1.3x; see ci.sh's perf gate\"\n  }}\n}}",
            nscen = scenarios.len(),
            candidates = enumeration.candidates,
            eplain = enumeration.plain_secs,
            ejobs1 = enumeration.jobs1_secs,
            ejobs4 = enumeration.jobs4_secs,
        );
    } else {
        println!("preparation stage alone: {prepare_ns} ns");
        println!(
            "multi-scenario ({} scenarios): seed {seed_ns} ns/iter, staged {staged_ns} ns/iter \
             ({speedup:.2}x)",
            scenarios.len()
        );
        println!("100-point sweep: plain {sweep_secs:.4} s");
        println!("supervised sweep: jobs=1 {serial_secs:.4} s, jobs=4 {parallel_secs:.4} s");
        println!(
            "enumeration ({} candidates): plain {:.4} s, supervised jobs=1 {:.4} s \
             ({enum_over_plain:.2}x), jobs=4 {:.4} s ({enum_jobs4_over_jobs1:.2}x jobs=1)",
            enumeration.candidates,
            enumeration.plain_secs,
            enumeration.jobs1_secs,
            enumeration.jobs4_secs,
        );
    }
}

//! Daemon load-test snapshot (`BENCH_serve.json`'s generator).
//!
//! Starts an in-process `ssdep-serve` daemon on an ephemeral port,
//! drives it with concurrent closed-loop HTTP clients posting the
//! paper's baseline system against an 11-scenario catalog, and reports
//! throughput (requests/sec and scenario evaluations/sec) plus the
//! daemon's own p50/p99 latency histogram from `/metrics`.
//!
//! Usage: `bench_serve [--json] [--requests N] [--clients C]`. With
//! `--json` the numbers print as a stable JSON object; redirect to
//! `BENCH_serve.json` to refresh the committed snapshot.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use serde::Serialize;
use ssdep_core::composite::CompositeScenario;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The same scenario spread `bench_eval` measures: five aged
/// object-corruption rollbacks, two recover-to-now object losses, and
/// the four hardware scopes.
fn scenario_grid() -> Vec<CompositeScenario> {
    let mut scenarios: Vec<FailureScenario> = [1.0, 8.0, 12.0, 24.0, 48.0]
        .iter()
        .map(|&age| {
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(age),
                },
            )
        })
        .collect();
    for size in [8.0, 64.0] {
        scenarios.push(FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(size),
            },
            RecoveryTarget::Now,
        ));
    }
    for scope in [
        FailureScope::Array,
        FailureScope::Building,
        FailureScope::Site,
        FailureScope::Region,
    ] {
        scenarios.push(FailureScenario::new(scope, RecoveryTarget::Now));
    }
    scenarios
        .into_iter()
        .map(|scenario| CompositeScenario::Single { scenario })
        .collect()
}

/// The paper's baseline system plus the scenario catalog, as one
/// `/evaluate` body.
fn evaluate_body() -> String {
    #[derive(Serialize)]
    struct Body {
        workload: ssdep_core::Workload,
        design: ssdep_core::hierarchy::StorageDesign,
        requirements: ssdep_core::requirements::BusinessRequirements,
        scenarios: Vec<CompositeScenario>,
    }
    serde_json::to_string(&Body {
        workload: ssdep_core::presets::cello_workload(),
        design: ssdep_core::presets::baseline_design(),
        requirements: ssdep_core::presets::paper_requirements(),
        scenarios: scenario_grid(),
    })
    .unwrap()
}

/// One closed-loop HTTP exchange; returns the response head's status.
fn exchange(addr: &str, method: &str, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head = String::from_utf8_lossy(&response);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    status
}

/// Reads the body of a GET as a string (for `/metrics`).
fn fetch(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to the daemon");
    let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    match response.find("\r\n\r\n") {
        Some(at) => response[at + 4..].to_string(),
        None => response,
    }
}

/// Pulls the integer value of `"key":<n>` out of a flat JSON object.
fn field_u64(json: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = json.find(&marker).expect("metrics field present");
    json[at + marker.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("metrics field is an integer")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let mut requests: usize = 2000;
    let mut clients: usize = 4;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let target: &mut usize = match arg.as_str() {
            "--requests" => &mut requests,
            "--clients" => &mut clients,
            _ => continue,
        };
        match iter.next().and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => *target = n,
            _ => {
                eprintln!("{arg} needs a positive integer");
                std::process::exit(1);
            }
        }
    }

    let jobs = clients.max(1);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        queue_depth: (clients * 4).max(8),
        deadline: Duration::from_secs(30),
        fault: None,
    })
    .expect("start the daemon");
    let addr = server.addr().to_string();
    let body = evaluate_body();
    let scenarios_per_request = scenario_grid().len();

    // Warm the engine's memo cache so the snapshot measures the steady
    // state, not the one-time preparation.
    assert_eq!(exchange(&addr, "POST", "/evaluate", &body), 200);

    let per_client = requests.div_ceil(clients.max(1));
    let total_requests = per_client * clients;
    let start = Instant::now();
    let workers: Vec<std::thread::JoinHandle<()>> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                for _ in 0..per_client {
                    assert_eq!(exchange(&addr, "POST", "/evaluate", &body), 200);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();

    let metrics = fetch(&addr, "/metrics");
    let p50_micros = field_u64(&metrics, "p50_micros");
    let p99_micros = field_u64(&metrics, "p99_micros");

    server.begin_shutdown();
    let summary = server.drain();
    assert_eq!(summary.stuck_threads, 0, "drain abandoned stuck threads");

    let requests_per_sec = total_requests as f64 / elapsed;
    let evals_per_sec = requests_per_sec * scenarios_per_request as f64;

    if as_json {
        println!(
            "{{\n  \"generator\": \"bench_serve --json --requests {requests} --clients \
             {clients}\",\n  \"config\": {{\n    \"requests\": {total_requests},\n    \
             \"clients\": {clients},\n    \"jobs\": {jobs},\n    \
             \"scenarios_per_request\": {scenarios_per_request}\n  }},\n  \
             \"throughput\": {{\n    \"elapsed_secs\": {elapsed:.4},\n    \
             \"requests_per_sec\": {requests_per_sec:.0},\n    \
             \"evals_per_sec\": {evals_per_sec:.0}\n  }},\n  \
             \"latency\": {{\n    \"p50_micros\": {p50_micros},\n    \
             \"p99_micros\": {p99_micros}\n  }}\n}}"
        );
    } else {
        println!(
            "{total_requests} requests x {scenarios_per_request} scenarios over {clients} \
             clients in {elapsed:.3} s"
        );
        println!("throughput: {requests_per_sec:.0} req/s = {evals_per_sec:.0} evals/s");
        println!("daemon latency: p50 {p50_micros} us, p99 {p99_micros} us");
    }
}

//! Prints the paper's Table 3 (policy) and Table 4 (device) inputs as
//! the presets encode them.

fn main() {
    println!("{}", ssdep_bench::table3_table4());
}

//! Regenerates paper Table 2: measured workload statistics from the
//! synthetic cello-like trace.

fn main() {
    match ssdep_bench::table2(4.0, 42) {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

//! Regenerates paper Figure 5: the overall cost breakdown per failure
//! scenario.

fn main() {
    match ssdep_bench::figure5() {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

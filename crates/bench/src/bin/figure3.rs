//! Regenerates paper Figure 3: the guaranteed RP time range per level.

fn main() {
    println!("{}", ssdep_bench::figure3());
}

//! Regenerates paper Table 6: worst-case recovery time and recent data
//! loss for the baseline design.

fn main() {
    match ssdep_bench::table6() {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

//! Regenerates paper Table 5: normal-mode utilization of the baseline
//! design.

fn main() {
    match ssdep_bench::table5() {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

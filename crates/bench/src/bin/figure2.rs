//! Prints the paper's Figure 2: the baseline policies' cadence.

fn main() {
    println!("{}", ssdep_bench::figure2());
}

//! Latency of the extension analyses: degraded-mode matrices, risk
//! profiles, coverage ladders, multi-object recovery, and growth sweeps.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use ssdep_core::analysis::{self, WeightedScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::multi::{evaluate_multi, MultiObjectWorkload, ObjectSpec};
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;
use std::hint::black_box;

fn catalog() -> Vec<WeightedScenario> {
    vec![
        WeightedScenario::new(
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(24.0),
                },
            ),
            12.0,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            0.1,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            0.02,
        ),
    ]
}

fn bench_extensions(c: &mut Criterion) {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios: Vec<FailureScenario> = catalog()
        .into_iter()
        .map(|w| w.scenario.as_ref().clone())
        .collect();

    let mut group = c.benchmark_group("extensions");
    group.sample_size(40);

    group.bench_function("degraded_exposure_3x3", |b| {
        b.iter(|| {
            analysis::degraded_exposure(black_box(&design), &workload, &requirements, &scenarios)
                .unwrap()
        })
    });

    let weighted = catalog();
    group.bench_function("risk_profile", |b| {
        b.iter(|| {
            analysis::risk_profile(&design, &workload, &requirements, black_box(&weighted)).unwrap()
        })
    });

    let ladder = analysis::coverage::default_ladder();
    group.bench_function("coverage_ladder", |b| {
        b.iter(|| {
            analysis::coverage(&design, &workload, &requirements, black_box(&ladder)).unwrap()
        })
    });

    let object = |name: &str, gib: f64| {
        ObjectSpec::new(
            Workload::builder(name)
                .data_capacity(Bytes::from_gib(gib))
                .avg_access_rate(Bandwidth::from_kib_per_sec(400.0))
                .avg_update_rate(Bandwidth::from_kib_per_sec(300.0))
                .build()
                .unwrap(),
        )
    };
    let multi = MultiObjectWorkload::new(vec![
        object("a", 500.0),
        object("b", 300.0),
        object("c", 200.0),
    ])
    .unwrap();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    group.bench_function("multi_object_three", |b| {
        b.iter(|| evaluate_multi(&design, black_box(&multi), &requirements, &scenario).unwrap())
    });

    group.bench_function("growth_sweep_five_points", |b| {
        b.iter(|| {
            ssdep_opt::sweep::sweep_growth(
                black_box(&[0.5, 0.75, 1.0, 1.25, 1.5]),
                &design,
                &workload,
                &requirements,
                &weighted,
            )
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);

//! Latency of single-design dependability evaluations — the framework is
//! meant to sit in an optimizer's inner loop (§1), so evaluations/second
//! is its headline performance number.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use ssdep_core::analysis::{evaluate, expected_annual_cost, WeightedScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Bytes, TimeDelta};
use std::hint::black_box;

fn bench_evaluation(c: &mut Criterion) {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();

    let mut group = c.benchmark_group("evaluate");
    group.sample_size(60);

    let array = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    group.bench_function("baseline_array_failure", |b| {
        b.iter(|| {
            evaluate(
                black_box(&design),
                black_box(&workload),
                &requirements,
                black_box(&array),
            )
            .unwrap()
        })
    });

    let object = FailureScenario::new(
        FailureScope::DataObject {
            size: Bytes::from_mib(1.0),
        },
        RecoveryTarget::Before {
            age: TimeDelta::from_hours(24.0),
        },
    );
    group.bench_function("baseline_object_rollback", |b| {
        b.iter(|| evaluate(&design, &workload, &requirements, black_box(&object)).unwrap())
    });

    let scenarios = vec![
        WeightedScenario::new(object.clone(), 12.0),
        WeightedScenario::new(array.clone(), 0.1),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            0.02,
        ),
    ];
    group.bench_function("expected_cost_three_scenarios", |b| {
        b.iter(|| {
            expected_annual_cost(&design, &workload, &requirements, black_box(&scenarios)).unwrap()
        })
    });

    group.bench_function("demands_only", |b| {
        b.iter(|| design.demands(black_box(&workload)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_evaluation);
criterion_main!(benches);

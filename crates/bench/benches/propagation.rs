//! Latency of the propagation / data-loss / recovery sub-models in
//! isolation — the pieces an optimizer may call orders of magnitude more
//! often than full evaluations.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use ssdep_core::analysis;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use std::hint::black_box;

fn bench_submodels(c: &mut Criterion) {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let demands = design.demands(&workload).unwrap();
    let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
    let loss = analysis::data_loss(&design, &scenario).unwrap();

    let mut group = c.benchmark_group("submodels");
    group.sample_size(60);

    group.bench_function("level_ranges", |b| {
        b.iter(|| analysis::level_ranges(black_box(&design)))
    });
    group.bench_function("data_loss_site", |b| {
        b.iter(|| analysis::data_loss(&design, black_box(&scenario)).unwrap())
    });
    group.bench_function("recovery_site", |b| {
        b.iter(|| {
            analysis::recovery(&design, &workload, &demands, &scenario, loss.source_level).unwrap()
        })
    });
    group.bench_function("utilization", |b| {
        b.iter(|| analysis::utilization_from_demands(&design, black_box(&demands)))
    });
    group.bench_function("batch_update_rate_curve", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for hours in 1..=168 {
                total += workload
                    .batch_update_rate(ssdep_core::units::TimeDelta::from_hours(hours as f64))
                    .value();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_submodels);
criterion_main!(benches);

//! Throughput of the automated design search (the paper's optimization
//! loop use case).

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use ssdep_opt::search::{exhaustive, hill_climb, paper_scenarios};
use ssdep_opt::space::DesignSpace;
use std::hint::black_box;

fn bench_optimizer(c: &mut Criterion) {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = paper_scenarios();

    let mut group = c.benchmark_group("optimizer");
    group.sample_size(20);

    let minimal = DesignSpace::minimal();
    group.bench_function("exhaustive_minimal_16", |b| {
        b.iter(|| exhaustive(black_box(&minimal), &workload, &requirements, &scenarios).unwrap())
    });

    let broad = DesignSpace::broad();
    group.bench_function("exhaustive_broad", |b| {
        b.iter(|| exhaustive(black_box(&broad), &workload, &requirements, &scenarios).unwrap())
    });

    group.bench_function("hill_climb_broad", |b| {
        b.iter(|| hill_climb(black_box(&broad), &workload, &requirements, &scenarios).unwrap())
    });

    group.bench_function("materialize_candidate", |b| {
        let candidate = minimal.candidates().next().unwrap();
        b.iter(|| black_box(&candidate).materialize().unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);

//! Discrete-event simulator throughput: pipeline execution and failure
//! injection.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::TimeDelta;
use ssdep_sim::recovery::simulate_failure;
use ssdep_sim::{SimConfig, Simulation};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let demands = design.demands(&workload).unwrap();

    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);

    group.bench_function("run_26_weeks_baseline", |b| {
        b.iter(|| {
            Simulation::new(
                black_box(&design),
                &workload,
                SimConfig::new(TimeDelta::from_weeks(26.0)),
            )
            .unwrap()
            .run()
        })
    });

    let report = Simulation::new(
        &design,
        &workload,
        SimConfig::new(TimeDelta::from_weeks(26.0)),
    )
    .unwrap()
    .run();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    group.bench_function("inject_failure_and_recover", |b| {
        b.iter(|| {
            simulate_failure(
                &design,
                &workload,
                &demands,
                black_box(&report),
                &scenario,
                TimeDelta::from_weeks(20.0).as_secs(),
            )
            .unwrap()
        })
    });

    let mirror = ssdep_core::presets::async_batch_mirror_design(1);
    group.bench_function("run_1_week_minute_batches", |b| {
        // One-minute batches mean ~10k events per simulated week.
        b.iter(|| {
            Simulation::new(
                black_box(&mirror),
                &workload,
                SimConfig::new(TimeDelta::from_weeks(1.0)),
            )
            .unwrap()
            .run()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

//! Synthetic trace generation and estimation throughput.

// Benchmarks unwrap on fixture setup: a panic aborts the bench run,
// which is the right failure report outside the library policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use ssdep_core::units::TimeDelta;
use ssdep_workload::{estimate, TraceGenerator};
use std::hint::black_box;

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(20);

    let generator = TraceGenerator::builder()
        .duration(TimeDelta::from_hours(6.0))
        .extent_count(100_000)
        .updates_per_sec(10.0)
        .burst_multiplier(10.0)
        .burst_duty(0.05)
        .locality(0.7, 1_000)
        .seed(7)
        .build()
        .unwrap();

    group.bench_function("generate_6h_trace", |b| {
        b.iter(|| black_box(&generator).generate())
    });

    let trace = generator.generate();
    group.bench_function("measure_unique_1h_windows", |b| {
        b.iter(|| {
            estimate::unique_bytes_per_window(black_box(&trace), TimeDelta::from_hours(1.0))
                .unwrap()
        })
    });
    group.bench_function("burst_multiplier", |b| {
        b.iter(|| estimate::burst_multiplier(black_box(&trace), TimeDelta::from_secs(1.0)))
    });
    group.bench_function("cello_locality_fit", |b| {
        b.iter(ssdep_workload::cello::cello_fit)
    });

    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);

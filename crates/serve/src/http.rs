//! A deliberately minimal HTTP/1.1 layer: just enough protocol to
//! carry JSON evaluation traffic, with hard input limits so a
//! misbehaving client cannot exhaust the daemon.
//!
//! Every response is fully assembled in memory and written with a
//! single `write_all` — the daemon never starts a body it cannot
//! finish, so clients never observe torn JSON (the chaos harness
//! asserts this). The one exception, sweep streaming, writes whole
//! newline-delimited JSON documents per call for the same reason.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, target path, body bytes.
#[derive(Debug)]
pub struct Request {
    /// The HTTP method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query), e.g. `/evaluate`.
    pub target: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read; each maps to one response status.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or length field → `400`.
    Malformed(String),
    /// Head or body over the hard caps → `413`.
    TooLarge(String),
    /// The socket timed out mid-request → `408`.
    TimedOut,
    /// The peer vanished or the socket failed → no response possible.
    Disconnected,
}

impl RequestError {
    /// The response status this error maps to (`None`: peer is gone,
    /// nothing to send).
    pub fn status(&self) -> Option<u16> {
        match self {
            RequestError::Malformed(_) => Some(400),
            RequestError::TooLarge(_) => Some(413),
            RequestError::TimedOut => Some(408),
            RequestError::Disconnected => None,
        }
    }

    /// A one-line description for the error body.
    pub fn message(&self) -> String {
        match self {
            RequestError::Malformed(why) => format!("malformed request: {why}"),
            RequestError::TooLarge(why) => format!("request too large: {why}"),
            RequestError::TimedOut => "request timed out".to_string(),
            RequestError::Disconnected => "client disconnected".to_string(),
        }
    }
}

fn io_error(e: &io::Error) -> RequestError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RequestError::TimedOut,
        _ => RequestError::Disconnected,
    }
}

/// Reads one HTTP/1.1 request from the stream, enforcing
/// [`MAX_HEAD_BYTES`] and [`MAX_BODY_BYTES`].
///
/// # Errors
///
/// Returns a [`RequestError`] describing the response (if any) the
/// caller should send.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(&mut reader, &mut head_budget)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RequestError::Malformed("empty request line".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".to_string()))?
        .to_string();
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        _ => {
            return Err(RequestError::Malformed(
                "expected an HTTP/1.x version".to_string(),
            ))
        }
    }

    let mut content_length = 0usize;
    loop {
        let line = read_line(&mut reader, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header without a colon: `{line}`"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                RequestError::Malformed(format!("unparsable Content-Length `{}`", value.trim()))
            })?;
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| io_error(&e))?;
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, charging the head budget.
fn read_line(
    reader: &mut BufReader<&mut TcpStream>,
    budget: &mut usize,
) -> Result<String, RequestError> {
    let mut raw = Vec::new();
    let chunk = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)
        .map_err(|e| io_error(&e))?;
    if chunk == 0 {
        return Err(RequestError::Disconnected);
    }
    if chunk > *budget {
        return Err(RequestError::TooLarge(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte cap"
        )));
    }
    *budget -= chunk;
    if raw.last() == Some(&b'\n') {
        raw.pop();
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".to_string()))
}

/// The canonical reason phrase for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one complete JSON response (status, headers, body) with a
/// single `write_all`, closing delimited by `Content-Length`.
///
/// # Errors
///
/// Returns socket write errors; the caller treats them as a vanished
/// peer.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut message = head.into_bytes();
    message.extend_from_slice(body.as_bytes());
    stream.write_all(&message)?;
    stream.flush()
}

/// Starts a newline-delimited-JSON streaming response. The body is
/// delimited by connection close; emit documents with
/// [`write_stream_line`] and then drop the stream.
///
/// # Errors
///
/// Returns socket write errors.
pub fn write_stream_head(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Emits one whole JSON document as a stream line (document + `\n` in
/// one `write_all`, then flush — a line is never left half-written).
///
/// # Errors
///
/// Returns socket write errors.
pub fn write_stream_line(stream: &mut TcpStream, document: &str) -> io::Result<()> {
    let mut line = Vec::with_capacity(document.len() + 1);
    line.extend_from_slice(document.as_bytes());
    line.push(b'\n');
    stream.write_all(&line)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
            stream.flush().unwrap();
            // Hold the socket open until the server side is done.
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let parsed = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            roundtrip(b"POST /evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.target, "/evaluate");
        assert_eq!(request.body, b"{\"a\"");
    }

    #[test]
    fn parses_a_bare_get() {
        let request = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.target, "/healthz");
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: many\r\n\r\n",
        ] {
            let err = roundtrip(raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?}: {err:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = roundtrip(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(413), "{err:?}");
    }

    #[test]
    fn error_statuses_have_reasons() {
        for status in [200, 400, 404, 408, 413, 422, 429, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown", "{status}");
        }
    }
}

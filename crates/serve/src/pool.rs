//! The daemon's bounded-concurrency seams: a fixed-depth admission
//! queue and a deadline-bounded thread join.
//!
//! This module is the only place in `ssdep-serve` allowed to construct
//! queues or join threads (enforced offline by `ssdep-lint` L012):
//! every queue here is depth-bounded so overload sheds instead of
//! accumulating, and every join carries a deadline so a stuck worker
//! can never wedge shutdown.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The sending half of a bounded work queue.
///
/// Dropping (all clones of) the sender closes the queue: workers see
/// the disconnect after draining what was admitted — that *is* the
/// graceful-drain mechanism.
#[derive(Debug)]
pub struct WorkQueue<T> {
    sender: SyncSender<T>,
}

impl<T> Clone for WorkQueue<T> {
    fn clone(&self) -> WorkQueue<T> {
        WorkQueue {
            sender: self.sender.clone(),
        }
    }
}

/// Why a job was not admitted; the job rides back to the caller.
#[derive(Debug)]
pub enum Rejected<T> {
    /// The queue is at depth — shed the job (`429`).
    Full(T),
    /// The queue is closed (shutdown) — refuse the job.
    Closed(T),
}

impl<T> WorkQueue<T> {
    /// A queue admitting at most `depth` jobs beyond what workers have
    /// claimed (minimum 1 — a zero-depth rendezvous queue would shed
    /// every job that arrives while all workers are busy, even idle
    /// ones racing to claim it).
    pub fn bounded(depth: usize) -> (WorkQueue<T>, Receiver<T>) {
        let (sender, receiver) = std::sync::mpsc::sync_channel(depth.max(1));
        (WorkQueue { sender }, receiver)
    }

    /// Admits a job without blocking; overload and shutdown hand the
    /// job back instead of queueing it.
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] at depth, [`Rejected::Closed`] after the
    /// receiver is gone.
    pub fn try_admit(&self, job: T) -> Result<(), Rejected<T>> {
        match self.sender.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => Err(Rejected::Full(job)),
            Err(TrySendError::Disconnected(job)) => Err(Rejected::Closed(job)),
        }
    }
}

/// The outcome of a deadline-bounded join.
#[derive(Debug)]
pub enum Joined<T> {
    /// The thread finished; its result.
    Finished(T),
    /// The thread finished by panicking.
    Panicked,
    /// The thread was still running at the deadline; the handle rides
    /// back so the caller can abandon it deliberately.
    TimedOut(JoinHandle<T>),
}

/// Joins `handle`, giving up after `deadline` — a shutdown path must
/// never block forever on one stuck thread.
pub fn join_with_deadline<T>(handle: JoinHandle<T>, deadline: Duration) -> Joined<T> {
    let started = Instant::now();
    while !handle.is_finished() {
        if started.elapsed() >= deadline {
            return Joined::TimedOut(handle);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    match handle.join() {
        Ok(value) => Joined::Finished(value),
        Err(_) => Joined::Panicked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_queue_sheds_at_depth_and_closes_on_disconnect() {
        let (queue, receiver) = WorkQueue::bounded(2);
        queue.try_admit(1).unwrap();
        queue.try_admit(2).unwrap();
        match queue.try_admit(3) {
            Err(Rejected::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(receiver.recv().unwrap(), 1);
        queue.try_admit(4).unwrap();
        drop(receiver);
        match queue.try_admit(5) {
            Err(Rejected::Closed(5)) => {}
            other => panic!("expected Closed(5), got {other:?}"),
        }
    }

    #[test]
    fn zero_depth_is_promoted_to_one() {
        let (queue, receiver) = WorkQueue::bounded(0);
        queue.try_admit(1).unwrap();
        assert!(matches!(queue.try_admit(2), Err(Rejected::Full(2))));
        assert_eq!(receiver.recv().unwrap(), 1);
    }

    #[test]
    fn joins_report_finish_panic_and_timeout() {
        let finished = std::thread::spawn(|| 7);
        assert!(matches!(
            join_with_deadline(finished, Duration::from_secs(5)),
            Joined::Finished(7)
        ));

        let panicked = std::thread::spawn(|| -> u32 { panic!("boom") });
        assert!(matches!(
            join_with_deadline(panicked, Duration::from_secs(5)),
            Joined::Panicked
        ));

        let (release, gate) = std::sync::mpsc::channel::<()>();
        let stuck = std::thread::spawn(move || {
            let _ = gate.recv();
            0
        });
        let outcome = join_with_deadline(stuck, Duration::from_millis(20));
        let Joined::TimedOut(handle) = outcome else {
            panic!("expected TimedOut");
        };
        release.send(()).unwrap();
        assert!(matches!(
            join_with_deadline(handle, Duration::from_secs(5)),
            Joined::Finished(0)
        ));
    }
}

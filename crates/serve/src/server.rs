//! The evaluation daemon: a bounded thread-pool HTTP server wrapping
//! the supervised evaluation pipeline.
//!
//! The dependability story, layer by layer:
//!
//! * **admission control** — accepted connections pass through a
//!   depth-bounded [`WorkQueue`]; at depth the daemon answers
//!   `429 Retry-After: 1` immediately instead of queueing unboundedly;
//! * **deadlines** — every evaluation runs under a single-task
//!   [`Supervisor`] with [`SupervisorConfig::deadline`] armed, so a
//!   stalled model computation is quarantined and answered `504` while
//!   the worker thread moves on;
//! * **degraded mode** — a request that asks for checkpointing and hits
//!   a persistent journal fault still returns its results (`200`), but
//!   latches the [`Metrics`] breaker: `/healthz` reports `503 degraded`
//!   from then on, steering load balancers away without killing the
//!   process;
//! * **graceful drain** — shutdown stops the accept loop, closes the
//!   queue, lets workers finish everything already admitted, and joins
//!   them under a deadline so one stuck request cannot wedge exit.

use crate::fault::{ServeFaultKind, ServeFaultPlan};
use crate::http::{self, Request};
use crate::metrics::Metrics;
use crate::pool::{join_with_deadline, Joined, Rejected, WorkQueue};
use serde::{Deserialize, Serialize};
use ssdep_core::composite::{evaluate_composite, CompositeOutcome, CompositeScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::workload::Workload;
use ssdep_core::{Error, RetryPolicy};
use ssdep_opt::{EvalEngine, FailureKind, FaultKind, IoFaultPlan, Supervisor, SupervisorConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long the daemon's sockets may idle mid-request before the read
/// or write is abandoned.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);
/// How often the accept loop polls for shutdown between connections.
// The idle-accept sleep is the daemon's floor on connection latency: a
// closed-loop client waits half of it on average just to be accepted.
// 1ms keeps the idle wakeup cost negligible (~1k cheap EWOULDBLOCK
// accepts/sec) without putting a 10ms tax on every request.
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// Upper bound on `/sweep` scale points per request.
const MAX_SWEEP_POINTS: usize = 256;

/// Daemon configuration (`ssdep serve` flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads evaluating requests.
    pub jobs: usize,
    /// Admission-queue depth beyond in-flight work; arrivals past it
    /// are shed with `429`.
    pub queue_depth: usize,
    /// Per-request evaluation deadline.
    pub deadline: Duration,
    /// Deterministic fault injection (`SSDEP_SERVE_FAULT`).
    pub fault: Option<ServeFaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 4,
            queue_depth: 32,
            deadline: Duration::from_secs(10),
            fault: None,
        }
    }
}

/// What the daemon did between start and drain.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DrainSummary {
    /// Requests answered.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Threads abandoned because they outlived the drain deadline.
    pub stuck_threads: usize,
}

/// State shared by the accept loop and every worker.
struct Inner {
    metrics: Metrics,
    engine: EvalEngine,
    deadline: Duration,
    fault: Option<ServeFaultPlan>,
    shutdown: Arc<AtomicBool>,
}

/// A running daemon; drop-in handle for the CLI and tests.
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds the listener and starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Returns bind/configuration failures; once this returns `Ok`, the
    /// daemon no longer fails as a whole — individual requests do.
    pub fn start(config: ServeConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| {
            Error::invalid("serve.addr", format!("cannot bind {}: {e}", config.addr))
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::invalid("serve.addr", format!("no local address: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::invalid("serve.addr", format!("cannot poll listener: {e}")))?;

        let inner = Arc::new(Inner {
            metrics: Metrics::new(),
            engine: EvalEngine::default(),
            deadline: config.deadline,
            fault: config.fault,
            shutdown: Arc::new(AtomicBool::new(false)),
        });

        let (queue, receiver) = WorkQueue::bounded(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.jobs.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || worker_loop(&inner, &receiver))
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || accept_loop(&inner, &listener, &queue))
        };

        Ok(Server {
            addr,
            inner,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag, for bridging external signals.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.shutdown)
    }

    /// Stops accepting new connections; already-admitted work drains.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until `should_stop` reports true (polled a few times per
    /// socket timeout), then drains and returns the summary.
    pub fn run_until(self, should_stop: impl Fn() -> bool) -> DrainSummary {
        while !should_stop() && !self.inner.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(25));
        }
        self.drain()
    }

    /// Begins shutdown (idempotent) and drains: the accept loop exits,
    /// the queue closes, workers finish everything already admitted,
    /// and each thread is joined under a deadline so one stuck request
    /// cannot wedge the process.
    pub fn drain(mut self) -> DrainSummary {
        self.begin_shutdown();
        // Budget: every queued job may legitimately take a full
        // deadline (plus socket time); beyond that a thread is stuck.
        let grace = self
            .inner
            .deadline
            .saturating_add(SOCKET_TIMEOUT)
            .saturating_mul(2)
            .saturating_add(Duration::from_secs(5));
        let mut stuck = 0usize;
        if let Some(accept) = self.accept.take() {
            if matches!(join_with_deadline(accept, grace), Joined::TimedOut(_)) {
                stuck += 1;
            }
        }
        for worker in self.workers.drain(..) {
            if matches!(join_with_deadline(worker, grace), Joined::TimedOut(_)) {
                stuck += 1;
            }
        }
        DrainSummary {
            served: self.inner.metrics.served(),
            shed: self.inner.metrics.shed(),
            stuck_threads: stuck,
        }
    }
}

/// Accepts connections until shutdown, assigning each a 1-based
/// admission ordinal and shedding at queue depth. Exiting drops the
/// queue's sender, which is what lets workers drain and stop.
fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener, queue: &WorkQueue<(usize, TcpStream)>) {
    let mut admitted = 0usize;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                admitted += 1;
                let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                let forced_full = matches!(
                    inner.fault,
                    Some(plan) if plan.kind == ServeFaultKind::QueueFull && plan.fires(admitted)
                );
                if forced_full {
                    shed(inner, stream);
                    continue;
                }
                match queue.try_admit((admitted, stream)) {
                    Ok(()) => inner.metrics.enqueued(),
                    Err(Rejected::Full((_, stream))) => shed(inner, stream),
                    Err(Rejected::Closed(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // Transient accept errors (EMFILE, aborted handshakes) must
            // not kill the daemon; back off and keep listening.
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers `429 Retry-After: 1` on a connection that admission control
/// turned away.
///
/// The pending request is briefly drained first: closing a socket with
/// unread receive data sends RST, which would destroy the in-flight
/// `429` — the one response an overloaded client must still see.
fn shed(inner: &Arc<Inner>, mut stream: TcpStream) {
    inner.metrics.record_shed();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match io::Read::read(&mut stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
    let _ = http::write_json(
        &mut stream,
        429,
        &[("Retry-After", "1")],
        "{\"error\":\"overloaded: admission queue is full\",\"retryAfterSecs\":1}",
    );
}

/// Claims jobs until the queue closes (= drain). Each job is handled
/// under `catch_unwind` so a handler bug degrades one response to a
/// `500`, never the pool.
fn worker_loop(inner: &Arc<Inner>, receiver: &Arc<Mutex<Receiver<(usize, TcpStream)>>>) {
    loop {
        let job = {
            let guard = match receiver.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // ssdep-lint: allow(L021, the shared-Receiver handoff protocol — exactly one idle worker holds the lock while parked in recv, and the senders never take it)
            guard.recv()
        };
        let Ok((request_no, mut stream)) = job else {
            return;
        };
        inner.metrics.dequeued();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(inner, request_no, &mut stream)
        }));
        if outcome.is_err() {
            inner.metrics.record_error();
            let _ = http::write_json(
                &mut stream,
                500,
                &[],
                "{\"error\":\"internal error: handler panicked\"}",
            );
        }
    }
}

/// Reads, routes, and answers one connection.
fn handle_connection(inner: &Arc<Inner>, request_no: usize, stream: &mut TcpStream) {
    let started = Instant::now();
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(error) => {
            inner.metrics.record_error();
            if let Some(status) = error.status() {
                let body = error_body(&error.message());
                let _ = http::write_json(stream, status, &[], &body);
            }
            return;
        }
    };
    match (request.method.as_str(), path_of(&request.target)) {
        ("GET", "/healthz") => {
            let (status, body) = healthz(inner);
            let _ = http::write_json(stream, status, &[], &body);
        }
        ("GET", "/metrics") => {
            let body = to_json(&inner.metrics.snapshot(&inner.engine));
            let _ = http::write_json(stream, 200, &[], &body);
        }
        ("POST", "/evaluate") => {
            let (status, body) = handle_evaluate(inner, request_no, &request);
            if matches!(status, 422 | 400) {
                inner.metrics.record_error();
            }
            let _ = http::write_json(stream, status, &[], &body);
        }
        ("POST", "/sweep") => handle_sweep(inner, request_no, &request, stream),
        ("GET" | "POST", _) => {
            let _ = http::write_json(stream, 404, &[], "{\"error\":\"no such endpoint\"}");
        }
        _ => {
            let _ = http::write_json(stream, 405, &[], "{\"error\":\"method not allowed\"}");
        }
    }
    inner.metrics.record_served(started.elapsed());
}

/// Strips a query string; routing is path-only.
fn path_of(target: &str) -> &str {
    target.split('?').next().unwrap_or(target)
}

fn healthz(inner: &Arc<Inner>) -> (u16, String) {
    if inner.metrics.is_degraded() {
        let snapshot = inner.metrics.snapshot(&inner.engine);
        let reason = snapshot
            .degraded_reason
            .unwrap_or_else(|| "unknown".to_string());
        return (
            503,
            format!(
                "{{\"status\":\"degraded\",\"reason\":{}}}",
                json_string(&reason)
            ),
        );
    }
    if inner.shutdown.load(Ordering::SeqCst) {
        return (503, "{\"status\":\"draining\"}".to_string());
    }
    (200, "{\"status\":\"ok\"}".to_string())
}

/// The body every evaluation endpoint accepts: a system spec's
/// analytic fields. Unknown fields (e.g. a spec file's `faults` plan,
/// which is `ssdep inject` input, not service input) are ignored.
#[derive(Debug, Deserialize)]
struct EvaluateRequest {
    workload: Workload,
    design: StorageDesign,
    requirements: BusinessRequirements,
    #[serde(default)]
    scenarios: Vec<CompositeScenario>,
}

/// `POST /sweep`: the evaluate body plus the workload scale factors to
/// stream through.
#[derive(Debug, Deserialize)]
struct SweepRequest {
    workload: Workload,
    design: StorageDesign,
    requirements: BusinessRequirements,
    #[serde(default)]
    scenarios: Vec<CompositeScenario>,
    #[serde(default)]
    scales: Vec<f64>,
}

/// One `/sweep` stream line: a scale point's outcomes or its failure.
#[derive(Debug, Serialize)]
struct SweepLine {
    scale: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    outcomes: Option<Vec<CompositeOutcome>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    error: Option<String>,
}

/// The `/sweep` stream trailer: emitted after the last point, so its
/// presence is the client's proof the stream was not truncated.
#[derive(Debug, Serialize)]
struct SweepTrailer {
    done: bool,
    points: usize,
    failed: usize,
}

/// How one supervised evaluation concluded, folded to a response.
enum EvalVerdict {
    Ok(Vec<CompositeOutcome>),
    DeadlineExceeded,
    Panicked(String),
    Failed(String),
}

fn handle_evaluate(inner: &Arc<Inner>, request_no: usize, request: &Request) -> (u16, String) {
    let parsed: EvaluateRequest = match parse_body(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => return (400, error_body(&format!("bad evaluate body: {e}"))),
    };
    let scenarios = catalog_or_default(parsed.scenarios);
    match run_supervised(
        inner,
        request_no,
        &parsed.workload,
        &parsed.design,
        &parsed.requirements,
        &scenarios,
    ) {
        Ok(EvalVerdict::Ok(outcomes)) => match serde_json::to_string(&outcomes) {
            Ok(body) => (200, body),
            Err(e) => (500, error_body(&format!("cannot serialize outcomes: {e}"))),
        },
        Ok(EvalVerdict::DeadlineExceeded) => {
            inner.metrics.record_deadline_exceeded();
            (
                504,
                format!(
                    "{{\"error\":\"deadline exceeded\",\"deadlineSecs\":{}}}",
                    inner.deadline.as_secs()
                ),
            )
        }
        Ok(EvalVerdict::Panicked(why)) => (500, error_body(&why)),
        Ok(EvalVerdict::Failed(why)) => (422, error_body(&why)),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

fn handle_sweep(inner: &Arc<Inner>, request_no: usize, request: &Request, stream: &mut TcpStream) {
    let parsed: SweepRequest = match parse_body(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => {
            let _ = http::write_json(
                stream,
                400,
                &[],
                &error_body(&format!("bad sweep body: {e}")),
            );
            return;
        }
    };
    let scales = if parsed.scales.is_empty() {
        vec![0.25, 0.5, 1.0, 2.0, 4.0]
    } else {
        parsed.scales
    };
    if scales.len() > MAX_SWEEP_POINTS {
        let _ = http::write_json(
            stream,
            422,
            &[],
            &error_body(&format!(
                "{} scale points exceed the cap of {MAX_SWEEP_POINTS}",
                scales.len()
            )),
        );
        return;
    }
    let scenarios = catalog_or_default(parsed.scenarios);
    if http::write_stream_head(stream).is_err() {
        return;
    }
    // Once streaming starts the request runs to completion even during
    // drain: stopping between lines would hand the client a truncated
    // (though never torn) stream for no benefit — the trailer is the
    // client's completeness proof either way.
    let mut failed = 0usize;
    for (index, &scale) in scales.iter().enumerate() {
        // Injected faults target the request, which for a sweep means
        // its first point — deterministic for the chaos harness.
        let point_no = if index == 0 { request_no } else { 0 };
        let line = sweep_point(
            inner,
            point_no,
            scale,
            &parsed.workload,
            &parsed.design,
            &parsed.requirements,
            &scenarios,
        );
        if line.error.is_some() {
            failed += 1;
        }
        if http::write_stream_line(stream, &to_json(&line)).is_err() {
            return; // Client hung up; the work already done is cached.
        }
    }
    let trailer = SweepTrailer {
        done: true,
        points: scales.len(),
        failed,
    };
    let _ = http::write_stream_line(stream, &to_json(&trailer));
}

fn sweep_point(
    inner: &Arc<Inner>,
    point_no: usize,
    scale: f64,
    workload: &Workload,
    design: &StorageDesign,
    requirements: &BusinessRequirements,
    scenarios: &[CompositeScenario],
) -> SweepLine {
    let fail = |why: String| SweepLine {
        scale,
        outcomes: None,
        error: Some(why),
    };
    let scaled = match workload.scaled(scale) {
        Ok(scaled) => scaled,
        Err(e) => return fail(e.to_string()),
    };
    match run_supervised(inner, point_no, &scaled, design, requirements, scenarios) {
        Ok(EvalVerdict::Ok(outcomes)) => SweepLine {
            scale,
            outcomes: Some(outcomes),
            error: None,
        },
        Ok(EvalVerdict::DeadlineExceeded) => {
            inner.metrics.record_deadline_exceeded();
            fail("deadline exceeded".to_string())
        }
        Ok(EvalVerdict::Panicked(why)) | Ok(EvalVerdict::Failed(why)) => fail(why),
        Err(e) => fail(e.to_string()),
    }
}

/// An explicit catalog, or the paper's default scenario (full array
/// failure, recover to now).
fn catalog_or_default(scenarios: Vec<CompositeScenario>) -> Vec<CompositeScenario> {
    if scenarios.is_empty() {
        vec![CompositeScenario::Single {
            scenario: FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        }]
    } else {
        scenarios
    }
}

/// Runs one request's scenario catalog under a single-task-pool
/// supervisor: the shared engine prepares (and memoizes) the design,
/// the configured deadline bounds every scenario, and injected faults
/// (slow, journal-eio) strike here when armed for `request_no`.
fn run_supervised(
    inner: &Arc<Inner>,
    request_no: usize,
    workload: &Workload,
    design: &StorageDesign,
    requirements: &BusinessRequirements,
    scenarios: &[CompositeScenario],
) -> Result<EvalVerdict, Error> {
    let prepared = match inner.engine.prepare(design, workload) {
        Ok(prepared) => prepared,
        Err(e) => return Ok(EvalVerdict::Failed(e.to_string())),
    };

    let mut config = SupervisorConfig {
        deadline: Some(inner.deadline),
        ..SupervisorConfig::default()
    };
    let mut slow = false;
    let mut fault_journal: Option<PathBuf> = None;
    if let Some(plan) = inner.fault {
        if plan.fires(request_no) {
            match plan.kind {
                ServeFaultKind::Slow => slow = true,
                ServeFaultKind::QueueFull => {} // handled at admission
                ServeFaultKind::JournalEio => {
                    let path = std::env::temp_dir().join(format!(
                        "ssdep-serve-fault-{}-{request_no}.journal",
                        std::process::id()
                    ));
                    config.checkpoint = Some(path.clone());
                    // Persistent append failure: retries cannot clear
                    // it, so the run must shed the journal and degrade
                    // rather than stall or die.
                    config.journal_faults = Some(IoFaultPlan::new(FaultKind::AppendEnospc, 1));
                    config.retry = RetryPolicy::immediate(1);
                    fault_journal = Some(path);
                }
            }
        }
    }

    let deadline = inner.deadline;
    let requirements = *requirements;
    // The whole catalog runs as ONE supervised task: the deadline is a
    // per-request budget (not per-scenario), and the supervisor spawns
    // a single watchdog thread per request instead of one per scenario
    // — the difference between ~4k and ~20k scenario evals/sec on one
    // core.
    let catalog: Vec<CompositeScenario> = scenarios.to_vec();
    let run = Supervisor::new(config).run(
        std::slice::from_ref(&catalog),
        move |batch: &Vec<CompositeScenario>| {
            if slow {
                // Stall past the budget; the supervisor quarantines the
                // task and the response is a deterministic 504.
                thread::sleep(deadline.saturating_add(Duration::from_millis(50)));
            }
            let mut outcomes = Vec::with_capacity(batch.len());
            for scenario in batch {
                outcomes.push(evaluate_composite(&prepared, &requirements, scenario)?);
            }
            Ok(outcomes)
        },
    );
    if let Some(path) = fault_journal {
        let _ = std::fs::remove_file(path);
    }
    let run = run?;

    if run.provenance.journal_degraded {
        let reason = run
            .journal_error
            .unwrap_or_else(|| "checkpoint journal failed".to_string());
        inner
            .metrics
            .trip_degraded(&format!("checkpoint journal degraded: {reason}"));
    }

    if run
        .failed
        .iter()
        .any(|f| f.kind == FailureKind::DeadlineExceeded)
    {
        return Ok(EvalVerdict::DeadlineExceeded);
    }
    if let Some(panicked) = run.failed.iter().find(|f| f.kind == FailureKind::Panicked) {
        return Ok(EvalVerdict::Panicked(panicked.error.clone()));
    }
    if let Some(failed) = run.failed.first() {
        return Ok(EvalVerdict::Failed(failed.error.clone()));
    }
    Ok(EvalVerdict::Ok(
        run.completed
            .into_iter()
            .next()
            .map(|(_, outcomes)| outcomes)
            .unwrap_or_default(),
    ))
}

fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e}\"}}"))
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}", json_string(message))
}

/// Parses a request body as UTF-8 JSON.
fn parse_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Renders `text` as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            control if (control as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", control as u32));
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn baseline_body() -> String {
        #[derive(Serialize)]
        struct Body {
            workload: Workload,
            design: StorageDesign,
            requirements: BusinessRequirements,
        }
        serde_json::to_string(&Body {
            workload: ssdep_core::presets::cello_workload(),
            design: ssdep_core::presets::baseline_design(),
            requirements: ssdep_core::presets::paper_requirements(),
        })
        .unwrap()
    }

    fn http_call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn start(config: ServeConfig) -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..config
        })
        .unwrap()
    }

    #[test]
    fn healthz_metrics_and_404() {
        let server = start(ServeConfig::default());
        let addr = server.addr();
        let (status, body) = http_call(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");
        let (status, body) = http_call(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"cache_hits\""), "{body}");
        let (status, _) = http_call(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = http_call(addr, "PUT", "/healthz", "");
        assert_eq!(status, 405);
        server.drain();
    }

    #[test]
    fn evaluate_is_byte_stable_and_validates() {
        let server = start(ServeConfig::default());
        let addr = server.addr();
        let body = baseline_body();
        let (status, first) = http_call(addr, "POST", "/evaluate", &body);
        assert_eq!(status, 200, "{first}");
        let parsed: Vec<serde_json::Value> = serde_json::from_str(&first).unwrap();
        assert_eq!(parsed.len(), 1);
        let (status, second) = http_call(addr, "POST", "/evaluate", &body);
        assert_eq!(status, 200);
        assert_eq!(first, second, "responses must be byte-stable");
        let (status, _) = http_call(addr, "POST", "/evaluate", "{not json");
        assert_eq!(status, 400);
        let summary = server.drain();
        assert_eq!(summary.served, 3);
        assert_eq!(summary.stuck_threads, 0);
    }

    #[test]
    fn sweep_streams_lines_and_a_trailer() {
        let server = start(ServeConfig::default());
        let addr = server.addr();
        let body = baseline_body();
        let body = format!("{}{}", &body[..body.len() - 1], ",\"scales\":[0.5,1.0]}");
        let (status, stream) = http_call(addr, "POST", "/sweep", &body);
        assert_eq!(status, 200, "{stream}");
        let lines: Vec<&str> = stream.lines().collect();
        assert_eq!(lines.len(), 3, "{stream}");
        for line in &lines {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
        assert!(lines[2].contains("\"done\":true"), "{}", lines[2]);
        server.drain();
    }

    #[test]
    fn slow_fault_answers_504_within_budget() {
        let server = start(ServeConfig {
            deadline: Duration::from_millis(200),
            fault: Some(ServeFaultPlan::new(ServeFaultKind::Slow, 1)),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let (status, body) = http_call(addr, "POST", "/evaluate", &baseline_body());
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("deadline exceeded"), "{body}");
        // The next request is past the fault ordinal and succeeds.
        let (status, _) = http_call(addr, "POST", "/evaluate", &baseline_body());
        assert_eq!(status, 200);
        server.drain();
    }

    #[test]
    fn journal_fault_degrades_health_but_still_answers() {
        // Ordinal 2: the fault must strike the evaluate call, not the
        // health probe before it (every accepted connection counts).
        let server = start(ServeConfig {
            fault: Some(ServeFaultPlan::new(ServeFaultKind::JournalEio, 2)),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let (status, _) = http_call(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let (status, body) = http_call(addr, "POST", "/evaluate", &baseline_body());
        assert_eq!(status, 200, "{body}");
        let (status, body) = http_call(addr, "GET", "/healthz", "");
        assert_eq!(status, 503);
        assert!(body.contains("degraded"), "{body}");
        server.drain();
    }

    #[test]
    fn queue_full_fault_sheds_with_retry_after() {
        let server = start(ServeConfig {
            fault: Some(ServeFaultPlan::new(ServeFaultKind::QueueFull, 1)),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 429"), "{raw}");
        assert!(raw.contains("Retry-After: 1"), "{raw}");
        let summary = server.drain();
        assert_eq!(summary.shed, 1);
        server_summary_is_consistent(summary);
    }

    fn server_summary_is_consistent(summary: DrainSummary) {
        assert_eq!(summary.stuck_threads, 0);
    }

    #[test]
    fn drain_completes_in_flight_work() {
        let server = start(ServeConfig {
            jobs: 2,
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let body = baseline_body();
        let worker = thread::spawn(move || http_call(addr, "POST", "/evaluate", &body));
        // Give the request time to be admitted, then begin shutdown.
        thread::sleep(Duration::from_millis(30));
        server.begin_shutdown();
        let summary = server.drain();
        let (status, _) = worker.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(summary.stuck_threads, 0);
        assert!(summary.served >= 1, "{summary:?}");
    }
}

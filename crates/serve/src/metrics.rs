//! Operational counters for the daemon: request outcomes, queue depth,
//! a latched degraded-mode breaker, and a lock-free latency histogram.
//!
//! The histogram is power-of-two bucketed (microseconds): recording is
//! one atomic increment, and percentiles are read by walking the bucket
//! counts — coarse (each estimate is the upper bound of its bucket) but
//! allocation-free and safe to hammer from every worker thread.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds sub-microsecond
/// samples), so 40 buckets span past 9 minutes.
const BUCKETS: usize = 40;

/// Shared operational counters; one instance per server.
#[derive(Debug, Default)]
pub struct Metrics {
    served: AtomicUsize,
    shed: AtomicUsize,
    deadline_exceeded: AtomicUsize,
    errors: AtomicUsize,
    queue_depth: AtomicUsize,
    degraded: AtomicBool,
    degraded_reason: Mutex<Option<String>>,
    latency_buckets: Vec<AtomicUsize>,
}

/// A point-in-time copy of the counters, serialized by `GET /metrics`.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Requests answered (any status except shed).
    pub served: usize,
    /// Requests shed by admission control (`429`).
    pub shed: usize,
    /// Requests quarantined by the per-request deadline (`504`).
    pub deadline_exceeded: usize,
    /// Requests that failed before evaluation (parse errors, panics).
    pub errors: usize,
    /// Jobs currently queued awaiting a worker.
    pub queue_depth: usize,
    /// Whether the degraded-mode breaker has latched.
    pub degraded: bool,
    /// Why it latched, when it has.
    pub degraded_reason: Option<String>,
    /// Median request latency, microseconds (bucket upper bound).
    pub p50_micros: u64,
    /// 99th-percentile request latency, microseconds (bucket upper bound).
    pub p99_micros: u64,
    /// Evaluation-engine memo cache hits since start.
    pub cache_hits: usize,
    /// Evaluation-engine memo cache misses since start.
    pub cache_misses: usize,
    /// Estimated resident bytes in the memo cache.
    pub cache_bytes: usize,
    /// Prepares deduplicated by single-flight: requests that waited on a
    /// concurrent in-flight prepare instead of repeating it.
    pub dedup_waits: usize,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics {
            latency_buckets: (0..BUCKETS).map(|_| AtomicUsize::new(0)).collect(),
            ..Metrics::default()
        }
    }

    /// Counts one answered request and records its latency.
    pub fn record_served(&self, latency: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(cell) = self.latency_buckets.get(bucket) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one request shed by admission control.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request quarantined by its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that failed before producing results.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One job entered the admission queue.
    pub fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// One job left the admission queue for a worker.
    pub fn dequeued(&self) {
        // Saturating: a racing snapshot must never see a wrapped gauge.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                Some(depth.saturating_sub(1))
            });
    }

    /// Latches the degraded-mode breaker (first reason wins; the
    /// breaker never resets for the life of the process — a disk that
    /// failed once is not trusted again without an operator restart).
    pub fn trip_degraded(&self, reason: &str) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            let mut slot = match self.degraded_reason.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *slot = Some(reason.to_string());
        }
    }

    /// Whether the degraded breaker has latched.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Requests answered so far.
    pub fn served(&self) -> usize {
        self.served.load(Ordering::Relaxed)
    }

    /// Requests shed so far.
    pub fn shed(&self) -> usize {
        self.shed.load(Ordering::Relaxed)
    }

    /// The latency (bucket upper bound, microseconds) at or below which
    /// `quantile` of recorded requests fall; zero with no samples.
    pub fn latency_quantile_micros(&self, quantile: f64) -> u64 {
        let counts: Vec<usize> = self
            .latency_buckets
            .iter()
            .map(|cell| cell.load(Ordering::Relaxed))
            .collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let quantile = quantile.clamp(0.0, 1.0);
        // ssdep-lint: allow(L005, rank is an integer ceil in [1, total] by construction)
        let rank = ((total as f64) * quantile).ceil().max(1.0) as usize;
        let mut seen = 0usize;
        for (bucket, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return upper_bound_micros(bucket);
            }
        }
        upper_bound_micros(BUCKETS - 1)
    }

    /// A point-in-time snapshot, folding in the evaluation engine's
    /// cache counters.
    pub fn snapshot(&self, engine: &ssdep_opt::EvalEngine) -> MetricsSnapshot {
        let degraded_reason = match self.degraded_reason.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        MetricsSnapshot {
            served: self.served(),
            shed: self.shed(),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            degraded: self.is_degraded(),
            degraded_reason,
            p50_micros: self.latency_quantile_micros(0.50),
            p99_micros: self.latency_quantile_micros(0.99),
            cache_hits: engine.cache_hits(),
            cache_misses: engine.cache_misses(),
            cache_bytes: engine.cached_bytes(),
            dedup_waits: engine.cache_dedup_waits(),
        }
    }
}

/// Upper bound, in microseconds, of power-of-two bucket `bucket`.
fn upper_bound_micros(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        1u64 << bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_walk_the_buckets() {
        let metrics = Metrics::new();
        assert_eq!(metrics.latency_quantile_micros(0.99), 0);
        for _ in 0..99 {
            metrics.record_served(Duration::from_micros(100));
        }
        metrics.record_served(Duration::from_micros(40_000));
        // 100µs lands in (64,128]; 40ms in (32768,65536].
        assert_eq!(metrics.latency_quantile_micros(0.50), 128);
        assert_eq!(metrics.latency_quantile_micros(0.98), 128);
        assert_eq!(metrics.latency_quantile_micros(1.0), 65_536);
        assert_eq!(metrics.served(), 100);
    }

    #[test]
    fn the_degraded_breaker_latches_the_first_reason() {
        let metrics = Metrics::new();
        assert!(!metrics.is_degraded());
        metrics.trip_degraded("disk on fire");
        metrics.trip_degraded("second opinion");
        assert!(metrics.is_degraded());
        let snapshot = metrics.snapshot(&ssdep_opt::EvalEngine::default());
        assert_eq!(snapshot.degraded_reason.as_deref(), Some("disk on fire"));
    }

    #[test]
    fn the_queue_gauge_never_wraps() {
        let metrics = Metrics::new();
        metrics.enqueued();
        metrics.dequeued();
        metrics.dequeued(); // spurious extra decrement
        let snapshot = metrics.snapshot(&ssdep_opt::EvalEngine::default());
        assert_eq!(snapshot.queue_depth, 0);
    }
}

//! SIGTERM/SIGINT → a process-wide shutdown flag.
//!
//! The handler is the minimum async-signal-safe program: one relaxed
//! atomic store. Everything else (draining the queue, joining workers,
//! the exit code) happens on ordinary threads that poll
//! [`shutdown_requested`].
//!
//! `std` exposes no signal API and the workspace takes no external
//! crates, so registration goes through a two-line `signal(2)` FFI on
//! Unix; elsewhere [`install`] is a no-op returning `false` and the
//! daemon only stops via [`request_shutdown`] (e.g. tests) or process
//! kill.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived (or was requested in-process).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown from ordinary code — the same flag the signal
/// handler sets, so tests and embedders can drive the drain path
/// without delivering a real signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag. Test hook: the flag is process-global, and tests
/// sharing a process must be able to rearm it.
#[doc(hidden)]
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Installs the SIGTERM and SIGINT handlers. Returns whether both
/// registrations took effect (`false` on non-Unix platforms, where the
/// daemon runs without signal-driven drain).
pub fn install() -> bool {
    platform::install()
}

#[cfg(unix)]
mod platform {
    use std::sync::atomic::Ordering;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    // The libc crate is off-limits (no external dependencies), so this
    // declares the two constants and one function it needs directly.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_ERR` is `(sighandler_t)-1`.
    const SIG_ERR: usize = usize::MAX;

    #[allow(unsafe_code)]
    pub fn install() -> bool {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal(2)` with a handler that only performs an
        // atomic store is async-signal-safe; the handler pointer has
        // static lifetime.
        unsafe { signal(SIGINT, on_signal) != SIG_ERR && signal(SIGTERM, on_signal) != SIG_ERR }
    }
}

#[cfg(not(unix))]
mod platform {
    pub fn install() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_flag_arms_and_resets() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handlers_install_on_unix() {
        assert!(install());
    }
}

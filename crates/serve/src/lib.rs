//! `ssdep-serve`: a fault-tolerant HTTP evaluation daemon over ssdep's
//! dependability models.
//!
//! The paper frames the analytic engine as the inner loop of an
//! automated optimization system; this crate is that loop's service
//! skin, built with the same dependability discipline the engine
//! applies to storage designs:
//!
//! * [`server`] — the daemon: bounded admission, per-request deadlines,
//!   a degraded-mode breaker, graceful drain;
//! * [`http`] — a minimal std-only HTTP/1.1 layer with hard input caps
//!   and never-torn JSON responses;
//! * [`pool`] — the bounded queue and deadline-bounded joins (the only
//!   module allowed to construct queues or join threads, enforced by
//!   `ssdep-lint` L012);
//! * [`metrics`] — lock-free counters, latency percentiles, and the
//!   latched degraded breaker behind `GET /metrics` and `GET /healthz`;
//! * [`fault`] — deterministic fault injection (`SSDEP_SERVE_FAULT`),
//!   the service-layer mirror of the journal's `SSDEP_JOURNAL_FAULT`;
//! * [`signal`] — SIGTERM/SIGINT to a shutdown flag, with no
//!   dependencies beyond a two-line `signal(2)` FFI.
//!
//! Everything is std-only: no async runtime, no HTTP framework — a
//! thread pool over a bounded queue is sufficient for the workload and
//! keeps every failure mode inspectable.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod signal;

pub use fault::{ServeFaultKind, ServeFaultPlan};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{DrainSummary, ServeConfig, Server};

//! Deterministic service-fault injection, mirroring the checkpoint
//! journal's `SSDEP_JOURNAL_FAULT` hook one layer up.
//!
//! A [`ServeFaultPlan`] arms exactly one fault at one admission ordinal,
//! so a chaos harness can script "the third request hits a full queue"
//! or "the first request's checkpoint disk dies" and assert the exact
//! observable response — no timing races, no flaky sleeps.

use ssdep_core::error::Error;

/// The environment variable the daemon reads its fault plan from.
pub const ENV: &str = "SSDEP_SERVE_FAULT";

/// Which service fault a [`ServeFaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// The nth request's evaluation stalls past its deadline budget.
    /// The supervisor quarantines it and the daemon answers `504`.
    Slow,
    /// The nth request is admitted as if the work queue were full: shed
    /// with `429 Retry-After`, regardless of actual depth.
    QueueFull,
    /// The nth request runs with a checkpoint journal whose disk fails
    /// on the first append (persistently, so retries cannot clear it).
    /// The run degrades to in-memory, results still return `200`, and
    /// the daemon's health flips to degraded.
    JournalEio,
}

/// A deterministic service-fault schedule.
///
/// `at` is the 1-based admission ordinal of the request the fault
/// strikes (each accepted connection counts, including ones later
/// shed); `seed` is reserved for fault shaping and keeps the format
/// aligned with [`IoFaultPlan`](ssdep_opt::sink::IoFaultPlan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// Which fault to inject.
    pub kind: ServeFaultKind,
    /// 1-based admission ordinal the fault strikes.
    pub at: usize,
    /// Seed for fault-shape randomness.
    pub seed: u64,
}

impl ServeFaultPlan {
    /// A plan injecting `kind` at request `at`, seeded by `at`.
    pub fn new(kind: ServeFaultKind, at: usize) -> ServeFaultPlan {
        ServeFaultPlan {
            kind,
            at,
            seed: at as u64,
        }
    }

    /// Parses the `SSDEP_SERVE_FAULT` environment format:
    /// `slow@N`, `queue-full@N`, or `journal-eio@N`, with an optional
    /// trailing `@SEED`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown kinds or
    /// unparsable ordinals.
    pub fn parse(text: &str) -> Result<ServeFaultPlan, Error> {
        let bad = |why: &str| {
            Error::invalid(
                "serve.fault_plan",
                format!(
                    "`{text}`: {why} (expected kind@N[@seed] with kind one of slow, queue-full, journal-eio)"
                ),
            )
        };
        let mut parts = text.split('@');
        let kind = match parts.next().unwrap_or("") {
            "slow" => ServeFaultKind::Slow,
            "queue-full" => ServeFaultKind::QueueFull,
            "journal-eio" => ServeFaultKind::JournalEio,
            _ => return Err(bad("unknown fault kind")),
        };
        let at: usize = parts
            .next()
            .ok_or_else(|| bad("missing request ordinal"))?
            .parse()
            .map_err(|_| bad("unparsable request ordinal"))?;
        if at == 0 {
            return Err(bad("ordinals are 1-based; `@0` never fires"));
        }
        let seed = match parts.next() {
            None => at as u64,
            Some(text) => text.parse().map_err(|_| bad("unparsable seed"))?,
        };
        if parts.next().is_some() {
            return Err(bad("too many `@` fields"));
        }
        Ok(ServeFaultPlan { kind, at, seed })
    }

    /// Reads and parses [`ENV`], `None` when unset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the variable is set but
    /// unparsable — a daemon must refuse to start with a half-armed
    /// fault plan rather than silently ignore it.
    pub fn from_env() -> Result<Option<ServeFaultPlan>, Error> {
        match std::env::var(ENV) {
            Ok(text) => Ok(Some(ServeFaultPlan::parse(&text)?)),
            Err(_) => Ok(None),
        }
    }

    /// Whether the fault strikes the request with this 1-based
    /// admission ordinal. Single-shot: exactly one request is hit.
    pub fn fires(&self, request_no: usize) -> bool {
        request_no == self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_optional_seed() {
        let plan = ServeFaultPlan::parse("slow@3").unwrap();
        assert_eq!(plan, ServeFaultPlan::new(ServeFaultKind::Slow, 3));
        let plan = ServeFaultPlan::parse("queue-full@1@99").unwrap();
        assert_eq!(plan.kind, ServeFaultKind::QueueFull);
        assert_eq!(plan.at, 1);
        assert_eq!(plan.seed, 99);
        let plan = ServeFaultPlan::parse("journal-eio@2").unwrap();
        assert_eq!(plan.kind, ServeFaultKind::JournalEio);
        assert_eq!(plan.seed, 2);
    }

    #[test]
    fn rejects_malformed_plans() {
        for text in [
            "",
            "slow",
            "slow@",
            "slow@x",
            "slow@0",
            "eio@1",
            "slow@1@2@3",
        ] {
            let err = ServeFaultPlan::parse(text).unwrap_err().to_string();
            assert!(err.contains("serve.fault_plan"), "{text}: {err}");
        }
    }

    #[test]
    fn fires_exactly_once() {
        let plan = ServeFaultPlan::new(ServeFaultKind::Slow, 2);
        assert!(!plan.fires(1));
        assert!(plan.fires(2));
        assert!(!plan.fires(3));
    }
}

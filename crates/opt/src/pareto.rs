//! Pareto frontiers over evaluated candidates.
//!
//! A single expected-cost number hides the trade-off between what you
//! *pay* (outlays) and what you *risk* (penalties, recovery time, data
//! loss). The frontier surfaces every candidate not dominated on both
//! axes, which is how a storage administrator would actually choose.

use crate::search::CandidateOutcome;
use crate::supervisor::Provenance;

/// Returns the subset of `outcomes` on the Pareto frontier of
/// `(objective_a, objective_b)` (both minimized), in ascending order of
/// the first objective.
///
/// A candidate is kept when no other candidate is at least as good on
/// both objectives and strictly better on one.
pub fn pareto_front<A, B>(
    outcomes: &[CandidateOutcome],
    objective_a: A,
    objective_b: B,
) -> Vec<&CandidateOutcome>
where
    A: Fn(&CandidateOutcome) -> f64,
    B: Fn(&CandidateOutcome) -> f64,
{
    let mut indexed: Vec<(f64, f64, &CandidateOutcome)> = outcomes
        .iter()
        .map(|o| (objective_a(o), objective_b(o), o))
        .collect();
    indexed.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));

    let mut front: Vec<&CandidateOutcome> = Vec::new();
    let mut best_b = f64::INFINITY;
    for (_, b, outcome) in indexed {
        if b < best_b {
            front.push(outcome);
            best_b = b;
        }
    }
    front
}

/// The outlay-versus-expected-penalty frontier: the standard "how much
/// protection is worth buying" curve.
pub fn cost_risk_front(outcomes: &[CandidateOutcome]) -> Vec<&CandidateOutcome> {
    pareto_front(
        outcomes,
        |o| o.outlays.as_dollars(),
        |o| o.expected_penalties.as_dollars(),
    )
}

/// The recovery-time-versus-data-loss frontier (the RTO/RPO plane).
pub fn rto_rpo_front(outcomes: &[CandidateOutcome]) -> Vec<&CandidateOutcome> {
    pareto_front(
        outcomes,
        |o| o.worst_recovery_time.as_secs(),
        |o| o.worst_data_loss.as_secs(),
    )
}

/// A Pareto frontier qualified by the provenance of the evaluation run
/// it was computed over.
///
/// A frontier over a degraded run (quarantined candidates) is a frontier
/// over the *survivors only* — a missing candidate could have dominated
/// members of the front. The qualification makes that explicit instead
/// of letting a partial frontier masquerade as the full one.
#[derive(Debug, Clone)]
pub struct QualifiedFront<'a> {
    /// The non-dominated surviving candidates, ascending in the first
    /// objective.
    pub members: Vec<&'a CandidateOutcome>,
    /// How many evaluated outcomes the front was computed over.
    pub surviving: usize,
    /// How many candidates are unrepresented (quarantined by the
    /// supervisor).
    pub missing: usize,
}

impl QualifiedFront<'_> {
    /// Whether the front covers every requested candidate.
    pub fn is_complete(&self) -> bool {
        self.missing == 0
    }

    /// A caveat line for display when the front is partial, e.g.
    /// `"frontier covers 14 of 16 candidates (2 failed)"`.
    pub fn caveat(&self) -> Option<String> {
        if self.is_complete() {
            return None;
        }
        Some(format!(
            "frontier covers {} of {} candidates ({} failed)",
            self.surviving,
            self.surviving + self.missing,
            self.missing
        ))
    }
}

/// [`cost_risk_front`] with explicit provenance of missing candidates.
pub fn qualified_cost_risk_front<'a>(
    outcomes: &'a [CandidateOutcome],
    provenance: &Provenance,
) -> QualifiedFront<'a> {
    QualifiedFront {
        members: cost_risk_front(outcomes),
        surviving: outcomes.len(),
        missing: provenance.failed,
    }
}

/// [`rto_rpo_front`] with explicit provenance of missing candidates.
pub fn qualified_rto_rpo_front<'a>(
    outcomes: &'a [CandidateOutcome],
    provenance: &Provenance,
) -> QualifiedFront<'a> {
    QualifiedFront {
        members: rto_rpo_front(outcomes),
        surviving: outcomes.len(),
        missing: provenance.failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{exhaustive, paper_scenarios};
    use crate::space::DesignSpace;

    fn outcomes() -> Vec<CandidateOutcome> {
        let workload = ssdep_core::presets::cello_workload();
        let requirements = ssdep_core::presets::paper_requirements();
        exhaustive(
            &DesignSpace::minimal(),
            &workload,
            &requirements,
            &paper_scenarios(),
        )
        .unwrap()
        .ranked
    }

    #[test]
    fn frontier_members_are_mutually_non_dominated() {
        let outcomes = outcomes();
        let front = cost_risk_front(&outcomes);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if std::ptr::eq(*a, *b) {
                    continue;
                }
                let dominates = a.outlays <= b.outlays
                    && a.expected_penalties <= b.expected_penalties
                    && (a.outlays < b.outlays || a.expected_penalties < b.expected_penalties);
                assert!(!dominates, "{} dominates {}", a.label, b.label);
            }
        }
    }

    #[test]
    fn every_non_member_is_dominated() {
        let outcomes = outcomes();
        let front = cost_risk_front(&outcomes);
        for candidate in &outcomes {
            let on_front = front.iter().any(|f| std::ptr::eq(*f, candidate));
            if on_front {
                continue;
            }
            let dominated = outcomes.iter().any(|other| {
                other.outlays <= candidate.outlays
                    && other.expected_penalties <= candidate.expected_penalties
                    && (other.outlays < candidate.outlays
                        || other.expected_penalties < candidate.expected_penalties)
            });
            assert!(dominated, "{} should be dominated", candidate.label);
        }
    }

    #[test]
    fn frontier_is_sorted_and_monotone() {
        let outcomes = outcomes();
        let front = cost_risk_front(&outcomes);
        for pair in front.windows(2) {
            assert!(pair[0].outlays <= pair[1].outlays);
            assert!(pair[0].expected_penalties >= pair[1].expected_penalties);
        }
    }

    #[test]
    fn rto_rpo_frontier_includes_the_lowest_loss_design() {
        let outcomes = outcomes();
        let front = rto_rpo_front(&outcomes);
        let min_loss = outcomes
            .iter()
            .map(|o| o.worst_data_loss)
            .fold(ssdep_core::units::TimeDelta::from_years(100.0), |a, b| {
                a.min(b)
            });
        assert!(front.iter().any(|o| o.worst_data_loss == min_loss));
    }

    #[test]
    fn qualified_fronts_carry_their_caveat() {
        let outcomes = outcomes();
        let complete = Provenance {
            total: outcomes.len(),
            evaluated: outcomes.len(),
            ..Provenance::default()
        };
        let front = qualified_cost_risk_front(&outcomes, &complete);
        assert!(front.is_complete());
        assert!(front.caveat().is_none());
        assert_eq!(front.members.len(), cost_risk_front(&outcomes).len());

        let degraded = Provenance {
            total: outcomes.len() + 2,
            evaluated: outcomes.len(),
            failed: 2,
            ..Provenance::default()
        };
        let partial = qualified_rto_rpo_front(&outcomes, &degraded);
        assert!(!partial.is_complete());
        let caveat = partial.caveat().unwrap();
        assert!(caveat.contains("2 failed"), "{caveat}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(cost_risk_front(&[]).is_empty());
        let outcomes = outcomes();
        let single = &outcomes[..1];
        let front = cost_risk_front(single);
        assert_eq!(front.len(), 1);
    }
}

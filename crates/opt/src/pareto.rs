//! Pareto frontiers over evaluated candidates.
//!
//! A single expected-cost number hides the trade-off between what you
//! *pay* (outlays) and what you *risk* (penalties, recovery time, data
//! loss). The frontier surfaces every candidate not dominated on both
//! axes, which is how a storage administrator would actually choose.

use crate::search::CandidateOutcome;

/// Returns the subset of `outcomes` on the Pareto frontier of
/// `(objective_a, objective_b)` (both minimized), in ascending order of
/// the first objective.
///
/// A candidate is kept when no other candidate is at least as good on
/// both objectives and strictly better on one.
pub fn pareto_front<A, B>(
    outcomes: &[CandidateOutcome],
    objective_a: A,
    objective_b: B,
) -> Vec<&CandidateOutcome>
where
    A: Fn(&CandidateOutcome) -> f64,
    B: Fn(&CandidateOutcome) -> f64,
{
    let mut indexed: Vec<(f64, f64, &CandidateOutcome)> = outcomes
        .iter()
        .map(|o| (objective_a(o), objective_b(o), o))
        .collect();
    indexed.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));

    let mut front: Vec<&CandidateOutcome> = Vec::new();
    let mut best_b = f64::INFINITY;
    for (_, b, outcome) in indexed {
        if b < best_b {
            front.push(outcome);
            best_b = b;
        }
    }
    front
}

/// The outlay-versus-expected-penalty frontier: the standard "how much
/// protection is worth buying" curve.
pub fn cost_risk_front(outcomes: &[CandidateOutcome]) -> Vec<&CandidateOutcome> {
    pareto_front(
        outcomes,
        |o| o.outlays.as_dollars(),
        |o| o.expected_penalties.as_dollars(),
    )
}

/// The recovery-time-versus-data-loss frontier (the RTO/RPO plane).
pub fn rto_rpo_front(outcomes: &[CandidateOutcome]) -> Vec<&CandidateOutcome> {
    pareto_front(
        outcomes,
        |o| o.worst_recovery_time.as_secs(),
        |o| o.worst_data_loss.as_secs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{exhaustive, paper_scenarios};
    use crate::space::DesignSpace;

    fn outcomes() -> Vec<CandidateOutcome> {
        let workload = ssdep_core::presets::cello_workload();
        let requirements = ssdep_core::presets::paper_requirements();
        exhaustive(
            &DesignSpace::minimal(),
            &workload,
            &requirements,
            &paper_scenarios(),
        )
        .unwrap()
        .ranked
    }

    #[test]
    fn frontier_members_are_mutually_non_dominated() {
        let outcomes = outcomes();
        let front = cost_risk_front(&outcomes);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if std::ptr::eq(*a, *b) {
                    continue;
                }
                let dominates = a.outlays <= b.outlays
                    && a.expected_penalties <= b.expected_penalties
                    && (a.outlays < b.outlays || a.expected_penalties < b.expected_penalties);
                assert!(!dominates, "{} dominates {}", a.label, b.label);
            }
        }
    }

    #[test]
    fn every_non_member_is_dominated() {
        let outcomes = outcomes();
        let front = cost_risk_front(&outcomes);
        for candidate in &outcomes {
            let on_front = front.iter().any(|f| std::ptr::eq(*f, candidate));
            if on_front {
                continue;
            }
            let dominated = outcomes.iter().any(|other| {
                other.outlays <= candidate.outlays
                    && other.expected_penalties <= candidate.expected_penalties
                    && (other.outlays < candidate.outlays
                        || other.expected_penalties < candidate.expected_penalties)
            });
            assert!(dominated, "{} should be dominated", candidate.label);
        }
    }

    #[test]
    fn frontier_is_sorted_and_monotone() {
        let outcomes = outcomes();
        let front = cost_risk_front(&outcomes);
        for pair in front.windows(2) {
            assert!(pair[0].outlays <= pair[1].outlays);
            assert!(pair[0].expected_penalties >= pair[1].expected_penalties);
        }
    }

    #[test]
    fn rto_rpo_frontier_includes_the_lowest_loss_design() {
        let outcomes = outcomes();
        let front = rto_rpo_front(&outcomes);
        let min_loss = outcomes
            .iter()
            .map(|o| o.worst_data_loss)
            .fold(ssdep_core::units::TimeDelta::from_years(100.0), |a, b| a.min(b));
        assert!(front.iter().any(|o| o.worst_data_loss == min_loss));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(cost_risk_front(&[]).is_empty());
        let outcomes = outcomes();
        let single = &outcomes[..1];
        let front = cost_risk_front(single);
        assert_eq!(front.len(), 1);
    }
}

//! Crash-tolerant batch evaluation for sweeps and design-space search.
//!
//! The paper's payoff is evaluating *many* candidate designs; at scale,
//! one poisoned candidate must not take the whole run down with it. The
//! supervisor runs each task under panic isolation with an optional
//! per-task deadline, retries transient failures with the shared
//! [`RetryPolicy`] backoff, quarantines everything else into a typed
//! [`FailedOutcome`], and journals completed tasks to an append-only
//! checkpoint ([`crate::journal`]) so a killed process resumes with its
//! finished work intact — bit-for-bit, because resumed outcomes are
//! replayed from the journal rather than re-evaluated.
//!
//! With [`SupervisorConfig::jobs`] above one, fresh tasks are claimed
//! in chunks from a work-stealing queue (one compare-and-swap per run
//! of tasks; a worker that runs dry steals the back half of the fullest
//! remaining range) and outcomes flow over a bounded channel to a
//! dedicated journal-writer thread, so workers never block on
//! checkpoint I/O. Each worker reuses one deadline-watchdog thread
//! across attempts instead of spawning one per attempt. Results are
//! still assembled in input order, so a parallel run returns
//! byte-identical results to a serial one.
//!
//! Results always carry [`Provenance`]: how many tasks were requested,
//! resumed, freshly evaluated, retried, and quarantined — so a degraded
//! run is never silently presented as complete.
//!
//! The journal itself is treated as a component that can fail: append
//! and fsync errors are retried under the same [`RetryPolicy`], and if
//! they persist (a full disk, a dead device) the run sheds the journal
//! and finishes in memory, flagging [`Provenance::journal_degraded`] —
//! a sweep is never lost to the storage fault its checkpoint was meant
//! to survive.

use crate::journal::{read_journal, JournalWriter};
use crate::sink::IoFaultPlan;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use ssdep_core::error::{Error, RetryPolicy};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// The default jitter seed for supervised retry backoff. Any fixed
/// value works — determinism is the point; this one spells "ssdepPR8".
pub const RETRY_JITTER_SEED: u64 = 0x7373_6465_7050_5238;

/// Why a task was quarantined instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The evaluation panicked; the panic was caught and isolated.
    Panicked,
    /// The evaluation returned an error that retries could not clear.
    Errored,
    /// The evaluation ran past its per-task deadline budget.
    DeadlineExceeded,
    /// The candidate failed its preflight diagnostics and was quarantined
    /// before evaluation — no isolation thread or deadline budget was
    /// spent on it.
    Rejected,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panicked => f.write_str("panicked"),
            FailureKind::Errored => f.write_str("errored"),
            FailureKind::DeadlineExceeded => f.write_str("deadline exceeded"),
            FailureKind::Rejected => f.write_str("rejected"),
        }
    }
}

/// One quarantined task: the candidate that failed, how, and after how
/// many attempts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedOutcome<T> {
    /// The task that failed.
    pub candidate: T,
    /// The failure, rendered.
    pub error: String,
    /// How many evaluation attempts were made.
    pub attempts: u32,
    /// The failure classification.
    pub kind: FailureKind,
}

/// One journaled task record: exactly what the run produced for one
/// item, replayed verbatim on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskRecord<T, O> {
    /// The task completed with an outcome.
    Completed {
        /// The evaluated item.
        item: T,
        /// Its outcome.
        outcome: O,
    },
    /// The task was quarantined.
    Failed(FailedOutcome<T>),
}

impl<T: Serialize, O> TaskRecord<T, O> {
    fn key(&self) -> Result<String, Error> {
        match self {
            TaskRecord::Completed { item, .. } => task_key(item),
            TaskRecord::Failed(failed) => task_key(&failed.candidate),
        }
    }
}

/// Appends `record` to the checkpoint journal, degrading to in-memory
/// mode on failure: the first journal error that survives the writer's
/// own retries is recorded, the writer is dropped (its best-effort sync
/// preserves whatever did land on disk), and the run continues without
/// checkpointing — a full disk must cost the journal, never the sweep.
/// Returns whether the record was journaled.
fn append_or_degrade<T: Serialize, O: Serialize>(
    journal: &mut Option<JournalWriter>,
    journal_error: &mut Option<String>,
    record: &TaskRecord<T, O>,
) -> bool {
    let Some(writer) = journal.as_mut() else {
        return false;
    };
    match writer.append(record) {
        Ok(()) => true,
        Err(e) => {
            *journal_error = Some(e.to_string());
            *journal = None;
            false
        }
    }
}

/// The identity of a task inside a journal: its canonical JSON
/// rendering. Two items resume-match exactly when they serialize
/// identically.
fn task_key<T: Serialize>(item: &T) -> Result<String, Error> {
    serde_json::to_string(item)
        .map_err(|e| Error::invalid("supervisor.task", format!("not serializable: {e}")))
}

/// Where each part of a supervised run's result came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Tasks requested.
    pub total: usize,
    /// Outcomes replayed from the resume journal.
    pub resumed: usize,
    /// Fresh evaluations performed by this process.
    pub evaluated: usize,
    /// Transient-failure retries performed across all tasks.
    pub retries: usize,
    /// Tasks quarantined as [`FailedOutcome`]s (resumed or fresh).
    pub failed: usize,
    /// Preparation-cache hits recorded by the staged evaluation engine
    /// ([`EvalEngine`](crate::engine::EvalEngine)) during fresh
    /// evaluations; zero for runs that never routed through an engine,
    /// and always zero for replayed outcomes (resume skips preparation
    /// entirely).
    #[serde(default)]
    pub cache_hits: usize,
    /// Estimated resident bytes held by the evaluation engine's memo
    /// cache when the run finished (see `EvalEngine::cached_bytes`);
    /// zero for runs that never routed through an engine.
    #[serde(default)]
    pub cache_bytes: usize,
    /// Whether checkpointing was abandoned mid-run after a journal
    /// write failure that retries could not clear (e.g. a full disk).
    /// The results themselves are complete and correct — they were
    /// assembled in memory — but some may not be durably journaled, so
    /// a later `--resume` re-evaluates them.
    #[serde(default)]
    pub journal_degraded: bool,
}

impl Provenance {
    /// Tasks that produced a usable outcome.
    pub fn completed(&self) -> usize {
        self.total - self.failed
    }

    /// Whether every requested task completed — when false, downstream
    /// rankings and frontiers cover only the surviving outcomes.
    pub fn is_complete(&self) -> bool {
        self.failed == 0
    }

    /// A one-line human summary, e.g.
    /// `"16 tasks: 12 evaluated, 4 resumed, 0 failed (2 retries)"`, with
    /// a cache-hit note appended only when the engine recorded any.
    pub fn summary(&self) -> String {
        let mut text = format!(
            "{} tasks: {} evaluated, {} resumed, {} failed ({} retr{})",
            self.total,
            self.evaluated,
            self.resumed,
            self.failed,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
        );
        if self.cache_hits > 0 {
            text.push_str(&format!(
                ", {} cache hit{}",
                self.cache_hits,
                if self.cache_hits == 1 { "" } else { "s" },
            ));
        }
        if self.cache_bytes > 0 {
            text.push_str(&format!(" ({} cached bytes)", self.cache_bytes));
        }
        if self.journal_degraded {
            text.push_str("; journal degraded — results were NOT fully checkpointed");
        }
        text
    }
}

/// The result of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisedRun<T, O> {
    /// Tasks that completed, in input order, with their outcomes.
    pub completed: Vec<(T, O)>,
    /// Quarantined tasks, in input order.
    pub failed: Vec<FailedOutcome<T>>,
    /// Where the results came from.
    pub provenance: Provenance,
    /// The journal failure that forced the run to continue in-memory,
    /// when [`Provenance::journal_degraded`] is set.
    pub journal_error: Option<String>,
}

/// Configuration for a [`Supervisor`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-task wall-clock budget. Tasks running past it are
    /// quarantined as [`FailureKind::DeadlineExceeded`]. `None` (the
    /// default) runs tasks inline with no timeout.
    pub deadline: Option<Duration>,
    /// Retry policy for transient ([`Error::is_transient`]) failures.
    pub retry: RetryPolicy,
    /// Journal to append completed tasks to (created if absent).
    pub checkpoint: Option<PathBuf>,
    /// Journal to replay completed tasks from before evaluating.
    pub resume: Option<PathBuf>,
    /// How many journal appends to batch between `fsync`s.
    pub sync_every: usize,
    /// How many worker threads evaluate fresh tasks concurrently. `1`
    /// (the default) keeps the classic serial loop. Higher values fan
    /// fresh tasks out over a scoped worker pool; completed and failed
    /// outcomes are still assembled in input order, so results are
    /// byte-identical to a serial run — only the journal's append order
    /// (which resume matches by key, not position) varies.
    pub jobs: usize,
    /// Test hook: abort the process (as a crash would) immediately
    /// after this many fresh journal appends have been made durable.
    #[doc(hidden)]
    pub crash_after_journaled: Option<usize>,
    /// Test hook: inject deterministic storage faults into the
    /// checkpoint journal's sink (see [`IoFaultPlan`]). This is how the
    /// degraded-journal path is exercised without a genuinely full disk.
    #[doc(hidden)]
    pub journal_faults: Option<IoFaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            deadline: None,
            // Jittered by default: parallel workers that trip over the
            // same transient fault (one flaky disk under --jobs N) must
            // not sleep identical backoffs and re-collide in lockstep.
            retry: RetryPolicy::new(2).with_jitter(RETRY_JITTER_SEED),
            checkpoint: None,
            resume: None,
            sync_every: 8,
            jobs: 1,
            crash_after_journaled: None,
            journal_faults: None,
        }
    }
}

impl SupervisorConfig {
    /// Applies the fault-injection environment hooks every binary and
    /// integration test shares, instead of each reimplementing the
    /// parsing:
    ///
    /// * `SSDEP_CRASH_AFTER=<n>` — abort the process after `n` fresh
    ///   journal appends are durable ([`crash_after_journaled`]);
    /// * `SSDEP_JOURNAL_FAULT=<kind@N[@seed]>` — inject a storage fault
    ///   into the journal sink ([`journal_faults`]; see
    ///   [`IoFaultPlan::parse`] for the format).
    ///
    /// [`crash_after_journaled`]: SupervisorConfig::crash_after_journaled
    /// [`journal_faults`]: SupervisorConfig::journal_faults
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when either variable is set
    /// but unparsable.
    pub fn apply_env_hooks(mut self) -> Result<SupervisorConfig, Error> {
        if let Ok(text) = std::env::var("SSDEP_CRASH_AFTER") {
            let n = text.parse().map_err(|e| {
                Error::invalid("SSDEP_CRASH_AFTER", format!("bad SSDEP_CRASH_AFTER: {e}"))
            })?;
            self.crash_after_journaled = Some(n);
        }
        if let Ok(text) = std::env::var("SSDEP_JOURNAL_FAULT") {
            self.journal_faults = Some(IoFaultPlan::parse(&text)?);
        }
        Ok(self)
    }
}

/// A fault-tolerant batch evaluation engine — see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
    engine: Arc<crate::engine::EvalEngine>,
}

impl Supervisor {
    /// A supervisor with the given configuration (and a fresh
    /// default-capacity [`EvalEngine`](crate::engine::EvalEngine)).
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor {
            config,
            engine: Arc::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The staged evaluation engine that batch helpers
    /// ([`supervised_sweep`](crate::sweep::supervised_sweep),
    /// [`supervised_exhaustive`](crate::search::supervised_exhaustive))
    /// route preparation through. The generic [`run`](Supervisor::run)
    /// loop itself never touches it.
    pub fn engine(&self) -> &Arc<crate::engine::EvalEngine> {
        &self.engine
    }

    /// Replaces the engine — e.g. to share one preparation cache across
    /// several related runs.
    #[must_use]
    pub fn with_engine(mut self, engine: Arc<crate::engine::EvalEngine>) -> Supervisor {
        self.engine = engine;
        self
    }

    /// Runs `eval` over every item, isolating panics, enforcing the
    /// deadline budget, retrying transient errors, journaling progress,
    /// and replaying any resumed outcomes.
    ///
    /// The `eval` closure returns `Ok(outcome)` for a finished task and
    /// `Err` for failures; only transient errors are retried, so
    /// closures should fold *expected* domain failures (e.g. an
    /// infeasible candidate) into the outcome type rather than
    /// returning them as errors.
    ///
    /// With [`SupervisorConfig::jobs`] above one, fresh tasks are
    /// claimed by a scoped worker pool; outcomes are journaled in
    /// completion order (resume matches by key, so order is irrelevant)
    /// and assembled into input order, so the returned run is identical
    /// to a serial one.
    ///
    /// # Errors
    ///
    /// Returns journal I/O and serialization errors — per-task
    /// evaluation failures never abort the run.
    pub fn run<T, O, F>(&self, items: &[T], eval: F) -> Result<SupervisedRun<T, O>, Error>
    where
        T: Clone + Send + Sync + Serialize + DeserializeOwned + 'static,
        O: Send + Serialize + DeserializeOwned + 'static,
        F: Fn(&T) -> Result<O, Error> + Send + Sync + 'static,
    {
        self.run_with_rejected(items, Vec::new(), eval)
    }

    /// [`run`](Supervisor::run), plus a set of candidates the caller
    /// rejected before evaluation (e.g. a preflight gate).
    ///
    /// Rejected candidates are journaled as [`TaskRecord::Failed`] with
    /// their caller-supplied outcome (conventionally
    /// [`FailureKind::Rejected`] with zero attempts), so a resumed run
    /// replays them instead of re-reporting them as fresh; they are never
    /// evaluated or retried, do not advance the crash-injection counter,
    /// and are appended after the evaluated results in the returned
    /// failure list.
    ///
    /// # Errors
    ///
    /// Returns journal I/O and serialization errors — per-task
    /// evaluation failures never abort the run.
    pub fn run_with_rejected<T, O, F>(
        &self,
        items: &[T],
        rejected: Vec<FailedOutcome<T>>,
        eval: F,
    ) -> Result<SupervisedRun<T, O>, Error>
    where
        T: Clone + Send + Sync + Serialize + DeserializeOwned + 'static,
        O: Send + Serialize + DeserializeOwned + 'static,
        F: Fn(&T) -> Result<O, Error> + Send + Sync + 'static,
    {
        let eval = Arc::new(eval);

        // Replay journaled outcomes: last record per key wins, so a
        // journal that was appended to across several resumes stays
        // consistent.
        let mut replay: HashMap<String, TaskRecord<T, O>> = HashMap::new();
        if let Some(resume) = &self.config.resume {
            for record in read_journal::<TaskRecord<T, O>>(resume)? {
                replay.insert(record.key()?, record);
            }
        }

        // Re-journal replayed records only when the checkpoint is a
        // different file — same-file resume already holds them.
        let rejournal_resumed = match (&self.config.checkpoint, &self.config.resume) {
            (Some(checkpoint), Some(resume)) => checkpoint != resume,
            _ => false,
        };
        // A checkpoint that cannot even be opened degrades the run the
        // same way an append failure would: the sweep's results matter
        // more than the journal that was meant to protect them.
        let mut journal_error: Option<String> = None;
        let mut journal = match &self.config.checkpoint {
            Some(path) => match JournalWriter::open(path, self.config.sync_every) {
                Ok(writer) => {
                    let writer = writer.with_retry(self.config.retry);
                    Some(match self.config.journal_faults {
                        Some(plan) => writer.with_fault_plan(plan),
                        None => writer,
                    })
                }
                Err(e) => {
                    journal_error = Some(e.to_string());
                    None
                }
            },
            None => None,
        };

        let mut provenance = Provenance {
            total: items.len() + rejected.len(),
            ..Provenance::default()
        };
        let mut fresh_journaled = 0usize;

        // Journal the caller-rejected candidates up front: they show up
        // in the journal like any other failure (and replay on resume),
        // but were never evaluated, so they do not advance the
        // crash-injection counter.
        let mut rejected_records: Vec<TaskRecord<T, O>> = Vec::with_capacity(rejected.len());
        for outcome in rejected {
            // Serializing the task key is only needed while replay
            // candidates remain — a fresh (or exhausted) journal skips
            // the per-item serialization entirely.
            let replayed = if replay.is_empty() {
                None
            } else {
                replay.remove(&task_key(&outcome.candidate)?)
            };
            if let Some(replayed) = replayed {
                provenance.resumed += 1;
                if rejournal_resumed {
                    append_or_degrade(&mut journal, &mut journal_error, &replayed);
                }
                rejected_records.push(replayed);
            } else {
                let record = TaskRecord::Failed(outcome);
                append_or_degrade(&mut journal, &mut journal_error, &record);
                rejected_records.push(record);
            }
        }

        // Replay pass: settle resumed outcomes into their input-order
        // slots, leaving only fresh indices to evaluate. Without a
        // resume journal every item is fresh and no task key is ever
        // serialized — the common no-resume sweep pays nothing here.
        let mut slots: Vec<Option<TaskRecord<T, O>>> = items.iter().map(|_| None).collect();
        let mut fresh: Vec<usize> = Vec::new();
        if replay.is_empty() {
            fresh.extend(0..items.len());
        } else {
            for (index, item) in items.iter().enumerate() {
                if !replay.is_empty() {
                    if let Some(replayed) = replay.remove(&task_key(item)?) {
                        provenance.resumed += 1;
                        if rejournal_resumed {
                            append_or_degrade(&mut journal, &mut journal_error, &replayed);
                        }
                        slots[index] = Some(replayed);
                        continue;
                    }
                }
                fresh.push(index);
            }
        }

        let build_record =
            |item: &T, outcome: Result<O, (FailureKind, String)>, attempts: u32| match outcome {
                Ok(outcome) => TaskRecord::Completed {
                    item: item.clone(),
                    outcome,
                },
                Err((kind, error)) => TaskRecord::Failed(FailedOutcome {
                    candidate: item.clone(),
                    error,
                    attempts,
                    kind,
                }),
            };

        let jobs = self.config.jobs.max(1).min(fresh.len().max(1));
        if jobs <= 1 {
            // Serial path: evaluate fresh tasks in input order.
            let mut runner = DeadlineRunner::new();
            for &index in &fresh {
                let item = &items[index];
                let (outcome, attempts) =
                    self.evaluate_isolated(item, &eval, index as u64, &mut runner);
                provenance.evaluated += 1;
                provenance.retries += attempts.saturating_sub(1) as usize;
                let record = build_record(item, outcome, attempts);
                if append_or_degrade(&mut journal, &mut journal_error, &record) {
                    fresh_journaled += 1;
                    if self.config.crash_after_journaled == Some(fresh_journaled) {
                        // Emulate a kill arriving just after an fsync:
                        // make this batch durable, then die without any
                        // graceful shutdown.
                        if let Some(writer) = journal.as_mut() {
                            let _ = writer.sync();
                        }
                        std::process::abort();
                    }
                }
                slots[index] = Some(record);
            }
        } else {
            // Parallel path: workers claim chunked runs of fresh indices
            // from a work-stealing queue — one compare-and-swap per run
            // instead of one per item — and send outcomes over a bounded
            // channel to a dedicated journal-writer thread, so a worker
            // never blocks on checkpoint I/O (a full channel is
            // backpressure, not disk latency). The journal is written in
            // completion order; resume matches by key, so order is
            // irrelevant.
            let queue = WorkQueue::partition(fresh.len(), jobs);
            let chunk = (fresh.len() / (jobs * 8)).clamp(1, 64);
            let (sender, receiver) =
                mpsc::sync_channel::<(usize, Result<O, (FailureKind, String)>, u32)>(jobs * 32);
            let crash_after = self.config.crash_after_journaled;
            let (journal_after, error_after, slots_after, evaluated, retries) =
                std::thread::scope(|scope| {
                    let fresh = &fresh;
                    let queue = &queue;
                    let build_record = &build_record;
                    let writer = scope.spawn(move || {
                        let mut journal = journal;
                        let mut journal_error = journal_error;
                        let mut slots = slots;
                        let mut fresh_journaled = fresh_journaled;
                        let mut evaluated = 0usize;
                        let mut retries = 0usize;
                        while let Ok((index, outcome, attempts)) = receiver.recv() {
                            evaluated += 1;
                            retries += attempts.saturating_sub(1) as usize;
                            let record = build_record(&items[index], outcome, attempts);
                            if append_or_degrade(&mut journal, &mut journal_error, &record) {
                                fresh_journaled += 1;
                                if crash_after == Some(fresh_journaled) {
                                    if let Some(writer) = journal.as_mut() {
                                        let _ = writer.sync();
                                    }
                                    std::process::abort();
                                }
                            }
                            slots[index] = Some(record);
                        }
                        (journal, journal_error, slots, evaluated, retries)
                    });
                    for worker in 0..jobs {
                        let sender = sender.clone();
                        let eval = &eval;
                        scope.spawn(move || {
                            let mut runner = DeadlineRunner::new();
                            while let Some((lo, hi)) = queue.claim(worker, chunk) {
                                for &index in &fresh[lo..hi] {
                                    let (outcome, attempts) = self.evaluate_isolated(
                                        &items[index],
                                        eval,
                                        index as u64,
                                        &mut runner,
                                    );
                                    if sender.send((index, outcome, attempts)).is_err() {
                                        // The journal writer is gone;
                                        // stop claiming work.
                                        return;
                                    }
                                }
                            }
                        });
                    }
                    drop(sender);
                    match writer.join() {
                        Ok(state) => state,
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                });
            journal = journal_after;
            journal_error = error_after;
            slots = slots_after;
            provenance.evaluated += evaluated;
            provenance.retries += retries;
        }

        // Assemble in input order so parallel runs are byte-identical to
        // serial ones.
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        for record in slots.into_iter().flatten().chain(rejected_records) {
            match record {
                TaskRecord::Completed { item, outcome } => completed.push((item, outcome)),
                TaskRecord::Failed(outcome) => {
                    provenance.failed += 1;
                    failed.push(outcome);
                }
            }
        }

        if let Some(writer) = journal.as_mut() {
            if let Err(e) = writer.sync() {
                journal_error.get_or_insert(e.to_string());
                journal = None;
            }
        }
        drop(journal);
        provenance.journal_degraded = journal_error.is_some();
        Ok(SupervisedRun {
            completed,
            failed,
            provenance,
            journal_error,
        })
    }

    /// Evaluates one item with isolation, deadline, and retries; returns
    /// the outcome (or failure) and the number of attempts made. `salt`
    /// identifies the task (its input index) so jittered retry policies
    /// spread concurrent workers out after a shared transient fault.
    /// `runner` is the calling worker's reusable deadline watchdog.
    fn evaluate_isolated<T, O, F>(
        &self,
        item: &T,
        eval: &Arc<F>,
        salt: u64,
        runner: &mut DeadlineRunner,
    ) -> (Result<O, (FailureKind, String)>, u32)
    where
        T: Clone + Send + 'static,
        O: Send + 'static,
        F: Fn(&T) -> Result<O, Error> + Send + Sync + 'static,
    {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt_once(item, eval, runner) {
                Attempt::Completed(outcome) => return (Ok(outcome), attempt),
                Attempt::Errored(e)
                    if e.is_transient() && attempt <= self.config.retry.max_retries =>
                {
                    let delay = self.config.retry.delay_for_task(attempt, salt);
                    // An immediate policy's zero backoff is not a sleep
                    // at all — skip the syscall on the retry hot path.
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Attempt::Errored(e) => {
                    let error = e.with_attempts(attempt).to_string();
                    return (Err((FailureKind::Errored, error)), attempt);
                }
                Attempt::Panicked(message) => {
                    return (Err((FailureKind::Panicked, message)), attempt)
                }
                Attempt::TimedOut(budget) => {
                    let error = format!(
                        "evaluation exceeded its deadline budget of {:.3} s",
                        budget.as_secs_f64()
                    );
                    return (Err((FailureKind::DeadlineExceeded, error)), attempt);
                }
            }
        }
    }

    fn attempt_once<T, O, F>(
        &self,
        item: &T,
        eval: &Arc<F>,
        runner: &mut DeadlineRunner,
    ) -> Attempt<O>
    where
        T: Clone + Send + 'static,
        O: Send + 'static,
        F: Fn(&T) -> Result<O, Error> + Send + Sync + 'static,
    {
        let Some(deadline) = self.config.deadline else {
            // No deadline: run inline under catch_unwind. AssertUnwindSafe
            // is sound because a panicked evaluation's partial state is
            // discarded wholesale — nothing of it is observed afterwards.
            return match catch_unwind(AssertUnwindSafe(|| eval(item))) {
                Ok(Ok(outcome)) => Attempt::Completed(outcome),
                Ok(Err(e)) => Attempt::Errored(e),
                Err(payload) => Attempt::Panicked(panic_message(payload.as_ref())),
            };
        };

        // With a deadline, the attempt runs on the worker's reusable
        // watchdog thread so a runaway evaluation can be abandoned. An
        // abandoned watchdog is detached, not killed — it wastes CPU
        // until the runaway finishes, but the evaluations are pure so
        // it cannot corrupt shared state.
        let worker_eval = Arc::clone(eval);
        let worker_item = item.clone();
        let attempt = runner.run(deadline, move || {
            catch_unwind(AssertUnwindSafe(move || worker_eval(&worker_item)))
        });
        match attempt {
            Err(e) => Attempt::Errored(e),
            Ok(Watchdog::TimedOut) => Attempt::TimedOut(deadline),
            Ok(Watchdog::Died) => {
                Attempt::Panicked("evaluation thread died without reporting".to_string())
            }
            Ok(Watchdog::Finished(Ok(Ok(outcome)))) => Attempt::Completed(outcome),
            Ok(Watchdog::Finished(Ok(Err(e)))) => Attempt::Errored(e),
            Ok(Watchdog::Finished(Err(payload))) => {
                Attempt::Panicked(panic_message(payload.as_ref()))
            }
        }
    }
}

/// A chunked work-stealing queue over the indices `0..len` of a fresh-
/// task list. Each worker owns one contiguous range, claims chunks off
/// its own front, and steals the back half of the fullest other range
/// when its own runs dry. Ranges are packed `(lo << 32) | hi` into one
/// atomic per worker so both claiming and stealing are a single
/// compare-and-swap — no locks, and no per-item claim traffic.
struct WorkQueue {
    ranges: Vec<AtomicU64>,
}

impl WorkQueue {
    fn partition(len: usize, workers: usize) -> WorkQueue {
        // Indices are packed into u32 halves; a batch beyond 2^32 tasks
        // would exhaust memory on journal records long before this.
        assert!(
            u32::try_from(len).is_ok(),
            "work-stealing queue supports at most 2^32 - 1 tasks"
        );
        let workers = workers.max(1);
        let ranges = (0..workers)
            .map(|worker| {
                let lo = len * worker / workers;
                let hi = len * (worker + 1) / workers;
                AtomicU64::new(pack_range(lo, hi))
            })
            .collect();
        WorkQueue { ranges }
    }

    /// Claims up to `chunk` indices for `worker` — from its own range,
    /// or by stealing once it runs dry. `None` when every range is
    /// empty (the queue is drained; the worker should exit).
    fn claim(&self, worker: usize, chunk: usize) -> Option<(usize, usize)> {
        loop {
            if let Some(run) = self.claim_front(worker, chunk) {
                return Some(run);
            }
            if !self.steal_into(worker) {
                return None;
            }
        }
    }

    fn claim_front(&self, worker: usize, chunk: usize) -> Option<(usize, usize)> {
        let slot = &self.ranges[worker];
        let mut current = slot.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack_range(current);
            if lo >= hi {
                return None;
            }
            let next = (lo + chunk).min(hi);
            match slot.compare_exchange_weak(
                current,
                pack_range(next, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, next)),
                Err(observed) => current = observed,
            }
        }
    }

    /// Steals the back half of the fullest foreign range into `worker`'s
    /// own (empty) slot. Only the owner claims from a slot's front and
    /// only a successful compare-and-swap moves a slot's back, so the
    /// store into the thief's drained slot cannot race a claim. Returns
    /// false once every range is empty.
    fn steal_into(&self, worker: usize) -> bool {
        loop {
            let mut victim: Option<(usize, u64, usize)> = None;
            for (other, slot) in self.ranges.iter().enumerate() {
                if other == worker {
                    continue;
                }
                let observed = slot.load(Ordering::Acquire);
                let (lo, hi) = unpack_range(observed);
                let remaining = hi.saturating_sub(lo);
                if remaining > 0 && victim.is_none_or(|(_, _, best)| remaining > best) {
                    victim = Some((other, observed, remaining));
                }
            }
            let Some((other, observed, remaining)) = victim else {
                return false;
            };
            let (lo, hi) = unpack_range(observed);
            let split = hi - remaining.div_ceil(2);
            if self.ranges[other]
                .compare_exchange(
                    observed,
                    pack_range(lo, split),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                // The victim's range moved under us; rescan for the new
                // fullest range.
                continue;
            }
            self.ranges[worker].store(pack_range(split, hi), Ordering::Release);
            return true;
        }
    }
}

fn pack_range(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

fn unpack_range(packed: u64) -> (usize, usize) {
    ((packed >> 32) as usize, (packed & 0xffff_ffff) as usize)
}

/// The outcome of one watchdog-supervised attempt.
enum Watchdog<R> {
    Finished(R),
    TimedOut,
    Died,
}

/// A reusable deadline watchdog: one long-lived thread per worker runs
/// deadline-bounded attempts, so retrying a flaky task does not pay a
/// fresh thread spawn per attempt. The thread is spawned lazily on the
/// first deadline-bearing attempt; a timed-out attempt abandons it (the
/// runaway evaluation owns it until it finishes, after which the
/// orphaned thread exits) and the next attempt spawns a replacement.
struct DeadlineRunner {
    jobs: Option<mpsc::Sender<Box<dyn FnOnce() + Send>>>,
}

impl DeadlineRunner {
    fn new() -> DeadlineRunner {
        DeadlineRunner { jobs: None }
    }

    fn run<R: Send + 'static>(
        &mut self,
        deadline: Duration,
        task: impl FnOnce() -> R + Send + 'static,
    ) -> Result<Watchdog<R>, Error> {
        if self.jobs.is_none() {
            let (job_sender, job_receiver) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
            std::thread::Builder::new()
                .name("ssdep-supervised-eval".into())
                .spawn(move || {
                    while let Ok(job) = job_receiver.recv() {
                        job();
                    }
                })
                .map_err(|e| Error::io("supervisor thread spawn", e.to_string()))?;
            self.jobs = Some(job_sender);
        }
        let Some(sender) = self.jobs.as_ref() else {
            return Ok(Watchdog::Died);
        };
        let (result_sender, result_receiver) = mpsc::channel();
        let job: Box<dyn FnOnce() + Send> = Box::new(move || {
            let _ = result_sender.send(task());
        });
        if sender.send(job).is_err() {
            // The watchdog exited (it only does so when its sender
            // drops, so this is unexpected); retire it so the next
            // attempt respawns.
            self.jobs = None;
            return Ok(Watchdog::Died);
        }
        match result_receiver.recv_timeout(deadline) {
            Ok(result) => Ok(Watchdog::Finished(result)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Abandon the watchdog to the runaway task: dropping the
                // job sender lets the thread exit once the task
                // finishes; the next attempt spawns a fresh one.
                self.jobs = None;
                Ok(Watchdog::TimedOut)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.jobs = None;
                Ok(Watchdog::Died)
            }
        }
    }
}

enum Attempt<O> {
    Completed(O),
    Errored(Error),
    Panicked(String),
    TimedOut(Duration),
}

/// Renders a caught panic payload (the common `&str`/`String` payloads;
/// anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ssdep-supervisor-{name}-{}.jsonl",
            std::process::id()
        ))
    }

    fn square(items: &[u32]) -> Vec<(u32, u64)> {
        items
            .iter()
            .map(|&i| (i, u64::from(i) * u64::from(i)))
            .collect()
    }

    #[test]
    fn plain_run_completes_everything() {
        let supervisor = Supervisor::default();
        let items: Vec<u32> = (0..10).collect();
        let run = supervisor
            .run(&items, |&i: &u32| Ok(u64::from(i) * u64::from(i)))
            .unwrap();
        assert_eq!(run.completed, square(&items));
        assert!(run.failed.is_empty());
        assert_eq!(run.provenance.total, 10);
        assert_eq!(run.provenance.evaluated, 10);
        assert!(run.provenance.is_complete());
    }

    #[test]
    fn panicking_task_is_quarantined_not_fatal() {
        let supervisor = Supervisor::default();
        let items: Vec<u32> = (0..6).collect();
        let run = supervisor
            .run(&items, |&i: &u32| {
                assert!(i != 3, "poisoned task");
                Ok(i)
            })
            .unwrap();
        assert_eq!(run.completed.len(), 5);
        assert_eq!(run.failed.len(), 1);
        let failure = &run.failed[0];
        assert_eq!(failure.candidate, 3);
        assert_eq!(failure.kind, FailureKind::Panicked);
        assert!(failure.error.contains("poisoned task"), "{}", failure.error);
        assert_eq!(failure.attempts, 1, "panics are not retried");
        assert_eq!(run.provenance.failed, 1);
        assert!(!run.provenance.is_complete());
    }

    #[test]
    fn transient_errors_are_retried_then_succeed() {
        let supervisor = Supervisor::new(SupervisorConfig {
            retry: RetryPolicy::immediate(3),
            ..SupervisorConfig::default()
        });
        let flaky_calls = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&flaky_calls);
        let run = supervisor
            .run(&[7u32], move |&i: &u32| {
                if counter.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(Error::io("flaky source", "simulated"))
                } else {
                    Ok(i)
                }
            })
            .unwrap();
        assert_eq!(run.completed, vec![(7, 7)]);
        assert_eq!(run.provenance.retries, 2);
        assert_eq!(flaky_calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_errors_are_quarantined_without_retry() {
        let supervisor = Supervisor::new(SupervisorConfig {
            retry: RetryPolicy::immediate(5),
            ..SupervisorConfig::default()
        });
        let calls = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&calls);
        let run = supervisor
            .run::<u32, u32, _>(&[1], move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
                Err(Error::invalid("model", "deterministically broken"))
            })
            .unwrap();
        assert_eq!(run.failed.len(), 1);
        assert_eq!(run.failed[0].kind, FailureKind::Errored);
        assert_eq!(run.failed[0].attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn exhausted_transient_retries_quarantine_with_attempt_count() {
        let supervisor = Supervisor::new(SupervisorConfig {
            retry: RetryPolicy::immediate(2),
            ..SupervisorConfig::default()
        });
        let run = supervisor
            .run::<u32, u32, _>(&[1], |_| Err(Error::io("dead source", "always down")))
            .unwrap();
        let failure = &run.failed[0];
        assert_eq!(failure.kind, FailureKind::Errored);
        assert_eq!(failure.attempts, 3);
        assert!(
            failure.error.contains("after 3 attempts"),
            "{}",
            failure.error
        );
    }

    #[test]
    fn deadline_quarantines_runaway_tasks() {
        let supervisor = Supervisor::new(SupervisorConfig {
            deadline: Some(Duration::from_millis(40)),
            ..SupervisorConfig::default()
        });
        let items: Vec<u32> = vec![1, 2, 3];
        let run = supervisor
            .run(&items, |&i: &u32| {
                if i == 2 {
                    std::thread::sleep(Duration::from_secs(5));
                }
                Ok(i)
            })
            .unwrap();
        assert_eq!(run.completed.len(), 2);
        assert_eq!(run.failed.len(), 1);
        assert_eq!(run.failed[0].candidate, 2);
        assert_eq!(run.failed[0].kind, FailureKind::DeadlineExceeded);
        assert!(
            run.failed[0].error.contains("deadline"),
            "{}",
            run.failed[0].error
        );
    }

    #[test]
    fn checkpoint_then_resume_replays_bit_for_bit() {
        let path = temp("resume");
        std::fs::remove_file(&path).ok();
        let items: Vec<u32> = (0..8).collect();

        let config = SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            sync_every: 1,
            ..SupervisorConfig::default()
        };
        let first = Supervisor::new(config.clone())
            .run(&items[..5], |&i: &u32| Ok(u64::from(i) * u64::from(i)))
            .unwrap();
        assert_eq!(first.provenance.evaluated, 5);

        // Second process: full item list, same journal. The five
        // journaled outcomes replay; evaluation would now produce a
        // *different* answer — replay must win for bit-for-bit resume.
        let resumed = Supervisor::new(config)
            .run(&items, |&i: &u32| Ok(u64::from(i) * u64::from(i) + 1_000))
            .unwrap();
        assert_eq!(resumed.provenance.resumed, 5);
        assert_eq!(resumed.provenance.evaluated, 3);
        for (item, outcome) in &resumed.completed {
            let expected = if *item < 5 {
                u64::from(*item) * u64::from(*item)
            } else {
                u64::from(*item) * u64::from(*item) + 1_000
            };
            assert_eq!(*outcome, expected, "item {item}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_into_a_fresh_checkpoint_copies_history() {
        let old = temp("resume-old");
        let new = temp("resume-new");
        std::fs::remove_file(&old).ok();
        std::fs::remove_file(&new).ok();
        let items: Vec<u32> = (0..4).collect();
        Supervisor::new(SupervisorConfig {
            checkpoint: Some(old.clone()),
            ..SupervisorConfig::default()
        })
        .run(&items[..2], |&i: &u32| Ok(i))
        .unwrap();

        Supervisor::new(SupervisorConfig {
            checkpoint: Some(new.clone()),
            resume: Some(old.clone()),
            ..SupervisorConfig::default()
        })
        .run(&items, |&i: &u32| Ok(i))
        .unwrap();

        // The new checkpoint is self-contained: resuming from it alone
        // replays everything.
        let third = Supervisor::new(SupervisorConfig {
            resume: Some(new.clone()),
            ..SupervisorConfig::default()
        })
        .run(&items, |&i: &u32| Ok(i + 100))
        .unwrap();
        assert_eq!(third.provenance.resumed, 4);
        assert_eq!(third.provenance.evaluated, 0);
        std::fs::remove_file(&old).ok();
        std::fs::remove_file(&new).ok();
    }

    #[test]
    fn failed_outcomes_are_journaled_and_replayed() {
        let path = temp("failed-replay");
        std::fs::remove_file(&path).ok();
        let config = SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            ..SupervisorConfig::default()
        };
        let first = Supervisor::new(config.clone())
            .run(&[1u32, 2, 3], |&i: &u32| {
                assert!(i != 2, "poison");
                Ok(i)
            })
            .unwrap();
        assert_eq!(first.failed.len(), 1);

        // On resume the quarantine replays — the poison is not retried.
        let resumed = Supervisor::new(config)
            .run(&[1u32, 2, 3], |&i: &u32| Ok(i))
            .unwrap();
        assert_eq!(resumed.provenance.resumed, 3);
        assert_eq!(resumed.provenance.evaluated, 0);
        assert_eq!(resumed.failed.len(), 1);
        assert_eq!(resumed.failed[0].candidate, 2);
        assert_eq!(resumed.failed[0].kind, FailureKind::Panicked);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn provenance_summary_reads_well() {
        let provenance = Provenance {
            total: 16,
            resumed: 4,
            evaluated: 12,
            retries: 1,
            failed: 2,
            cache_hits: 0,
            cache_bytes: 0,
            journal_degraded: false,
        };
        let text = provenance.summary();
        assert!(text.contains("16 tasks"), "{text}");
        assert!(text.contains("1 retry"), "{text}");
        assert!(!text.contains("cache"), "{text}");
        assert_eq!(provenance.completed(), 14);

        let with_hits = Provenance {
            cache_hits: 3,
            ..provenance
        };
        assert!(with_hits.summary().ends_with("3 cache hits"));

        let with_bytes = Provenance {
            cache_hits: 3,
            cache_bytes: 2048,
            ..provenance
        };
        assert!(with_bytes
            .summary()
            .ends_with("3 cache hits (2048 cached bytes)"));
    }

    #[test]
    fn parallel_run_matches_serial_in_input_order() {
        let items: Vec<u32> = (0..24).collect();
        let eval = |&i: &u32| -> Result<u64, Error> {
            assert!(i != 9, "poisoned task");
            Ok(u64::from(i) * u64::from(i))
        };
        let serial = Supervisor::default().run(&items, eval).unwrap();
        let parallel = Supervisor::new(SupervisorConfig {
            jobs: 4,
            ..SupervisorConfig::default()
        })
        .run(&items, eval)
        .unwrap();
        assert_eq!(parallel.completed, serial.completed);
        assert_eq!(parallel.failed, serial.failed);
        assert_eq!(parallel.provenance, serial.provenance);
        assert_eq!(parallel.failed.len(), 1);
        assert_eq!(parallel.failed[0].candidate, 9);
    }

    #[test]
    fn parallel_checkpoint_resumes_under_any_job_count() {
        let path = temp("parallel-resume");
        std::fs::remove_file(&path).ok();
        let items: Vec<u32> = (0..12).collect();
        let config = SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            sync_every: 1,
            jobs: 3,
            ..SupervisorConfig::default()
        };
        let first = Supervisor::new(config.clone())
            .run(&items[..7], |&i: &u32| Ok(u64::from(i) + 1))
            .unwrap();
        assert_eq!(first.provenance.evaluated, 7);

        // Resume serially: the journal written in completion order still
        // replays, because matching is by key.
        let resumed = Supervisor::new(SupervisorConfig { jobs: 1, ..config })
            .run(&items, |&i: &u32| Ok(u64::from(i) + 1))
            .unwrap();
        assert_eq!(resumed.provenance.resumed, 7);
        assert_eq!(resumed.provenance.evaluated, 5);
        assert_eq!(
            resumed.completed,
            items
                .iter()
                .map(|&i| (i, u64::from(i) + 1))
                .collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_journal_eio_is_retried_and_the_run_stays_checkpointed() {
        use crate::sink::{FaultKind, IoFaultPlan};
        let path = temp("journal-eio");
        std::fs::remove_file(&path).ok();
        let run = Supervisor::new(SupervisorConfig {
            checkpoint: Some(path.clone()),
            retry: RetryPolicy::immediate(2),
            sync_every: 1,
            journal_faults: Some(IoFaultPlan::new(FaultKind::AppendEio, 3)),
            ..SupervisorConfig::default()
        })
        .run(&(0..6u32).collect::<Vec<_>>(), |&i: &u32| Ok(u64::from(i)))
        .unwrap();
        assert!(!run.provenance.journal_degraded, "{:?}", run.journal_error);
        assert_eq!(run.completed.len(), 6);
        // Every outcome is durably journaled — a resume replays them all.
        let resumed = Supervisor::new(SupervisorConfig {
            resume: Some(path.clone()),
            ..SupervisorConfig::default()
        })
        .run(&(0..6u32).collect::<Vec<_>>(), |_| {
            Err::<u64, _>(Error::invalid("eval", "must not re-run"))
        })
        .unwrap();
        assert_eq!(resumed.provenance.resumed, 6);
        assert_eq!(resumed.provenance.evaluated, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persistent_enospc_degrades_the_journal_but_never_the_results() {
        use crate::sink::{FaultKind, IoFaultPlan};
        let path = temp("journal-enospc");
        std::fs::remove_file(&path).ok();
        let items: Vec<u32> = (0..8).collect();
        let fault_free = Supervisor::default()
            .run(&items, |&i: &u32| Ok(u64::from(i) * 3))
            .unwrap();
        let degraded = Supervisor::new(SupervisorConfig {
            checkpoint: Some(path.clone()),
            retry: RetryPolicy::immediate(1),
            sync_every: 1,
            journal_faults: Some(IoFaultPlan::new(FaultKind::AppendEnospc, 3)),
            ..SupervisorConfig::default()
        })
        .run(&items, |&i: &u32| Ok(u64::from(i) * 3))
        .unwrap();
        // The sweep survived the full disk, results identical.
        assert_eq!(degraded.completed, fault_free.completed);
        assert!(degraded.provenance.journal_degraded);
        let error = degraded.journal_error.as_deref().unwrap();
        assert!(error.contains("ENOSPC"), "{error}");
        assert!(
            error.contains(&path.display().to_string()),
            "the journal error names the file: {error}"
        );
        assert!(
            degraded.provenance.summary().contains("journal degraded"),
            "{}",
            degraded.provenance.summary()
        );
        // Whatever did land before the disk filled is intact — the
        // degraded journal resumes, it just covers fewer tasks.
        let records = read_journal::<TaskRecord<u32, u64>>(&path).unwrap();
        assert!(records.len() < items.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn same_file_resume_does_not_duplicate_replayed_records() {
        let path = temp("same-file-rejournal");
        std::fs::remove_file(&path).ok();
        let items: Vec<u32> = (0..5).collect();
        let config = SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            sync_every: 1,
            ..SupervisorConfig::default()
        };
        Supervisor::new(config.clone())
            .run(&items, |&i: &u32| Ok(u64::from(i)))
            .unwrap();
        let after_first = read_journal::<TaskRecord<u32, u64>>(&path).unwrap().len();
        // Resuming into the same file must not re-append the replayed
        // records — they are already there.
        let resumed = Supervisor::new(config)
            .run(&items, |&i: &u32| Ok(u64::from(i)))
            .unwrap();
        assert_eq!(resumed.provenance.resumed, 5);
        let after_second = read_journal::<TaskRecord<u32, u64>>(&path).unwrap().len();
        assert_eq!(after_first, after_second, "no duplicate records");
        std::fs::remove_file(&path).ok();
    }
}

//! Staged evaluation engine: fingerprint-keyed reuse of scenario-
//! independent preparation across batch candidates.
//!
//! Every candidate evaluation in a sweep or search folds the same
//! pipeline: derive demands, build the utilization report, compute
//! propagation ranges — all independent of the failure scenario — then
//! score each scenario. [`PreparedDesign`] (ssdep-core) captures the
//! scenario-independent half; this module adds the batch-level layer on
//! top:
//!
//! * [`Fingerprint`] — a stable 64-bit *structural* hash walking the
//!   fields of a `(design, workload)` pair directly (see
//!   [`ssdep_core::fingerprint`]); no serialization runs on the hot
//!   path, so fingerprinting a candidate allocates nothing. The old
//!   serde-JSON hash survives as [`Fingerprint::weigh_serde`], a
//!   sanctioned fallback pinned equivalent by the collision-freedom
//!   suite in `tests/fingerprint_equivalence.rs`;
//! * [`EvalEngine`] — a byte-budgeted, least-recently-used memo cache of
//!   [`PreparedDesign`] artifacts keyed by fingerprint, sharded across
//!   several locks so a daemon's worker threads (or the supervisor's
//!   `--jobs` pool) don't serialize on one mutex, with hit/miss/byte
//!   counters surfaced through
//!   [`Provenance::cache_hits`](crate::supervisor::Provenance) and
//!   [`Provenance::cache_bytes`](crate::supervisor::Provenance).
//!
//! The cache only ever changes *how often* preparation runs, never what
//! an evaluation returns: a hit hands back the same artifact a fresh
//! [`PreparedDesign::prepare`] call would have produced, so engine-routed
//! results stay bit-for-bit identical to the single-shot pipeline.
//!
//! ### Single-flight preparation
//!
//! Concurrent misses on one fingerprint do *not* each prepare: the first
//! claimant becomes the flight leader and prepares once; the rest park on
//! a condvar and receive the leader's artifact (counted as hits, and as
//! [`EvalEngine::cache_dedup_waits`]). If the leader's preparation
//! errors, waiters retry from the top so every caller still observes the
//! deterministic per-input error.
//!
//! ### Why bytes, not entries
//!
//! A long-running `ssdep serve` node caches whatever traffic sends it:
//! ten-device case-study designs and thousand-device imports compete for
//! the same slots. An entry-count cap treats those as equal; a byte
//! budget (each entry is charged the number of bytes its structural
//! fingerprint hashed, which tracks design size) keeps the resident
//! footprint bounded no matter the mix.

use ssdep_core::analysis::{
    check_frequency, expected_annual_cost, expected_annual_cost_prepared, EvalScratch,
    ExpectedCost, ExpectedSummary, PreparedDesign, WeightedScenario,
};
use ssdep_core::error::Error;
use ssdep_core::fingerprint::fingerprint_pair;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::workload::Workload;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A stable identity for a `(design, workload)` preparation input.
///
/// The hash is FNV-1a over a structural walk of the design's fields, a
/// separator byte, and a walk of the workload's fields (see
/// [`ssdep_core::fingerprint`] for the framing rules). Structure — not
/// memory identity — is what keys the cache, so two independently
/// constructed but structurally identical candidates collapse onto one
/// preparation. Anything *not* walked (business requirements, the
/// scenario catalog) never invalidates a cached artifact, because
/// preparation does not depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |acc, byte| {
        (acc ^ u64::from(*byte)).wrapping_mul(FNV_PRIME)
    })
}

impl Fingerprint {
    /// Fingerprints a `(design, workload)` pair.
    ///
    /// # Errors
    ///
    /// Infallible today (the structural walk cannot fail); the `Result`
    /// is kept so callers that stored the serde-era signature need no
    /// change.
    pub fn of(design: &StorageDesign, workload: &Workload) -> Result<Fingerprint, Error> {
        Ok(Fingerprint::weigh(design, workload)?.0)
    }

    /// Fingerprints a `(design, workload)` pair and reports how many
    /// bytes the structural walk fed the hash — the byte-cost estimate
    /// the [`EvalEngine`] charges a cached entry against its budget.
    ///
    /// # Errors
    ///
    /// As [`Fingerprint::of`] (infallible today).
    pub fn weigh(
        design: &StorageDesign,
        workload: &Workload,
    ) -> Result<(Fingerprint, usize), Error> {
        let (hash, bytes) = fingerprint_pair(design, workload);
        Ok((Fingerprint(hash), bytes))
    }

    /// The serde-era fingerprint: FNV-1a over the canonical JSON of the
    /// pair. Kept as a sanctioned fallback off the hot path — the
    /// fingerprint-equivalence suite asserts the structural hash
    /// separates every pair this one does, so a regression in the
    /// structural walk is caught against this reference.
    ///
    /// # Errors
    ///
    /// Returns an invalid-parameter error if either value cannot be
    /// serialized (not expected for well-formed designs).
    pub fn of_serde(design: &StorageDesign, workload: &Workload) -> Result<Fingerprint, Error> {
        Ok(Fingerprint::weigh_serde(design, workload)?.0)
    }

    /// As [`Fingerprint::of_serde`], also reporting the serialized
    /// payload length (the serde-era weight estimate).
    ///
    /// # Errors
    ///
    /// As [`Fingerprint::of_serde`].
    pub fn weigh_serde(
        design: &StorageDesign,
        workload: &Workload,
    ) -> Result<(Fingerprint, usize), Error> {
        let design_json = serde_json::to_string(design) // ssdep-lint: allow(L013, serde fallback kept off the hot path as the equivalence reference)
            .map_err(|e| Error::invalid("design", format!("cannot fingerprint: {e}")))?;
        let workload_json = serde_json::to_string(workload) // ssdep-lint: allow(L013, serde fallback kept off the hot path as the equivalence reference)
            .map_err(|e| Error::invalid("workload", format!("cannot fingerprint: {e}")))?;
        let mut hash = fnv1a(FNV_OFFSET, design_json.as_bytes());
        hash = fnv1a(hash, &[0x1f]);
        hash = fnv1a(hash, workload_json.as_bytes());
        let weight = design_json.len() + 1 + workload_json.len();
        Ok((Fingerprint(hash), weight))
    }

    /// The raw 64-bit hash.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Runs `f` with this thread's reusable [`EvalScratch`]. Supervisor
/// workers and daemon handler threads are long-lived, so each amortizes
/// one scratch allocation across every candidate it evaluates — the
/// scored inner loop allocates nothing per candidate.
pub fn with_scratch<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<EvalScratch> =
            std::cell::RefCell::new(EvalScratch::new());
    }
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Tuning knobs for an [`EvalEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Byte budget for the memo cache, charged by each entry's
    /// serialized fingerprint payload (see [`Fingerprint::weigh`]).
    /// Least-recently-used entries are evicted when a shard overflows
    /// its share. Zero disables caching entirely (every call prepares
    /// afresh).
    pub cache_bytes: usize,
    /// Number of independent lock shards the cache is split across.
    /// Rounded up to a power of two, minimum 1. More shards mean less
    /// contention between concurrent workers and a finer-grained (per-
    /// shard) byte budget.
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            // Generous for batch runs (a case-study payload is a few
            // KiB), yet firmly bounded for a long-running daemon.
            cache_bytes: 8 * 1024 * 1024,
            shards: 8,
        }
    }
}

struct CacheEntry {
    prepared: Arc<PreparedDesign>,
    last_used: u64,
    weight: usize,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, CacheEntry>,
    /// LRU index: `last_used` stamp -> fingerprint key. Stamps are
    /// unique (the clock ticks once per touch), so eviction pops the
    /// smallest stamp in `O(log n)` instead of scanning every resident —
    /// the scan turned each insert into an `O(shard)` pass once an
    /// enumeration-scale run filled the budget.
    order: BTreeMap<u64, u64>,
    clock: u64,
    bytes: usize,
}

/// One in-flight preparation, shared between the leader doing the work
/// and the followers parked on the condvar.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Preparing,
    /// `None` means the leader's preparation errored; followers retry
    /// from the top so each observes the (deterministic) error itself.
    Done(Option<Arc<PreparedDesign>>),
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Preparing),
            done: Condvar::new(),
        }
    }

    fn wait(&self) -> Option<Arc<PreparedDesign>> {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            match &*state {
                FlightState::Done(result) => return result.clone(),
                FlightState::Preparing => {
                    state = match self.done.wait(state) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }

    fn resolve(&self, result: Option<Arc<PreparedDesign>>) {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *state = FlightState::Done(result);
        drop(state);
        self.done.notify_all();
    }
}

/// A memo cache of scenario-independent preparation artifacts, shared
/// across the evaluations of a batch run or the requests of a daemon.
///
/// Thread-safe: the cache is split into power-of-two lock shards keyed
/// by fingerprint, and the counters are atomic, so one engine can serve
/// all of a supervisor's worker threads (or all of a server's handler
/// threads) without funnelling them through a single mutex. Concurrent
/// misses on the same fingerprint prepare exactly once: the first
/// claimant leads the flight, the rest wait and share its artifact
/// (counted in [`EvalEngine::cache_dedup_waits`]).
pub struct EvalEngine {
    config: EngineConfig,
    shards: Vec<Mutex<Shard>>,
    /// In-flight preparations, sharded like `shards` but behind their
    /// own locks so flight bookkeeping never contends with cache
    /// lookups (and no lock is ever taken while another is held).
    pending: Vec<Mutex<HashMap<u64, Arc<Flight>>>>,
    /// Per-shard byte budget: `cache_bytes / shards.len()`, at least 1
    /// so a nonzero budget never rounds down to "cache nothing".
    shard_budget: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    bytes: AtomicUsize,
    dedup_waits: AtomicUsize,
}

impl fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalEngine")
            .field("cache_bytes", &self.config.cache_bytes)
            .field("shards", &self.shards.len())
            .field("cached", &self.cached_designs())
            .field("resident_bytes", &self.cached_bytes())
            .field("hits", &self.cache_hits())
            .field("misses", &self.cache_misses())
            .field("dedup_waits", &self.cache_dedup_waits())
            .finish()
    }
}

impl Default for EvalEngine {
    fn default() -> Self {
        EvalEngine::new(EngineConfig::default())
    }
}

impl EvalEngine {
    /// Builds an engine with the given configuration.
    pub fn new(config: EngineConfig) -> EvalEngine {
        let shards = config.shards.max(1).next_power_of_two();
        let shard_budget = (config.cache_bytes / shards).max(usize::from(config.cache_bytes > 0));
        EvalEngine {
            config,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            pending: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_budget,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            dedup_waits: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, Shard> {
        // Fingerprints are FNV-mixed, so the low bits index uniformly.
        let index = (key as usize) & (self.shards.len() - 1);
        // A worker that panicked mid-evaluation never holds this lock
        // (the cache is only touched between evaluations), but recover
        // from poisoning anyway rather than propagate a panic.
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn pending(&self, key: u64) -> MutexGuard<'_, HashMap<u64, Arc<Flight>>> {
        let index = (key as usize) & (self.pending.len() - 1);
        match self.pending[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Prepares `design` under `workload`, reusing a cached artifact when
    /// an identical pair was prepared before. Concurrent misses on one
    /// fingerprint are single-flighted: exactly one caller prepares, the
    /// rest wait for (and share) its artifact.
    ///
    /// # Errors
    ///
    /// As [`PreparedDesign::prepare`] (demand-model errors).
    pub fn prepare(
        &self,
        design: &StorageDesign,
        workload: &Workload,
    ) -> Result<Arc<PreparedDesign>, Error> {
        if self.config.cache_bytes == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(PreparedDesign::prepare(design, workload)?));
        }
        let (fingerprint, weight) = Fingerprint::weigh(design, workload)?;
        let key = fingerprint.value();
        loop {
            {
                let mut guard = self.shard(key);
                let shard = &mut *guard;
                shard.clock += 1;
                let stamp = shard.clock;
                if let Some(entry) = shard.entries.get_mut(&key) {
                    shard.order.remove(&entry.last_used);
                    shard.order.insert(stamp, key);
                    entry.last_used = stamp;
                    let prepared = Arc::clone(&entry.prepared);
                    drop(guard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(prepared);
                }
            }
            // Miss: lead a new flight, or follow one already in the air.
            let flight = {
                let mut pending = self.pending(key);
                match pending.entry(key) {
                    Entry::Occupied(in_flight) => {
                        let flight = Arc::clone(in_flight.get());
                        drop(pending);
                        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                        match flight.wait() {
                            Some(prepared) => {
                                self.hits.fetch_add(1, Ordering::Relaxed);
                                return Ok(prepared);
                            }
                            // The leader errored; retry so this caller
                            // observes the error (or a fresh success)
                            // itself.
                            None => continue,
                        }
                    }
                    Entry::Vacant(slot) => {
                        let flight = Arc::new(Flight::new());
                        slot.insert(Arc::clone(&flight));
                        flight
                    }
                }
            };
            self.misses.fetch_add(1, Ordering::Relaxed);
            let result = PreparedDesign::prepare(design, workload).map(Arc::new);
            if let Ok(prepared) = &result {
                self.cache_insert(key, weight, prepared);
            }
            // Land the flight only after the cache insert, so a follower
            // that loops (rather than waits) still finds the artifact.
            self.pending(key).remove(&key);
            flight.resolve(result.as_ref().ok().map(Arc::clone));
            return result;
        }
    }

    /// Inserts a freshly prepared artifact, charging its weight against
    /// the shard budget and evicting least-recently-used residents to
    /// make room. Oversized artifacts (heavier than a whole shard) are
    /// skipped: caching one would only evict everything else and then be
    /// evicted itself.
    fn cache_insert(&self, key: u64, weight: usize, prepared: &Arc<PreparedDesign>) {
        if weight > self.shard_budget {
            return;
        }
        let mut guard = self.shard(key);
        let shard = &mut *guard;
        shard.clock += 1;
        let stamp = shard.clock;
        let mut freed = 0usize;
        if let Some(previous) = shard.entries.insert(
            key,
            CacheEntry {
                prepared: Arc::clone(prepared),
                last_used: stamp,
                weight,
            },
        ) {
            // Single-flight makes a same-key resident unlikely (the
            // leader checked the cache first), but an entry inserted
            // between our miss and this insert is replaced harmlessly:
            // the artifacts are identical, so only accounting changes.
            shard.order.remove(&previous.last_used);
            freed += previous.weight;
        }
        shard.order.insert(stamp, key);
        shard.bytes = shard.bytes + weight - freed;
        while shard.bytes > self.shard_budget {
            // The entry just inserted carries the freshest stamp, so the
            // oldest stamp in the index is always an older resident.
            let Some((_, evict)) = shard.order.pop_first() else {
                break;
            };
            if let Some(entry) = shard.entries.remove(&evict) {
                shard.bytes -= entry.weight;
                freed += entry.weight;
            }
        }
        drop(guard);
        let charged = weight.saturating_sub(freed);
        if charged > 0 {
            self.bytes.fetch_add(charged, Ordering::Relaxed);
        } else {
            self.bytes.fetch_sub(freed - weight, Ordering::Relaxed);
        }
    }

    /// Frequency-weighted expected annual cost, routed through the memo
    /// cache. Results (including error cases and their ordering) are
    /// identical to [`expected_annual_cost`].
    ///
    /// # Errors
    ///
    /// As [`expected_annual_cost`].
    pub fn expected_annual_cost(
        &self,
        design: &StorageDesign,
        workload: &Workload,
        requirements: &BusinessRequirements,
        scenarios: &[WeightedScenario],
    ) -> Result<ExpectedCost, Error> {
        // The single-shot path short-circuits an empty catalog and
        // validates the first scenario's frequency *before* preparing;
        // defer to it in those cases so error ordering stays identical.
        let Some(first) = scenarios.first() else {
            return expected_annual_cost(design, workload, requirements, scenarios);
        };
        if !(first.annual_frequency >= 0.0 && first.annual_frequency.is_finite()) {
            return expected_annual_cost(design, workload, requirements, scenarios);
        }
        let prepared = self.prepare(design, workload)?;
        expected_annual_cost_prepared(&prepared, requirements, scenarios)
    }

    /// Frequency-weighted expected summary — the allocation-free scored
    /// twin of [`EvalEngine::expected_annual_cost`]. Routes preparation
    /// through the memo cache and folds every scenario through the
    /// reusable `scratch` buffers, so a sweep's inner loop allocates
    /// nothing per candidate. Errors (including their ordering) are
    /// identical to the report path.
    ///
    /// # Errors
    ///
    /// As [`EvalEngine::expected_annual_cost`].
    pub fn expected_summary(
        &self,
        design: &StorageDesign,
        workload: &Workload,
        requirements: &BusinessRequirements,
        scenarios: &[WeightedScenario],
        scratch: &mut EvalScratch,
    ) -> Result<ExpectedSummary, Error> {
        let Some(first) = scenarios.first() else {
            return Ok(ExpectedSummary::empty());
        };
        // The report path validates the first frequency *before*
        // preparing; mirror that so error ordering stays identical.
        check_frequency(0, first)?;
        let prepared = self.prepare(design, workload)?;
        ssdep_core::analysis::expected_summary(&prepared, requirements, scenarios, scratch)
    }

    /// Number of cache hits so far.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (fresh preparations attempted) so far.
    pub fn cache_misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of times a caller waited on another caller's in-flight
    /// preparation instead of preparing the same pair itself (the
    /// single-flight dedup counter; such waits are also counted as
    /// hits).
    pub fn cache_dedup_waits(&self) -> usize {
        self.dedup_waits.load(Ordering::Relaxed)
    }

    /// Number of prepared designs currently cached, across all shards.
    pub fn cached_designs(&self) -> usize {
        (0..self.shards.len())
            .map(|i| match self.shards[i].lock() {
                Ok(guard) => guard.entries.len(),
                Err(poisoned) => poisoned.into_inner().entries.len(),
            })
            .sum()
    }

    /// Estimated resident bytes currently cached (the sum of every
    /// entry's serialized fingerprint payload), across all shards.
    pub fn cached_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdep_core::presets;

    fn catalog() -> Vec<WeightedScenario> {
        use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
        vec![
            WeightedScenario::new(
                FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
                0.1,
            ),
            WeightedScenario::new(
                FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
                0.02,
            ),
        ]
    }

    fn weight_of(design: &StorageDesign, workload: &Workload) -> usize {
        Fingerprint::weigh(design, workload).unwrap().1
    }

    #[test]
    fn identical_inputs_share_one_preparation() {
        let engine = EvalEngine::default();
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        let first = engine.prepare(&design, &workload).unwrap();
        // A structurally identical but independently built design hits.
        let second = engine.prepare(&design.clone(), &workload).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(engine.cache_hits(), 1);
        assert_eq!(engine.cache_misses(), 1);
        assert_eq!(engine.cached_bytes(), weight_of(&design, &workload));
    }

    #[test]
    fn distinct_inputs_miss() {
        let engine = EvalEngine::default();
        let workload = presets::cello_workload();
        engine
            .prepare(&presets::baseline_design(), &workload)
            .unwrap();
        engine
            .prepare(&presets::async_batch_mirror_design(10), &workload)
            .unwrap();
        assert_eq!(engine.cache_hits(), 0);
        assert_eq!(engine.cache_misses(), 2);
        // A changed workload also misses, even with the same design.
        engine
            .prepare(&presets::baseline_design(), &workload.scaled(2.0).unwrap())
            .unwrap();
        assert_eq!(engine.cache_misses(), 3);
        assert_eq!(engine.cached_designs(), 3);
    }

    #[test]
    fn engine_costs_match_the_single_shot_path() {
        let engine = EvalEngine::default();
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        let requirements = presets::paper_requirements();
        let scenarios = catalog();
        let single = expected_annual_cost(&design, &workload, &requirements, &scenarios).unwrap();
        let routed = engine
            .expected_annual_cost(&design, &workload, &requirements, &scenarios)
            .unwrap();
        let again = engine
            .expected_annual_cost(&design, &workload, &requirements, &scenarios)
            .unwrap();
        let single_json = serde_json::to_string(&single).unwrap();
        assert_eq!(serde_json::to_string(&routed).unwrap(), single_json);
        assert_eq!(serde_json::to_string(&again).unwrap(), single_json);
        assert_eq!(engine.cache_hits(), 1);
    }

    #[test]
    fn engine_errors_match_the_single_shot_path() {
        let engine = EvalEngine::default();
        let workload = presets::cello_workload().scaled(4.0).unwrap();
        let design = presets::baseline_design();
        let requirements = presets::paper_requirements();
        let scenarios = catalog();
        let single = expected_annual_cost(&design, &workload, &requirements, &scenarios)
            .unwrap_err()
            .to_string();
        let routed = engine
            .expected_annual_cost(&design, &workload, &requirements, &scenarios)
            .unwrap_err()
            .to_string();
        assert_eq!(routed, single);

        // A bad leading frequency is rejected before any preparation.
        let mut bad = catalog();
        bad[0].annual_frequency = f64::NAN;
        let misses = engine.cache_misses();
        let err = engine
            .expected_annual_cost(&design, &workload, &requirements, &bad)
            .unwrap_err();
        assert!(err.to_string().contains("scenarios[0].annualFrequency"));
        assert_eq!(engine.cache_misses(), misses);
    }

    #[test]
    fn the_cache_is_byte_bounded_and_evicts_least_recently_used() {
        let workload = presets::cello_workload();
        let a = presets::async_batch_mirror_design(1);
        let b = presets::async_batch_mirror_design(2);
        let c = presets::async_batch_mirror_design(4);
        // Room for exactly two of the three structurally similar
        // designs; one shard so they all share a budget.
        let two = weight_of(&a, &workload) + weight_of(&b, &workload);
        let engine = EvalEngine::new(EngineConfig {
            cache_bytes: two,
            shards: 1,
        });
        engine.prepare(&a, &workload).unwrap();
        engine.prepare(&b, &workload).unwrap();
        engine.prepare(&a, &workload).unwrap(); // refresh a; b is now LRU
        engine.prepare(&c, &workload).unwrap(); // evicts b
        assert_eq!(engine.cached_designs(), 2);
        assert!(engine.cached_bytes() <= two);
        engine.prepare(&a, &workload).unwrap();
        assert_eq!(engine.cache_hits(), 2);
        engine.prepare(&b, &workload).unwrap(); // must re-prepare
        assert_eq!(engine.cache_misses(), 4);
    }

    #[test]
    fn an_oversized_artifact_is_served_uncached() {
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        let engine = EvalEngine::new(EngineConfig {
            cache_bytes: weight_of(&design, &workload) - 1,
            shards: 1,
        });
        engine.prepare(&design, &workload).unwrap();
        engine.prepare(&design, &workload).unwrap();
        assert_eq!(engine.cache_hits(), 0, "nothing fits, so nothing hits");
        assert_eq!(engine.cached_designs(), 0);
        assert_eq!(engine.cached_bytes(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let engine = EvalEngine::new(EngineConfig {
            cache_bytes: 0,
            shards: 4,
        });
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        engine.prepare(&design, &workload).unwrap();
        engine.prepare(&design, &workload).unwrap();
        assert_eq!(engine.cache_hits(), 0);
        assert_eq!(engine.cache_misses(), 2);
        assert_eq!(engine.cached_designs(), 0);
        assert_eq!(engine.cached_bytes(), 0);
    }

    #[test]
    fn concurrent_workers_agree_on_the_accounting() {
        let engine = Arc::new(EvalEngine::default());
        let workload = presets::cello_workload();
        let designs: Vec<StorageDesign> = (1..=4).map(presets::async_batch_mirror_design).collect();
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let engine = Arc::clone(&engine);
                let workload = workload.clone();
                let designs = designs.clone();
                scope.spawn(move || {
                    for round in 0..8usize {
                        let design = &designs[(worker + round) % designs.len()];
                        engine.prepare(design, &workload).unwrap();
                    }
                });
            }
        });
        assert_eq!(engine.cache_hits() + engine.cache_misses(), 32);
        assert_eq!(engine.cached_designs(), 4);
        let expected: usize = designs.iter().map(|d| weight_of(d, &workload)).sum();
        assert_eq!(engine.cached_bytes(), expected);
    }

    #[test]
    fn fingerprints_are_stable_and_input_sensitive() {
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        let fp1 = Fingerprint::of(&design, &workload).unwrap();
        let fp2 = Fingerprint::of(&design.clone(), &workload).unwrap();
        assert_eq!(fp1, fp2);
        assert_eq!(format!("{fp1}").len(), 16);
        let other = Fingerprint::of(&presets::async_batch_mirror_design(10), &workload).unwrap();
        assert_ne!(fp1, other);
        let scaled = Fingerprint::of(&design, &workload.scaled(2.0).unwrap()).unwrap();
        assert_ne!(fp1, scaled);
        // The weight is the serialized payload length, stable across
        // structurally identical values.
        let (fp3, weight) = Fingerprint::weigh(&design, &workload).unwrap();
        assert_eq!(fp1, fp3);
        assert!(weight > 2);
        assert_eq!(weight, Fingerprint::weigh(&design, &workload).unwrap().1);
    }

    #[test]
    fn the_serde_fallback_separates_what_the_structural_hash_does() {
        let workload = presets::cello_workload();
        let a = presets::baseline_design();
        let b = presets::async_batch_mirror_design(10);
        let serde_a = Fingerprint::of_serde(&a, &workload).unwrap();
        let serde_b = Fingerprint::of_serde(&b, &workload).unwrap();
        assert_ne!(serde_a, serde_b);
        assert_eq!(
            serde_a,
            Fingerprint::of_serde(&a.clone(), &workload).unwrap()
        );
    }

    #[test]
    fn racing_misses_prepare_once() {
        let engine = Arc::new(EvalEngine::default());
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        std::thread::scope(|scope| {
            for _ in 0..8usize {
                let engine = Arc::clone(&engine);
                let workload = workload.clone();
                let design = design.clone();
                scope.spawn(move || {
                    engine.prepare(&design, &workload).unwrap();
                });
            }
        });
        // Whether the racers overlapped (flight followers) or serialized
        // (plain cache hits), single-flight guarantees one preparation.
        assert_eq!(engine.cache_misses(), 1);
        assert_eq!(engine.cache_hits(), 7);
        assert!(engine.cache_dedup_waits() <= 7);
        assert_eq!(engine.cached_designs(), 1);
    }

    #[test]
    fn engine_scored_summary_matches_the_expected_cost_fold() {
        let engine = EvalEngine::default();
        let workload = presets::cello_workload();
        let design = presets::baseline_design();
        let requirements = presets::paper_requirements();
        let scenarios = catalog();
        let mut scratch = EvalScratch::new();
        let summary = engine
            .expected_summary(&design, &workload, &requirements, &scenarios, &mut scratch)
            .unwrap();
        let cost = engine
            .expected_annual_cost(&design, &workload, &requirements, &scenarios)
            .unwrap();
        assert_eq!(summary.outlays, cost.outlays);
        assert_eq!(summary.expected_penalties, cost.expected_penalties);
        assert_eq!(summary.total(), cost.total());
        assert_eq!(summary.evaluations, cost.evaluations.len());

        let empty = engine
            .expected_summary(&design, &workload, &requirements, &[], &mut scratch)
            .unwrap();
        assert_eq!(empty.evaluations, 0);

        // A bad leading frequency is rejected before any preparation,
        // exactly like the report path.
        let mut bad = catalog();
        bad[0].annual_frequency = -1.0;
        let misses = engine.cache_misses();
        let err = engine
            .expected_summary(&design, &workload, &requirements, &bad, &mut scratch)
            .unwrap_err();
        assert!(err.to_string().contains("scenarios[0].annualFrequency"));
        assert_eq!(engine.cache_misses(), misses);
    }
}

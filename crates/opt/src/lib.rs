//! # ssdep-opt — automated storage-design exploration
//!
//! The paper positions its evaluation framework as "the inner-most loop
//! of an automated optimization loop to choose the best solution for a
//! given set of business requirements" (§1, and its companion work,
//! *Designing for disasters*, FAST '04). This crate supplies that loop:
//!
//! * [`space`] — a parameterized candidate space: point-in-time, backup,
//!   vaulting, and mirroring policy choices over the case study's device
//!   palette, materialized into concrete
//!   [`StorageDesign`](ssdep_core::hierarchy::StorageDesign)s;
//! * [`search`] — exhaustive enumeration (ranked by frequency-weighted
//!   expected annual cost) and a coordinate-descent hill climber that
//!   reaches comparable answers with a fraction of the evaluations;
//! * [`pareto`] — the outlay-versus-penalty (and RTO/RPO) frontier, for
//!   when the decision is a trade-off rather than one number;
//! * [`supervisor`] + [`journal`] — a crash-tolerant batch engine that
//!   runs sweeps and searches with panic isolation, per-task deadlines,
//!   transient-failure retries, optional parallel workers, and an
//!   append-only checkpoint journal so a killed run resumes without
//!   repeating completed evaluations;
//! * [`engine`] — the staged-evaluation layer: a fingerprint-keyed memo
//!   cache of scenario-independent
//!   [`PreparedDesign`](ssdep_core::analysis::PreparedDesign) artifacts
//!   shared across a batch, so structurally identical candidates prepare
//!   once.
//!
//! ```
//! use ssdep_opt::space::DesignSpace;
//! use ssdep_opt::search;
//!
//! # fn main() -> Result<(), ssdep_core::Error> {
//! let workload = ssdep_core::presets::cello_workload();
//! let requirements = ssdep_core::presets::paper_requirements();
//! let scenarios = search::paper_scenarios();
//! let space = DesignSpace::minimal();
//! let result = search::exhaustive(&space, &workload, &requirements, &scenarios)?;
//! assert!(!result.ranked.is_empty());
//! // The cheapest feasible candidate comes first.
//! assert!(result.ranked[0].expected_total <= result.ranked.last().unwrap().expected_total);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod journal;
pub mod pareto;
pub mod search;
pub mod sink;
pub mod space;
pub mod supervisor;
pub mod sweep;

pub use engine::{EngineConfig, EvalEngine, Fingerprint};
pub use journal::{
    inspect_journal, read_journal, salvage_journal, InspectReport, JournalWriter, SalvageReport,
};
pub use search::{
    exhaustive, hill_climb, hill_climb_with_engine, supervised_exhaustive, CandidateOutcome,
    SearchResult, SupervisedSearchResult,
};
pub use sink::{FaultKind, FaultySink, FileSink, IoFaultPlan, JournalSink};
pub use space::{Candidate, DesignSpace};
pub use supervisor::{
    FailedOutcome, FailureKind, Provenance, SupervisedRun, Supervisor, SupervisorConfig,
};
pub use sweep::{sweep, SweepPoint, SweepSeries};

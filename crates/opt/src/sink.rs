//! Byte sinks under the checkpoint journal, including deterministic
//! storage-fault injection.
//!
//! The journal's crash-consistency contract ("a prefix of the
//! uninterrupted journal plus at most one torn line") only holds if the
//! byte layer cooperates: each record must land in one append, a failed
//! append must not leave half a record *in front of* the retried copy,
//! and durability is whatever `fsync` says it is. [`JournalSink`] is
//! that byte layer as a seam:
//!
//! * [`FileSink`] — the real thing: an append-mode file that tracks the
//!   last known-good length so a failed append can be
//!   [rolled back](JournalSink::rollback) before a retry;
//! * [`FaultySink`] — the same interface with storage faults injected on
//!   a deterministic, seeded schedule ([`IoFaultPlan`]): EIO on the nth
//!   append, persistent ENOSPC, short writes that leave a torn prefix,
//!   and fsync failures. The faults this framework *models* become
//!   faults its own journal can be *tested against*, from library code,
//!   with no platform hooks.
//!
//! The free function [`flip_bits_in_file`] covers the read side: seeded
//! bit rot for corruption and salvage tests.

use ssdep_core::error::Error;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An append-only byte sink a [`JournalWriter`](crate::journal::JournalWriter)
/// writes framed records through.
///
/// The contract the journal relies on:
///
/// * [`append`](JournalSink::append) writes the whole buffer or reports
///   an error; after an error the sink may hold a partial suffix;
/// * [`rollback`](JournalSink::rollback) discards any bytes appended
///   since the last successful append, so a retry cannot concatenate a
///   torn fragment with the retried record (which would corrupt the
///   *middle* of the journal instead of its tail);
/// * [`sync`](JournalSink::sync) makes every successful append durable.
pub trait JournalSink: std::fmt::Debug + Send {
    /// Appends one framed record (a full line, newline included).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure; a partial write errors.
    fn append(&mut self, line: &[u8]) -> io::Result<()>;

    /// Forces every successful append to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates flush or fsync failures.
    fn sync(&mut self) -> io::Result<()>;

    /// Discards any partially-appended bytes from a failed
    /// [`append`](JournalSink::append), restoring the sink to its last
    /// consistent length.
    ///
    /// # Errors
    ///
    /// Propagates the truncation failure — the caller must then stop
    /// writing, leaving the torn bytes at the tail where readers
    /// tolerate them.
    fn rollback(&mut self) -> io::Result<()>;

    /// A human-readable description of where the bytes go.
    fn describe(&self) -> String;

    /// Writes `fragment` *without* advancing the rollback point — the
    /// torn half of a simulated partial write, which the next
    /// [`rollback`](JournalSink::rollback) must remove. Fault injection
    /// uses this; sinks without physical storage may drop the fragment.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn tear(&mut self, _fragment: &[u8]) -> io::Result<()> {
        Ok(())
    }
}

/// The production [`JournalSink`]: an append-mode file with
/// known-good-length tracking for rollback.
///
/// Appends go through one `write_all` per record on a raw (unbuffered)
/// handle, so a record is either fully handed to the OS or the failure
/// is reported while the file still ends at a record boundary plus at
/// most the torn fragment [`rollback`](JournalSink::rollback) removes.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    file: File,
    /// Length of the file after the last successful append — the
    /// rollback point.
    committed: u64,
}

impl FileSink {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates open and metadata failures.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileSink> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let committed = file.metadata()?.len();
        Ok(FileSink {
            path,
            file,
            committed,
        })
    }
}

/// A sink that discards everything. Placeholder for swapping a real
/// sink out of a structure (e.g. to wrap it in a [`FaultySink`]); also
/// handy for tests that want journaling side effects without a file.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl JournalSink for NullSink {
    fn append(&mut self, _line: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn rollback(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn describe(&self) -> String {
        "null".to_string()
    }
}

impl JournalSink for Box<dyn JournalSink> {
    fn append(&mut self, line: &[u8]) -> io::Result<()> {
        (**self).append(line)
    }

    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }

    fn rollback(&mut self) -> io::Result<()> {
        (**self).rollback()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn tear(&mut self, fragment: &[u8]) -> io::Result<()> {
        (**self).tear(fragment)
    }
}

impl JournalSink for FileSink {
    fn append(&mut self, line: &[u8]) -> io::Result<()> {
        self.file.write_all(line)?;
        self.committed += line.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn rollback(&mut self) -> io::Result<()> {
        self.file.set_len(self.committed)?;
        // O_APPEND repositions every write at the end, but keep the
        // logical cursor honest for any future non-append use.
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    fn describe(&self) -> String {
        format!("file `{}`", self.path.display())
    }

    fn tear(&mut self, fragment: &[u8]) -> io::Result<()> {
        // Deliberately leaves `committed` alone: these bytes are the
        // torn fragment rollback is expected to truncate away.
        self.file.write_all(fragment)
    }
}

/// Which storage fault an [`IoFaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The nth append fails with EIO *once*; the retry succeeds. Models
    /// a transient medium error.
    AppendEio,
    /// Every append from the nth on fails with ENOSPC. Models a full
    /// disk: retries cannot clear it, the run must degrade.
    AppendEnospc,
    /// The nth append writes a seeded prefix of the record, then fails
    /// once. Models a torn write the rollback path must clean up.
    ShortWrite,
    /// The nth sync fails with EIO once.
    SyncEio,
    /// Every sync from the nth on fails with ENOSPC.
    SyncEnospc,
}

/// A deterministic storage-fault schedule for [`FaultySink`].
///
/// `at` is the 1-based ordinal of the append (or sync, for the sync
/// kinds) the fault first strikes; `seed` drives the LCG that picks
/// short-write lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Which fault to inject.
    pub kind: FaultKind,
    /// 1-based operation ordinal the fault first strikes.
    pub at: usize,
    /// Seed for fault-shape randomness (short-write lengths).
    pub seed: u64,
}

impl IoFaultPlan {
    /// A plan injecting `kind` at operation `at`, seeded by `at`.
    pub fn new(kind: FaultKind, at: usize) -> IoFaultPlan {
        IoFaultPlan {
            kind,
            at,
            seed: at as u64,
        }
    }

    /// Parses the `SSDEP_JOURNAL_FAULT` environment format:
    /// `eio@N`, `enospc@N`, `short@N`, `sync-eio@N`, or `sync-enospc@N`,
    /// with an optional trailing `@SEED`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown kinds or
    /// unparsable ordinals.
    pub fn parse(text: &str) -> Result<IoFaultPlan, Error> {
        let bad = |why: &str| {
            Error::invalid(
                "journal.fault_plan",
                format!("`{text}`: {why} (expected kind@N[@seed] with kind one of eio, enospc, short, sync-eio, sync-enospc)"),
            )
        };
        let mut parts = text.split('@');
        let kind = match parts.next().unwrap_or("") {
            "eio" => FaultKind::AppendEio,
            "enospc" => FaultKind::AppendEnospc,
            "short" => FaultKind::ShortWrite,
            "sync-eio" => FaultKind::SyncEio,
            "sync-enospc" => FaultKind::SyncEnospc,
            _ => return Err(bad("unknown fault kind")),
        };
        let at: usize = parts
            .next()
            .ok_or_else(|| bad("missing operation ordinal"))?
            .parse()
            .map_err(|_| bad("operation ordinal is not a number"))?;
        if at == 0 {
            return Err(bad("operation ordinal is 1-based"));
        }
        let seed = match parts.next() {
            Some(seed) => seed.parse().map_err(|_| bad("seed is not a number"))?,
            None => at as u64,
        };
        if parts.next().is_some() {
            return Err(bad("too many `@` fields"));
        }
        Ok(IoFaultPlan { kind, at, seed })
    }
}

/// A [`JournalSink`] that injects the faults of an [`IoFaultPlan`] into
/// an inner sink on a deterministic schedule.
#[derive(Debug)]
pub struct FaultySink<S> {
    inner: S,
    plan: IoFaultPlan,
    appends: usize,
    syncs: usize,
    /// Whether a single-shot fault has already fired.
    fired: bool,
    rng: Lcg,
}

impl<S: JournalSink> FaultySink<S> {
    /// Wraps `inner` with the fault schedule of `plan`.
    pub fn new(inner: S, plan: IoFaultPlan) -> FaultySink<S> {
        FaultySink {
            inner,
            plan,
            appends: 0,
            syncs: 0,
            fired: false,
            rng: Lcg::new(plan.seed),
        }
    }

    fn injected(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected {what} (fault plan {:?})", self.plan.kind))
    }
}

impl<S: JournalSink> JournalSink for FaultySink<S> {
    fn append(&mut self, line: &[u8]) -> io::Result<()> {
        self.appends += 1;
        match self.plan.kind {
            FaultKind::AppendEio if self.appends == self.plan.at && !self.fired => {
                self.fired = true;
                return Err(self.injected("EIO"));
            }
            FaultKind::AppendEnospc if self.appends >= self.plan.at => {
                return Err(self.injected("ENOSPC: no space left on device"));
            }
            FaultKind::ShortWrite if self.appends == self.plan.at && !self.fired => {
                self.fired = true;
                // Write a strict, seeded prefix, then fail — the torn
                // fragment is exactly what rollback must remove.
                let keep = (self.rng.below(line.len().max(1) as u64)) as usize;
                self.inner.tear(&line[..keep])?;
                return Err(self.injected("short write"));
            }
            _ => {}
        }
        self.inner.append(line)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.syncs += 1;
        match self.plan.kind {
            FaultKind::SyncEio if self.syncs == self.plan.at && !self.fired => {
                self.fired = true;
                return Err(self.injected("EIO during fsync"));
            }
            FaultKind::SyncEnospc if self.syncs >= self.plan.at => {
                return Err(self.injected("ENOSPC during fsync"));
            }
            _ => {}
        }
        self.inner.sync()
    }

    fn rollback(&mut self) -> io::Result<()> {
        self.inner.rollback()
    }

    fn describe(&self) -> String {
        format!(
            "{} with injected faults {:?}",
            self.inner.describe(),
            self.plan
        )
    }

    fn tear(&mut self, fragment: &[u8]) -> io::Result<()> {
        self.inner.tear(fragment)
    }
}

/// A deterministic linear congruential generator for fault shapes and
/// chaos schedules — seeded, portable, and dependency-free.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// A generator over Knuth's MMIX constants.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    /// The next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// A value in `0..bound` (`0` when `bound` is `0`). The high bits
    /// carry the quality in an LCG, so fold them in before reducing.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let raw = self.next_u64();
        (raw ^ (raw >> 32)) % bound
    }
}

/// Flips `flips` seeded bit positions in the file at `path` and returns
/// the flipped byte offsets — read-side bit rot for corruption tests.
///
/// # Errors
///
/// Returns [`Error::Io`] on read or write failures.
pub fn flip_bits_in_file(
    path: impl AsRef<Path>,
    seed: u64,
    flips: usize,
) -> Result<Vec<u64>, Error> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| Error::io_at("bit-flip read", path, e.to_string()))?;
    let mut rng = Lcg::new(seed);
    let mut offsets = Vec::with_capacity(flips);
    if !bytes.is_empty() {
        for _ in 0..flips {
            let offset = rng.below(bytes.len() as u64);
            let bit = rng.below(8) as u32;
            bytes[offset as usize] ^= 1 << bit;
            offsets.push(offset);
        }
    }
    std::fs::write(path, &bytes)
        .map_err(|e| Error::io_at("bit-flip write", path, e.to_string()))?;
    Ok(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ssdep-sink-{name}-{}.bin", std::process::id()))
    }

    #[test]
    fn file_sink_rolls_back_to_the_last_committed_length() {
        let path = temp("rollback");
        std::fs::remove_file(&path).ok();
        let mut sink = FileSink::open(&path).unwrap();
        sink.append(b"first line\n").unwrap();
        // Simulate a torn append by writing behind the sink's back.
        {
            let mut raw = OpenOptions::new().append(true).open(&path).unwrap();
            raw.write_all(b"torn fragm").unwrap();
        }
        sink.rollback().unwrap();
        sink.append(b"second line\n").unwrap();
        sink.sync().unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"first line\nsecond line\n".to_vec()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eio_fires_once_and_the_retry_succeeds() {
        let path = temp("eio");
        std::fs::remove_file(&path).ok();
        let inner = FileSink::open(&path).unwrap();
        let mut sink = FaultySink::new(inner, IoFaultPlan::new(FaultKind::AppendEio, 2));
        sink.append(b"a\n").unwrap();
        let err = sink.append(b"b\n").unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
        sink.rollback().unwrap();
        sink.append(b"b\n").unwrap();
        sink.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"a\nb\n".to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enospc_is_persistent() {
        let path = temp("enospc");
        std::fs::remove_file(&path).ok();
        let inner = FileSink::open(&path).unwrap();
        let mut sink = FaultySink::new(inner, IoFaultPlan::new(FaultKind::AppendEnospc, 2));
        sink.append(b"a\n").unwrap();
        for _ in 0..4 {
            let err = sink.append(b"b\n").unwrap_err();
            assert!(err.to_string().contains("ENOSPC"), "{err}");
            sink.rollback().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"a\n".to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_leaves_a_strict_prefix_and_rollback_removes_it() {
        let path = temp("short");
        std::fs::remove_file(&path).ok();
        let inner = FileSink::open(&path).unwrap();
        let mut sink = FaultySink::new(inner, IoFaultPlan::new(FaultKind::ShortWrite, 1));
        let line = b"a fairly long journal record line\n";
        let err = sink.append(line).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        let torn = std::fs::read(&path).unwrap();
        assert!(torn.len() < line.len(), "must be a strict prefix");
        assert_eq!(&line[..torn.len()], &torn[..]);
        sink.rollback().unwrap();
        sink.append(line).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), line.to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_plans_parse_and_reject() {
        assert_eq!(
            IoFaultPlan::parse("eio@3").unwrap(),
            IoFaultPlan {
                kind: FaultKind::AppendEio,
                at: 3,
                seed: 3
            }
        );
        assert_eq!(
            IoFaultPlan::parse("sync-enospc@2@77").unwrap(),
            IoFaultPlan {
                kind: FaultKind::SyncEnospc,
                at: 2,
                seed: 77
            }
        );
        for bad in ["", "eio", "eio@0", "eio@x", "flood@1", "eio@1@2@3"] {
            assert!(IoFaultPlan::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn bit_flips_are_deterministic_per_seed() {
        let path_a = temp("flip-a");
        let path_b = temp("flip-b");
        let payload = vec![0u8; 256];
        std::fs::write(&path_a, &payload).unwrap();
        std::fs::write(&path_b, &payload).unwrap();
        let flips_a = flip_bits_in_file(&path_a, 42, 5).unwrap();
        let flips_b = flip_bits_in_file(&path_b, 42, 5).unwrap();
        assert_eq!(flips_a, flips_b);
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap()
        );
        assert_ne!(std::fs::read(&path_a).unwrap(), payload, "bits flipped");
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }
}

//! One-dimensional parameter sweeps (sensitivity analysis / ablations).
//!
//! Sweeps answer "how does the outcome move as one design knob turns?" —
//! the series behind figures like "data loss vs. vaulting interval" or
//! "recovery time vs. link count". Each point evaluates a full design
//! under a scenario set, so a sweep is a row of what-if experiments with
//! a shared axis.

use serde::{Deserialize, Serialize};
use ssdep_core::analysis::{expected_annual_cost, WeightedScenario};
use ssdep_core::error::Error;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::units::{Money, TimeDelta};
use ssdep_core::workload::Workload;

/// One evaluated point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The design's label at this point.
    pub label: String,
    /// Annual outlays.
    pub outlays: Money,
    /// Frequency-weighted expected annual penalties.
    pub expected_penalties: Money,
    /// Expected total annual cost.
    pub expected_total: Money,
    /// Worst recovery time across the scenarios.
    pub worst_recovery_time: TimeDelta,
    /// Worst recent data loss across the scenarios.
    pub worst_data_loss: TimeDelta,
}

/// Evaluates `make(value)` for every value, producing the sweep series.
///
/// # Errors
///
/// Propagates design-construction and evaluation errors — a sweep with a
/// broken point is reported, not silently truncated.
pub fn sweep<F>(
    values: &[f64],
    make: F,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<Vec<SweepPoint>, Error>
where
    F: Fn(f64) -> Result<StorageDesign, Error>,
{
    let mut points = Vec::with_capacity(values.len());
    for &value in values {
        let design = make(value)?;
        let expected = expected_annual_cost(&design, workload, requirements, scenarios)?;
        let mut worst_recovery_time = TimeDelta::ZERO;
        let mut worst_data_loss = TimeDelta::ZERO;
        for (_, evaluation) in &expected.evaluations {
            worst_recovery_time = worst_recovery_time.max(evaluation.recovery.total_time);
            worst_data_loss = worst_data_loss.max(evaluation.loss.worst_loss);
        }
        points.push(SweepPoint {
            value,
            label: design.name().to_string(),
            outlays: expected.outlays,
            expected_penalties: expected.expected_penalties,
            expected_total: expected.total(),
            worst_recovery_time,
            worst_data_loss,
        });
    }
    Ok(points)
}

/// Sweep the number of WAN links in the batched-mirror design
/// (Table 7's 1-vs-10-links comparison as a full series).
///
/// # Errors
///
/// As [`sweep`].
pub fn sweep_mirror_links(
    links: &[u32],
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<Vec<SweepPoint>, Error> {
    let values: Vec<f64> = links.iter().map(|&l| l as f64).collect();
    sweep(
        &values,
        |value| Ok(ssdep_core::presets::async_batch_mirror_design(value as u32)),
        workload,
        requirements,
        scenarios,
    )
}

/// Sweep the vaulting interval (weeks) on the baseline design, keeping
/// three years of retention (the Table 7 "weekly vault" knob as a
/// series).
///
/// # Errors
///
/// As [`sweep`].
pub fn sweep_vault_interval(
    weeks: &[f64],
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<Vec<SweepPoint>, Error> {
    use crate::space::{BackupChoice, Candidate, MirrorChoice, PitChoice, VaultChoice};
    sweep(
        weeks,
        |weeks| {
            let retained = ((156.0 / weeks).round() as u32).max(2);
            Candidate {
                pit: PitChoice::SplitMirror { acc_hours: 12.0, retained: 4 },
                backup: BackupChoice::Fulls {
                    acc_hours: 168.0,
                    prop_hours: 48.0,
                    retained: 4,
                    daily_incrementals: 0,
                },
                vault: VaultChoice::Ship { acc_weeks: weeks, hold_hours: 12.0, retained },
                mirror: MirrorChoice::None,
            }
            .materialize()
        },
        workload,
        requirements,
        scenarios,
    )
}

/// Sweep the full-backup interval (hours) with matching four-week
/// retention — the weekly-vs-daily-fulls knob as a series.
///
/// # Errors
///
/// As [`sweep`].
pub fn sweep_backup_interval(
    hours: &[f64],
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<Vec<SweepPoint>, Error> {
    use crate::space::{BackupChoice, Candidate, MirrorChoice, PitChoice, VaultChoice};
    sweep(
        hours,
        |acc_hours| {
            let retained = ((672.0 / acc_hours).round() as u32).max(2);
            Candidate {
                pit: PitChoice::SplitMirror { acc_hours: 12.0, retained: 4 },
                backup: BackupChoice::Fulls {
                    acc_hours,
                    prop_hours: (acc_hours / 2.0).min(48.0),
                    retained,
                    daily_incrementals: 0,
                },
                vault: VaultChoice::Ship { acc_weeks: 1.0, hold_hours: 12.0, retained: 156 },
                mirror: MirrorChoice::None,
            }
            .materialize()
        },
        workload,
        requirements,
        scenarios,
    )
}

/// One point of a dataset-growth sweep: at `factor ×` today's workload,
/// either the evaluated outcome or why the design stops working.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GrowthPoint {
    /// The design still works at this growth factor.
    Feasible {
        /// The growth factor.
        factor: f64,
        /// The evaluated outcome.
        point: SweepPoint,
    },
    /// The design breaks at this growth factor (a device runs out of
    /// capacity or bandwidth).
    Infeasible {
        /// The growth factor.
        factor: f64,
        /// The feasibility error, rendered.
        reason: String,
    },
}

impl GrowthPoint {
    /// Whether the point is feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, GrowthPoint::Feasible { .. })
    }

    /// The growth factor.
    pub fn factor(&self) -> f64 {
        match self {
            GrowthPoint::Feasible { factor, .. } | GrowthPoint::Infeasible { factor, .. } => {
                *factor
            }
        }
    }
}

/// Sweeps dataset growth: evaluates the design against
/// [`Workload::scaled`] copies of the workload, answering "at what
/// growth does this design break, and what does it cost before then?".
/// Infeasible factors (overcommitted devices) become
/// [`GrowthPoint::Infeasible`] entries rather than errors.
///
/// # Errors
///
/// Propagates evaluation errors other than feasibility
/// ([`ssdep_core::Error::Overutilized`]).
pub fn sweep_growth(
    factors: &[f64],
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<Vec<GrowthPoint>, Error> {
    let mut points = Vec::with_capacity(factors.len());
    for &factor in factors {
        let grown = workload.scaled(factor)?;
        match expected_annual_cost(design, &grown, requirements, scenarios) {
            Ok(expected) => {
                let mut worst_recovery_time = TimeDelta::ZERO;
                let mut worst_data_loss = TimeDelta::ZERO;
                for (_, evaluation) in &expected.evaluations {
                    worst_recovery_time = worst_recovery_time.max(evaluation.recovery.total_time);
                    worst_data_loss = worst_data_loss.max(evaluation.loss.worst_loss);
                }
                points.push(GrowthPoint::Feasible {
                    factor,
                    point: SweepPoint {
                        value: factor,
                        label: design.name().to_string(),
                        outlays: expected.outlays,
                        expected_penalties: expected.expected_penalties,
                        expected_total: expected.total(),
                        worst_recovery_time,
                        worst_data_loss,
                    },
                });
            }
            Err(error @ Error::Overutilized { .. }) => {
                points.push(GrowthPoint::Infeasible { factor, reason: error.to_string() });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(points)
}

/// Renders a sweep as a fixed-width table for terminals and
/// EXPERIMENTS-style records.
pub fn render(points: &[SweepPoint], axis: &str) -> String {
    let mut table = ssdep_core::report::TextTable::new([
        axis,
        "Outlays",
        "E[penalties]",
        "E[total]",
        "Worst RT",
        "Worst DL",
    ]);
    for point in points {
        table.row([
            format!("{}", point.value),
            point.outlays.to_string(),
            point.expected_penalties.to_string(),
            point.expected_total.to_string(),
            format!("{:.1} hr", point.worst_recovery_time.as_hours()),
            format!("{:.1} hr", point.worst_data_loss.as_hours()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::paper_scenarios;

    fn fixture() -> (Workload, BusinessRequirements, Vec<WeightedScenario>) {
        (
            ssdep_core::presets::cello_workload(),
            ssdep_core::presets::paper_requirements(),
            paper_scenarios(),
        )
    }

    #[test]
    fn link_sweep_trades_outlays_for_recovery_time() {
        let (workload, requirements, scenarios) = fixture();
        let hw_only: Vec<WeightedScenario> = scenarios.into_iter().skip(1).collect();
        let points =
            sweep_mirror_links(&[1, 2, 4, 8, 16], &workload, &requirements, &hw_only).unwrap();
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(pair[1].outlays > pair[0].outlays, "links cost money");
            assert!(
                pair[1].worst_recovery_time < pair[0].worst_recovery_time,
                "links buy recovery speed"
            );
            // Loss is link-count independent (batch window fixed).
            assert!(pair[1]
                .worst_data_loss
                .approx_eq(pair[0].worst_data_loss, 1e-9));
        }
    }

    #[test]
    fn vault_interval_sweep_moves_site_loss_linearly() {
        let (workload, requirements, scenarios) = fixture();
        let points =
            sweep_vault_interval(&[1.0, 2.0, 4.0], &workload, &requirements, &scenarios).unwrap();
        for pair in points.windows(2) {
            assert!(
                pair[1].worst_data_loss > pair[0].worst_data_loss,
                "longer vault intervals lose more"
            );
        }
        // Weekly vaulting reproduces Table 7's 253-hour site loss.
        assert!((points[0].worst_data_loss.as_hours() - 253.0).abs() < 1e-6);
    }

    #[test]
    fn backup_interval_sweep_shows_the_freshness_cost_curve() {
        let (workload, requirements, scenarios) = fixture();
        let points = sweep_backup_interval(
            &[24.0, 48.0, 96.0, 168.0],
            &workload,
            &requirements,
            &scenarios,
        )
        .unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].worst_data_loss >= pair[0].worst_data_loss);
        }
        // More frequent fulls demand more tape bandwidth → higher
        // bandwidth-dependent outlays.
        assert!(points[0].outlays > points.last().unwrap().outlays);
    }

    #[test]
    fn growth_sweep_finds_the_breaking_point() {
        let (workload, requirements, scenarios) = fixture();
        let design = ssdep_core::presets::baseline_design();
        // The baseline array runs at 87 % capacity: ~1.15× growth fills
        // it; the tape and vault have far more headroom.
        let points = sweep_growth(
            &[0.5, 1.0, 1.1, 1.5, 4.0],
            &design,
            &workload,
            &requirements,
            &scenarios,
        )
        .unwrap();
        assert!(points[0].is_feasible());
        assert!(points[1].is_feasible());
        assert!(!points[3].is_feasible(), "1.5x overfills the array");
        assert!(!points[4].is_feasible());
        match &points[3] {
            GrowthPoint::Infeasible { reason, .. } => {
                assert!(reason.contains("primary array"), "{reason}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        // Costs grow with the dataset while it fits.
        if let (GrowthPoint::Feasible { point: a, .. }, GrowthPoint::Feasible { point: b, .. }) =
            (&points[0], &points[1])
        {
            assert!(b.outlays > a.outlays);
        } else {
            panic!("first two points must be feasible");
        }
    }

    #[test]
    fn render_produces_one_row_per_point() {
        let (workload, requirements, scenarios) = fixture();
        let hw_only: Vec<WeightedScenario> = scenarios.into_iter().skip(1).collect();
        let points = sweep_mirror_links(&[1, 10], &workload, &requirements, &hw_only).unwrap();
        let text = render(&points, "links");
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(text.contains("links"));
    }

    #[test]
    fn broken_points_propagate_errors() {
        let (workload, requirements, scenarios) = fixture();
        let err = sweep(
            &[1.0],
            |_| Err(ssdep_core::Error::invalid("sweep.test", "intentional")),
            &workload,
            &requirements,
            &scenarios,
        )
        .unwrap_err();
        assert!(err.to_string().contains("intentional"));
    }
}

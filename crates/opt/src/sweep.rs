//! One-dimensional parameter sweeps (sensitivity analysis / ablations).
//!
//! Sweeps answer "how does the outcome move as one design knob turns?" —
//! the series behind figures like "data loss vs. vaulting interval" or
//! "recovery time vs. link count". Each point evaluates a full design
//! under a scenario set, so a sweep is a row of what-if experiments with
//! a shared axis.

use crate::engine::EvalEngine;
use crate::supervisor::{FailedOutcome, FailureKind, Provenance, Supervisor};
use serde::{Deserialize, Serialize};
use ssdep_core::analysis::{expected_annual_cost, WeightedScenario};
use ssdep_core::error::Error;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::units::{round_to_u32, Money, TimeDelta};
use ssdep_core::workload::Workload;

/// One evaluated point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The design's label at this point.
    pub label: String,
    /// Annual outlays.
    pub outlays: Money,
    /// Frequency-weighted expected annual penalties.
    pub expected_penalties: Money,
    /// Expected total annual cost.
    pub expected_total: Money,
    /// Worst recovery time across the scenarios.
    pub worst_recovery_time: TimeDelta,
    /// Worst recent data loss across the scenarios.
    pub worst_data_loss: TimeDelta,
}

/// A point where the sweep's design could not be built or evaluated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokenPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The failure, rendered.
    pub reason: String,
}

/// A sweep's result: the evaluated points plus any broken ones.
///
/// A broken point is *recorded*, never silently dropped — axis coverage
/// is part of the answer, and [`SweepSeries::is_complete`] says whether
/// the series covers every requested value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepSeries {
    /// The points that evaluated, in axis order.
    pub points: Vec<SweepPoint>,
    /// The points that broke, in axis order.
    pub broken: Vec<BrokenPoint>,
}

impl SweepSeries {
    /// Whether every requested value produced a point.
    pub fn is_complete(&self) -> bool {
        self.broken.is_empty()
    }
}

/// Folds an expected-cost evaluation into one sweep point.
fn fold_point(
    value: f64,
    label: &str,
    expected: &ssdep_core::analysis::ExpectedCost,
) -> SweepPoint {
    let mut worst_recovery_time = TimeDelta::ZERO;
    let mut worst_data_loss = TimeDelta::ZERO;
    for (_, evaluation) in &expected.evaluations {
        worst_recovery_time = worst_recovery_time.max(evaluation.recovery.total_time);
        worst_data_loss = worst_data_loss.max(evaluation.loss.worst_loss);
    }
    SweepPoint {
        value,
        label: label.to_string(),
        outlays: expected.outlays,
        expected_penalties: expected.expected_penalties,
        expected_total: expected.total(),
        worst_recovery_time,
        worst_data_loss,
    }
}

/// Evaluates one sweep point through the single-shot pipeline.
fn evaluate_point<F>(
    value: f64,
    make: &F,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<SweepPoint, Error>
where
    F: Fn(f64) -> Result<StorageDesign, Error>,
{
    let design = make(value)?;
    let expected = expected_annual_cost(&design, workload, requirements, scenarios)?;
    Ok(fold_point(value, design.name(), &expected))
}

/// Evaluates one sweep point through a staged [`EvalEngine`] —
/// preparation is memoized by fingerprint and the per-scenario fold runs
/// on the allocation-free scored path with this thread's reusable
/// scratch. The numbers are identical to [`evaluate_point`]'s: the
/// scored fold performs the same float operations in the same order as
/// the report path (pinned bit-for-bit in `ssdep-core`).
fn evaluate_point_engine<F>(
    engine: &EvalEngine,
    value: f64,
    make: &F,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<SweepPoint, Error>
where
    F: Fn(f64) -> Result<StorageDesign, Error>,
{
    let design = make(value)?;
    let summary = crate::engine::with_scratch(|scratch| {
        engine.expected_summary(&design, workload, requirements, scenarios, scratch)
    })?;
    Ok(SweepPoint {
        value,
        label: design.name().to_string(),
        outlays: summary.outlays,
        expected_penalties: summary.expected_penalties,
        expected_total: summary.total(),
        worst_recovery_time: summary.worst_recovery_time,
        worst_data_loss: summary.worst_data_loss,
    })
}

/// Evaluates `make(value)` for every value, producing the sweep series.
///
/// A value whose design fails to build or evaluate becomes a
/// [`BrokenPoint`] and the sweep continues — a broken point is reported
/// alongside the series, not allowed to abort the remaining axis.
pub fn sweep<F>(
    values: &[f64],
    make: F,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> SweepSeries
where
    F: Fn(f64) -> Result<StorageDesign, Error>,
{
    let mut series = SweepSeries::default();
    for &value in values {
        match evaluate_point(value, &make, workload, requirements, scenarios) {
            Ok(point) => series.points.push(point),
            Err(error) => series.broken.push(BrokenPoint {
                value,
                reason: error.to_string(),
            }),
        }
    }
    series
}

/// One task of a supervised sweep: the axis name plus the value, so the
/// checkpoint journal is self-describing and resume-matching is exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepTask {
    /// The axis being swept (e.g. `"links"`).
    pub axis: String,
    /// The swept parameter's value.
    pub value: f64,
}

/// The journaled outcome of one supervised sweep task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SweepOutcome {
    /// The point evaluated.
    Evaluated(SweepPoint),
    /// The point broke deterministically (design construction or
    /// evaluation rejected it).
    Broken {
        /// The failure, rendered.
        reason: String,
    },
}

/// A supervised sweep's result: the series, the quarantined tasks, and
/// where everything came from.
#[derive(Debug, Clone)]
pub struct SupervisedSweep {
    /// The evaluated + broken points.
    pub series: SweepSeries,
    /// Tasks quarantined by the supervisor (panics, deadline misses,
    /// exhausted transient retries) or rejected by the preflight gate
    /// before any evaluation thread was spawned
    /// ([`FailureKind::Rejected`]).
    pub failed: Vec<FailedOutcome<SweepTask>>,
    /// Result provenance.
    pub provenance: Provenance,
    /// The journal failure behind [`Provenance::journal_degraded`], when
    /// the run shed its checkpoint and finished in memory.
    pub journal_error: Option<String>,
}

/// Runs [`sweep`] under a [`Supervisor`]: panic isolation and deadline
/// budgets per point, transient-failure retries, and checkpoint/resume
/// via the supervisor's journal.
///
/// Deterministically broken points keep their [`sweep`] semantics — they
/// land in [`SweepSeries::broken`], not in quarantine; the quarantine
/// holds supervisor-level failures (panics, deadlines, exhausted
/// retries) and points rejected by the preflight gate before any
/// evaluation thread was spawned.
///
/// # Errors
///
/// Returns journal I/O and serialization errors only — per-point
/// failures never abort the sweep.
pub fn supervised_sweep<F>(
    axis: &str,
    values: &[f64],
    make: F,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
    supervisor: &Supervisor,
) -> Result<SupervisedSweep, Error>
where
    F: Fn(f64) -> Result<StorageDesign, Error> + Send + Sync + 'static,
{
    // Preflight gate: points whose design builds but is statically
    // invalid are quarantined as `Rejected` without spending an
    // isolation thread or deadline budget. Points whose design fails to
    // build keep their legacy `Broken` path through the closure below.
    let mut tasks = Vec::new();
    let mut rejected = Vec::new();
    for &value in values {
        let task = SweepTask {
            axis: axis.to_string(),
            value,
        };
        match make(value) {
            Ok(design) => match crate::search::preflight_rejection(&design, workload) {
                Some(reason) => rejected.push(FailedOutcome {
                    candidate: task,
                    error: reason,
                    attempts: 0,
                    kind: FailureKind::Rejected,
                }),
                None => tasks.push(task),
            },
            Err(_) => tasks.push(task),
        }
    }
    // Share one set of inputs (and one staged engine) across every
    // worker instead of cloning per task.
    let engine = std::sync::Arc::clone(supervisor.engine());
    let hits_before = engine.cache_hits();
    let closure_engine = std::sync::Arc::clone(&engine);
    let workload = std::sync::Arc::new(workload.clone());
    let requirements = *requirements;
    let scenarios = std::sync::Arc::new(scenarios.to_vec());
    let run = supervisor.run_with_rejected(&tasks, rejected, move |task: &SweepTask| {
        match evaluate_point_engine(
            &closure_engine,
            task.value,
            &make,
            &workload,
            &requirements,
            &scenarios,
        ) {
            Ok(point) => Ok(SweepOutcome::Evaluated(point)),
            // Transient failures bubble to the supervisor's retry loop;
            // deterministic ones are the point's honest outcome.
            Err(error) if error.is_transient() => Err(error),
            Err(error) => Ok(SweepOutcome::Broken {
                reason: error.to_string(),
            }),
        }
    })?;

    let mut series = SweepSeries::default();
    for (task, outcome) in run.completed {
        match outcome {
            SweepOutcome::Evaluated(point) => series.points.push(point),
            SweepOutcome::Broken { reason } => series.broken.push(BrokenPoint {
                value: task.value,
                reason,
            }),
        }
    }
    let mut provenance = run.provenance;
    provenance.cache_hits = engine.cache_hits().saturating_sub(hits_before);
    provenance.cache_bytes = engine.cached_bytes();
    Ok(SupervisedSweep {
        series,
        failed: run.failed,
        provenance,
        journal_error: run.journal_error,
    })
}

/// Sweep the number of WAN links in the batched-mirror design
/// (Table 7's 1-vs-10-links comparison as a full series).
pub fn sweep_mirror_links(
    links: &[u32],
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> SweepSeries {
    let values: Vec<f64> = links.iter().map(|&l| l as f64).collect();
    sweep(
        &values,
        mirror_links_design,
        workload,
        requirements,
        scenarios,
    )
}

/// The design factory behind [`sweep_mirror_links`].
pub fn mirror_links_design(value: f64) -> Result<StorageDesign, Error> {
    Ok(ssdep_core::presets::async_batch_mirror_design(value as u32))
}

/// Sweep the vaulting interval (weeks) on the baseline design, keeping
/// three years of retention (the Table 7 "weekly vault" knob as a
/// series).
pub fn sweep_vault_interval(
    weeks: &[f64],
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> SweepSeries {
    sweep(
        weeks,
        vault_interval_design,
        workload,
        requirements,
        scenarios,
    )
}

/// The design factory behind [`sweep_vault_interval`].
pub fn vault_interval_design(weeks: f64) -> Result<StorageDesign, Error> {
    use crate::space::{BackupChoice, Candidate, MirrorChoice, PitChoice, VaultChoice};
    let retained = round_to_u32(156.0 / weeks).max(2);
    Candidate {
        pit: PitChoice::SplitMirror {
            acc_hours: 12.0,
            retained: 4,
        },
        backup: BackupChoice::Fulls {
            acc_hours: 168.0,
            prop_hours: 48.0,
            retained: 4,
            daily_incrementals: 0,
        },
        vault: VaultChoice::Ship {
            acc_weeks: weeks,
            hold_hours: 12.0,
            retained,
        },
        mirror: MirrorChoice::None,
    }
    .materialize()
}

/// Sweep the full-backup interval (hours) with matching four-week
/// retention — the weekly-vs-daily-fulls knob as a series.
pub fn sweep_backup_interval(
    hours: &[f64],
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> SweepSeries {
    sweep(
        hours,
        backup_interval_design,
        workload,
        requirements,
        scenarios,
    )
}

/// The design factory behind [`sweep_backup_interval`].
pub fn backup_interval_design(acc_hours: f64) -> Result<StorageDesign, Error> {
    use crate::space::{BackupChoice, Candidate, MirrorChoice, PitChoice, VaultChoice};
    let retained = round_to_u32(672.0 / acc_hours).max(2);
    Candidate {
        pit: PitChoice::SplitMirror {
            acc_hours: 12.0,
            retained: 4,
        },
        backup: BackupChoice::Fulls {
            acc_hours,
            prop_hours: (acc_hours / 2.0).min(48.0),
            retained,
            daily_incrementals: 0,
        },
        vault: VaultChoice::Ship {
            acc_weeks: 1.0,
            hold_hours: 12.0,
            retained: 156,
        },
        mirror: MirrorChoice::None,
    }
    .materialize()
}

/// One point of a dataset-growth sweep: at `factor ×` today's workload,
/// either the evaluated outcome or why the design stops working.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GrowthPoint {
    /// The design still works at this growth factor.
    Feasible {
        /// The growth factor.
        factor: f64,
        /// The evaluated outcome.
        point: SweepPoint,
    },
    /// The design breaks at this growth factor (a device runs out of
    /// capacity or bandwidth).
    Infeasible {
        /// The growth factor.
        factor: f64,
        /// The feasibility error, rendered.
        reason: String,
    },
}

impl GrowthPoint {
    /// Whether the point is feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, GrowthPoint::Feasible { .. })
    }

    /// The growth factor.
    pub fn factor(&self) -> f64 {
        match self {
            GrowthPoint::Feasible { factor, .. } | GrowthPoint::Infeasible { factor, .. } => {
                *factor
            }
        }
    }
}

/// Sweeps dataset growth: evaluates the design against
/// [`Workload::scaled`] copies of the workload, answering "at what
/// growth does this design break, and what does it cost before then?".
/// Infeasible factors (overcommitted devices) become
/// [`GrowthPoint::Infeasible`] entries rather than errors.
///
/// # Errors
///
/// Propagates evaluation errors other than feasibility
/// ([`ssdep_core::Error::Overutilized`]).
pub fn sweep_growth(
    factors: &[f64],
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<Vec<GrowthPoint>, Error> {
    let mut points = Vec::with_capacity(factors.len());
    for &factor in factors {
        let grown = workload.scaled(factor)?;
        match expected_annual_cost(design, &grown, requirements, scenarios) {
            Ok(expected) => {
                let mut worst_recovery_time = TimeDelta::ZERO;
                let mut worst_data_loss = TimeDelta::ZERO;
                for (_, evaluation) in &expected.evaluations {
                    worst_recovery_time = worst_recovery_time.max(evaluation.recovery.total_time);
                    worst_data_loss = worst_data_loss.max(evaluation.loss.worst_loss);
                }
                points.push(GrowthPoint::Feasible {
                    factor,
                    point: SweepPoint {
                        value: factor,
                        label: design.name().to_string(),
                        outlays: expected.outlays,
                        expected_penalties: expected.expected_penalties,
                        expected_total: expected.total(),
                        worst_recovery_time,
                        worst_data_loss,
                    },
                });
            }
            Err(error @ Error::Overutilized { .. }) => {
                points.push(GrowthPoint::Infeasible {
                    factor,
                    reason: error.to_string(),
                });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(points)
}

/// Renders a sweep as a fixed-width table for terminals and
/// EXPERIMENTS-style records.
pub fn render(points: &[SweepPoint], axis: &str) -> String {
    let mut table = ssdep_core::report::TextTable::new([
        axis,
        "Outlays",
        "E[penalties]",
        "E[total]",
        "Worst RT",
        "Worst DL",
    ]);
    for point in points {
        table.row([
            format!("{}", point.value),
            point.outlays.to_string(),
            point.expected_penalties.to_string(),
            point.expected_total.to_string(),
            format!("{:.1} hr", point.worst_recovery_time.as_hours()),
            format!("{:.1} hr", point.worst_data_loss.as_hours()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::paper_scenarios;

    fn fixture() -> (Workload, BusinessRequirements, Vec<WeightedScenario>) {
        (
            ssdep_core::presets::cello_workload(),
            ssdep_core::presets::paper_requirements(),
            paper_scenarios(),
        )
    }

    #[test]
    fn link_sweep_trades_outlays_for_recovery_time() {
        let (workload, requirements, scenarios) = fixture();
        let hw_only: Vec<WeightedScenario> = scenarios.into_iter().skip(1).collect();
        let series = sweep_mirror_links(&[1, 2, 4, 8, 16], &workload, &requirements, &hw_only);
        assert!(series.is_complete());
        let points = series.points;
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(pair[1].outlays > pair[0].outlays, "links cost money");
            assert!(
                pair[1].worst_recovery_time < pair[0].worst_recovery_time,
                "links buy recovery speed"
            );
            // Loss is link-count independent (batch window fixed).
            assert!(pair[1]
                .worst_data_loss
                .approx_eq(pair[0].worst_data_loss, 1e-9));
        }
    }

    #[test]
    fn vault_interval_sweep_moves_site_loss_linearly() {
        let (workload, requirements, scenarios) = fixture();
        let points =
            sweep_vault_interval(&[1.0, 2.0, 4.0], &workload, &requirements, &scenarios).points;
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].worst_data_loss > pair[0].worst_data_loss,
                "longer vault intervals lose more"
            );
        }
        // Weekly vaulting reproduces Table 7's 253-hour site loss.
        assert!((points[0].worst_data_loss.as_hours() - 253.0).abs() < 1e-6);
    }

    #[test]
    fn backup_interval_sweep_shows_the_freshness_cost_curve() {
        let (workload, requirements, scenarios) = fixture();
        let points = sweep_backup_interval(
            &[24.0, 48.0, 96.0, 168.0],
            &workload,
            &requirements,
            &scenarios,
        )
        .points;
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(pair[1].worst_data_loss >= pair[0].worst_data_loss);
        }
        // More frequent fulls demand more tape bandwidth → higher
        // bandwidth-dependent outlays.
        assert!(points[0].outlays > points.last().unwrap().outlays);
    }

    #[test]
    fn growth_sweep_finds_the_breaking_point() {
        let (workload, requirements, scenarios) = fixture();
        let design = ssdep_core::presets::baseline_design();
        // The baseline array runs at 87 % capacity: ~1.15× growth fills
        // it; the tape and vault have far more headroom.
        let points = sweep_growth(
            &[0.5, 1.0, 1.1, 1.5, 4.0],
            &design,
            &workload,
            &requirements,
            &scenarios,
        )
        .unwrap();
        assert!(points[0].is_feasible());
        assert!(points[1].is_feasible());
        assert!(!points[3].is_feasible(), "1.5x overfills the array");
        assert!(!points[4].is_feasible());
        match &points[3] {
            GrowthPoint::Infeasible { reason, .. } => {
                assert!(reason.contains("primary array"), "{reason}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        // Costs grow with the dataset while it fits.
        if let (GrowthPoint::Feasible { point: a, .. }, GrowthPoint::Feasible { point: b, .. }) =
            (&points[0], &points[1])
        {
            assert!(b.outlays > a.outlays);
        } else {
            panic!("first two points must be feasible");
        }
    }

    #[test]
    fn render_produces_one_row_per_point() {
        let (workload, requirements, scenarios) = fixture();
        let hw_only: Vec<WeightedScenario> = scenarios.into_iter().skip(1).collect();
        let points = sweep_mirror_links(&[1, 10], &workload, &requirements, &hw_only).points;
        let text = render(&points, "links");
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(text.contains("links"));
    }

    #[test]
    fn broken_points_are_recorded_and_the_sweep_continues() {
        let (workload, requirements, scenarios) = fixture();
        let hw_only: Vec<WeightedScenario> = scenarios.into_iter().skip(1).collect();
        let series = sweep(
            &[1.0, 2.0, 4.0],
            |value| {
                if value == 2.0 {
                    Err(ssdep_core::Error::invalid("sweep.test", "intentional"))
                } else {
                    mirror_links_design(value)
                }
            },
            &workload,
            &requirements,
            &hw_only,
        );
        assert!(!series.is_complete());
        assert_eq!(
            series.points.len(),
            2,
            "the rest of the axis still evaluates"
        );
        assert_eq!(series.broken.len(), 1);
        assert_eq!(series.broken[0].value, 2.0);
        assert!(series.broken[0].reason.contains("intentional"));
    }

    #[test]
    fn supervised_sweep_matches_the_plain_sweep_and_checkpoints() {
        let (workload, requirements, scenarios) = fixture();
        let hw_only: Vec<WeightedScenario> = scenarios.into_iter().skip(1).collect();
        let links = [1.0, 4.0, 16.0];
        let plain = sweep(
            &links,
            mirror_links_design,
            &workload,
            &requirements,
            &hw_only,
        );

        let path = std::env::temp_dir().join(format!(
            "ssdep-sweep-supervised-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let config = crate::supervisor::SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            ..crate::supervisor::SupervisorConfig::default()
        };
        let supervised = supervised_sweep(
            "links",
            &links,
            mirror_links_design,
            &workload,
            &requirements,
            &hw_only,
            &Supervisor::new(config.clone()),
        )
        .unwrap();
        assert!(supervised.failed.is_empty());
        assert_eq!(supervised.provenance.evaluated, 3);
        assert_eq!(
            render(&supervised.series.points, "links"),
            render(&plain.points, "links"),
            "supervision must not change the numbers"
        );

        // Resume: everything replays, nothing re-evaluates.
        let resumed = supervised_sweep(
            "links",
            &links,
            mirror_links_design,
            &workload,
            &requirements,
            &hw_only,
            &Supervisor::new(config),
        )
        .unwrap();
        assert_eq!(resumed.provenance.resumed, 3);
        assert_eq!(resumed.provenance.evaluated, 0);
        assert_eq!(
            render(&resumed.series.points, "links"),
            render(&plain.points, "links")
        );
        std::fs::remove_file(&path).ok();
    }
}

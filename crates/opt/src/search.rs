//! Searching the candidate space.
//!
//! Every candidate is scored by its frequency-weighted **expected annual
//! cost** (outlays + Σ frequency × penalties over the scenario set) and
//! checked against the business RTO/RPO objectives per scenario.
//! Candidates whose normal-mode utilization is infeasible, or that
//! cannot recover at all from some scenario, are reported as infeasible
//! rather than ranked.

use crate::engine::EvalEngine;
use crate::space::{Candidate, DesignSpace};
use crate::supervisor::{FailedOutcome, FailureKind, Provenance, Supervisor};
use serde::{Deserialize, Serialize};
use ssdep_core::analysis::{expected_annual_cost, ExpectedCost, WeightedScenario};
use ssdep_core::error::Error;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::units::{Money, TimeDelta};
use ssdep_core::workload::Workload;

/// The scenario mix of the paper's case study with plausible annual
/// frequencies: monthly object corruption, an array loss per decade, a
/// site disaster per half-century
/// ([`ssdep_core::presets::paper_scenario_catalog`]).
pub fn paper_scenarios() -> Vec<WeightedScenario> {
    ssdep_core::presets::paper_scenario_catalog()
}

/// One evaluated candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// The candidate's policy choices.
    pub candidate: Candidate,
    /// Its descriptive label.
    pub label: String,
    /// Annual outlays.
    pub outlays: Money,
    /// Frequency-weighted expected annual penalties.
    pub expected_penalties: Money,
    /// Expected total annual cost.
    pub expected_total: Money,
    /// Worst recovery time across the scenarios.
    pub worst_recovery_time: TimeDelta,
    /// Worst recent data loss across the scenarios.
    pub worst_data_loss: TimeDelta,
    /// Whether every scenario met the RTO/RPO objectives.
    pub meets_objectives: bool,
}

/// One candidate that could not be evaluated, and why.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfeasibleCandidate {
    /// The candidate's label.
    pub label: String,
    /// The evaluation error, rendered.
    pub reason: String,
}

/// The outcome of a search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Feasible candidates, cheapest expected total first.
    pub ranked: Vec<CandidateOutcome>,
    /// Candidates that could not be evaluated.
    pub infeasible: Vec<InfeasibleCandidate>,
    /// How many candidate evaluations the search performed.
    pub evaluations: usize,
}

impl SearchResult {
    /// The cheapest feasible candidate, if any.
    pub fn best(&self) -> Option<&CandidateOutcome> {
        self.ranked.first()
    }

    /// The cheapest candidate that also meets the RTO/RPO objectives.
    pub fn best_meeting_objectives(&self) -> Option<&CandidateOutcome> {
        self.ranked.iter().find(|c| c.meets_objectives)
    }
}

/// Evaluates one candidate against the weighted scenario mix.
///
/// # Errors
///
/// Propagates materialization and evaluation errors (overcommitted
/// devices, unrecoverable scenarios, …).
pub fn evaluate_candidate(
    candidate: &Candidate,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<CandidateOutcome, Error> {
    let design = candidate.materialize()?;
    let expected = expected_annual_cost(&design, workload, requirements, scenarios)?;
    Ok(fold_candidate(candidate, requirements, &expected))
}

/// As [`evaluate_candidate`], routing preparation through a staged
/// [`EvalEngine`] so repeated visits to the same candidate (hill-climb
/// revisits, multi-start overlaps, retries) reuse the cached
/// scenario-independent artifacts. The per-scenario fold runs on the
/// allocation-free scored path with this thread's reusable scratch; the
/// numbers are identical to [`evaluate_candidate`]'s because the scored
/// fold performs the same float operations in the same order as the
/// report path (pinned bit-for-bit in `ssdep-core`).
///
/// # Errors
///
/// As [`evaluate_candidate`].
pub fn evaluate_candidate_engine(
    engine: &EvalEngine,
    candidate: &Candidate,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<CandidateOutcome, Error> {
    let design = candidate.materialize()?;
    let summary = crate::engine::with_scratch(|scratch| {
        engine.expected_summary(&design, workload, requirements, scenarios, scratch)
    })?;
    Ok(CandidateOutcome {
        candidate: *candidate,
        label: candidate.label(),
        outlays: summary.outlays,
        expected_penalties: summary.expected_penalties,
        expected_total: summary.total(),
        worst_recovery_time: summary.worst_recovery_time,
        worst_data_loss: summary.worst_data_loss,
        meets_objectives: summary.meets_objectives,
    })
}

/// Folds an expected-cost evaluation into one candidate outcome.
fn fold_candidate(
    candidate: &Candidate,
    requirements: &BusinessRequirements,
    expected: &ExpectedCost,
) -> CandidateOutcome {
    let mut worst_recovery_time = TimeDelta::ZERO;
    let mut worst_data_loss = TimeDelta::ZERO;
    let mut meets_objectives = true;
    for (_, evaluation) in &expected.evaluations {
        worst_recovery_time = worst_recovery_time.max(evaluation.recovery.total_time);
        worst_data_loss = worst_data_loss.max(evaluation.loss.worst_loss);
        meets_objectives &= evaluation.meets_objectives(requirements);
    }
    CandidateOutcome {
        candidate: *candidate,
        label: candidate.label(),
        outlays: expected.outlays,
        expected_penalties: expected.expected_penalties,
        expected_total: expected.total(),
        worst_recovery_time,
        worst_data_loss,
        meets_objectives,
    }
}

/// Exhaustively evaluates every coherent candidate of `space`.
///
/// # Errors
///
/// Returns scenario-definition errors; per-candidate evaluation failures
/// are collected as infeasible rather than aborting the search.
pub fn exhaustive(
    space: &DesignSpace,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<SearchResult, Error> {
    let mut ranked = Vec::new();
    let mut infeasible = Vec::new();
    let mut evaluations = 0;
    for candidate in space.candidates() {
        evaluations += 1;
        match evaluate_candidate(&candidate, workload, requirements, scenarios) {
            Ok(outcome) => ranked.push(outcome),
            Err(error) => infeasible.push(InfeasibleCandidate {
                label: candidate.label(),
                reason: error.to_string(),
            }),
        }
    }
    ranked.sort_by(|a, b| {
        a.expected_total
            .value()
            .total_cmp(&b.expected_total.value())
    });
    Ok(SearchResult {
        ranked,
        infeasible,
        evaluations,
    })
}

/// The journaled outcome of one supervised candidate evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SearchOutcome {
    /// The candidate evaluated.
    Evaluated(CandidateOutcome),
    /// The candidate was deterministically infeasible — the same
    /// taxonomy [`exhaustive`] reports, preserved through the journal.
    Infeasible {
        /// The candidate's label.
        label: String,
        /// The evaluation error, rendered.
        reason: String,
    },
}

/// A supervised search's result: the ranking, the quarantined
/// candidates, and where everything came from.
#[derive(Debug, Clone)]
pub struct SupervisedSearchResult {
    /// The ranking over the surviving candidates — identical in shape to
    /// [`exhaustive`]'s result, with `evaluations` counting only the
    /// evaluations *this process* performed (resumed outcomes replay
    /// from the journal without re-evaluating).
    pub result: SearchResult,
    /// Candidates quarantined by the supervisor (panics, deadline
    /// misses, exhausted transient retries) or rejected by the
    /// preflight gate before any evaluation thread was spawned
    /// ([`FailureKind::Rejected`]).
    pub failed: Vec<FailedOutcome<Candidate>>,
    /// Result provenance.
    pub provenance: Provenance,
    /// The journal failure behind [`Provenance::journal_degraded`], when
    /// the run shed its checkpoint and finished in memory.
    pub journal_error: Option<String>,
}

/// Runs [`exhaustive`] under a [`Supervisor`]: panic isolation and
/// deadline budgets per candidate, transient-failure retries, and
/// checkpoint/resume via the supervisor's journal.
///
/// Infeasible candidates keep their [`exhaustive`] semantics — they land
/// in [`SearchResult::infeasible`], not in quarantine; the quarantine
/// holds supervisor-level failures plus candidates the preflight gate
/// rejected before evaluation. When any candidate is
/// quarantined, the ranking and any frontier derived from it cover only
/// the survivors — [`Provenance::is_complete`] says which case you are
/// in.
///
/// # Errors
///
/// Returns journal I/O and serialization errors only — per-candidate
/// failures never abort the search.
pub fn supervised_exhaustive(
    space: &DesignSpace,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
    supervisor: &Supervisor,
) -> Result<SupervisedSearchResult, Error> {
    // Preflight gate: statically invalid candidates are quarantined as
    // `Rejected` before the supervisor spends an isolation thread or
    // deadline budget on them. Scenario-level reachability is *not*
    // checked here — an unreachable scenario is the evaluation's honest
    // `Infeasible` verdict, and a candidate that fails to materialize
    // keeps that same legacy path through the closure below.
    let mut candidates = Vec::new();
    let mut rejected = Vec::new();
    for candidate in space.candidates() {
        match candidate.materialize() {
            Ok(design) => match preflight_rejection(&design, workload) {
                Some(reason) => rejected.push(FailedOutcome {
                    candidate,
                    error: reason,
                    attempts: 0,
                    kind: FailureKind::Rejected,
                }),
                None => candidates.push(candidate),
            },
            Err(_) => candidates.push(candidate),
        }
    }
    // Share one set of inputs (and one staged engine) across every
    // worker instead of cloning per task.
    let engine = std::sync::Arc::clone(supervisor.engine());
    let hits_before = engine.cache_hits();
    let closure_engine = std::sync::Arc::clone(&engine);
    let workload = std::sync::Arc::new(workload.clone());
    let requirements = *requirements;
    let scenarios = std::sync::Arc::new(scenarios.to_vec());
    let run =
        supervisor.run_with_rejected(&candidates, rejected, move |candidate: &Candidate| {
            match evaluate_candidate_engine(
                &closure_engine,
                candidate,
                &workload,
                &requirements,
                &scenarios,
            ) {
                Ok(outcome) => Ok(SearchOutcome::Evaluated(outcome)),
                // Transient failures bubble to the supervisor's retry loop;
                // deterministic ones are the candidate's honest verdict.
                Err(error) if error.is_transient() => Err(error),
                Err(error) => Ok(SearchOutcome::Infeasible {
                    label: candidate.label(),
                    reason: error.to_string(),
                }),
            }
        })?;

    let mut ranked = Vec::new();
    let mut infeasible = Vec::new();
    for (_, outcome) in run.completed {
        match outcome {
            SearchOutcome::Evaluated(outcome) => ranked.push(outcome),
            SearchOutcome::Infeasible { label, reason } => {
                infeasible.push(InfeasibleCandidate { label, reason })
            }
        }
    }
    ranked.sort_by(|a, b| {
        a.expected_total
            .value()
            .total_cmp(&b.expected_total.value())
    });
    let mut provenance = run.provenance;
    provenance.cache_hits = engine.cache_hits().saturating_sub(hits_before);
    provenance.cache_bytes = engine.cached_bytes();
    Ok(SupervisedSearchResult {
        result: SearchResult {
            ranked,
            infeasible,
            evaluations: provenance.evaluated,
        },
        failed: run.failed,
        provenance,
        journal_error: run.journal_error,
    })
}

/// Renders the error diagnostics that disqualify `design` before any
/// evaluation is attempted, or `None` when the design passes.
///
/// Only the scenario-independent preflight checks run (structure,
/// devices, techniques, workload, feasibility) — cheap relative to a
/// full evaluation, and scenario reachability stays the evaluation's
/// own verdict.
pub(crate) fn preflight_rejection(design: &StorageDesign, workload: &Workload) -> Option<String> {
    let report = ssdep_core::diagnose::preflight_all(design, workload, &[]);
    if !report.has_errors() {
        return None;
    }
    let rendered: Vec<String> = report.errors().map(|d| d.to_string()).collect();
    Some(format!(
        "preflight rejected ({}): {}",
        report.summary(),
        rendered.join("; ")
    ))
}

/// Coordinate-descent hill climbing: starting from the first coherent
/// candidate, repeatedly sweep the four dimensions and adopt any single
/// change that lowers the expected total cost, until a full sweep makes
/// no progress.
///
/// Evaluates `O(sweeps × Σ dimension sizes)` candidates instead of the
/// full cross product. Coordinate descent revisits neighborhoods as it
/// converges, so evaluation routes through a fresh [`EvalEngine`] —
/// revisited candidates skip their scenario-independent preparation.
///
/// # Errors
///
/// As [`exhaustive`].
pub fn hill_climb(
    space: &DesignSpace,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<SearchResult, Error> {
    hill_climb_with_engine(
        &EvalEngine::default(),
        space,
        workload,
        requirements,
        scenarios,
    )
}

/// As [`hill_climb`], sharing an existing [`EvalEngine`] — callers that
/// climb repeatedly over overlapping neighborhoods (multi-start) reuse
/// one preparation cache across all the climbs.
///
/// # Errors
///
/// As [`exhaustive`].
pub fn hill_climb_with_engine(
    engine: &EvalEngine,
    space: &DesignSpace,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<SearchResult, Error> {
    let mut evaluations = 0;
    let mut infeasible = Vec::new();

    let score = |candidate: &Candidate,
                 evaluations: &mut usize,
                 infeasible: &mut Vec<InfeasibleCandidate>|
     -> Option<CandidateOutcome> {
        if !candidate.is_coherent() {
            return None;
        }
        *evaluations += 1;
        match evaluate_candidate_engine(engine, candidate, workload, requirements, scenarios) {
            Ok(outcome) => Some(outcome),
            Err(error) => {
                infeasible.push(InfeasibleCandidate {
                    label: candidate.label(),
                    reason: error.to_string(),
                });
                None
            }
        }
    };

    // Seed with the first feasible candidate.
    let mut current: Option<CandidateOutcome> = None;
    for candidate in space.candidates() {
        if let Some(outcome) = score(&candidate, &mut evaluations, &mut infeasible) {
            current = Some(outcome);
            break;
        }
    }
    let Some(mut current) = current else {
        return Ok(SearchResult {
            ranked: Vec::new(),
            infeasible,
            evaluations,
        });
    };

    loop {
        let mut improved = false;
        for dimension in 0..4 {
            let base = current.candidate;
            let options: Vec<Candidate> = match dimension {
                0 => space
                    .pit
                    .iter()
                    .map(|&pit| Candidate { pit, ..base })
                    .collect(),
                1 => space
                    .backup
                    .iter()
                    .map(|&backup| Candidate { backup, ..base })
                    .collect(),
                2 => space
                    .vault
                    .iter()
                    .map(|&vault| Candidate { vault, ..base })
                    .collect(),
                _ => space
                    .mirror
                    .iter()
                    .map(|&mirror| Candidate { mirror, ..base })
                    .collect(),
            };
            for candidate in options {
                if candidate == current.candidate {
                    continue;
                }
                if let Some(outcome) = score(&candidate, &mut evaluations, &mut infeasible) {
                    if outcome.expected_total < current.expected_total {
                        current = outcome;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(SearchResult {
        ranked: vec![current],
        infeasible,
        evaluations,
    })
}

/// Multi-start hill climbing: run [`hill_climb`]'s coordinate descent
/// from `restarts` evenly spaced seed candidates and keep the best
/// local optimum. Deterministic (the seeds stride the coherent candidate
/// list), and still far cheaper than exhaustive search on large spaces.
///
/// # Errors
///
/// As [`exhaustive`].
pub fn multi_start_hill_climb(
    space: &DesignSpace,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
    restarts: usize,
) -> Result<SearchResult, Error> {
    let candidates: Vec<Candidate> = space.candidates().collect();
    if candidates.is_empty() || restarts == 0 {
        return Ok(SearchResult {
            ranked: Vec::new(),
            infeasible: Vec::new(),
            evaluations: 0,
        });
    }
    let stride = (candidates.len() / restarts).max(1);

    // One preparation cache spans every restart: overlapping
    // neighborhoods prepare once.
    let engine = EvalEngine::default();
    let mut evaluations = 0;
    let mut infeasible = Vec::new();
    let mut best: Option<CandidateOutcome> = None;
    for start in candidates.iter().step_by(stride).take(restarts) {
        let seeded = DesignSpace {
            // Reorder each dimension so the seed's choice comes first —
            // hill_climb seeds from the first coherent candidate.
            pit: reorder(&space.pit, &start.pit),
            backup: reorder(&space.backup, &start.backup),
            vault: reorder(&space.vault, &start.vault),
            mirror: reorder(&space.mirror, &start.mirror),
        };
        let result = hill_climb_with_engine(&engine, &seeded, workload, requirements, scenarios)?;
        evaluations += result.evaluations;
        infeasible.extend(result.infeasible);
        if let Some(outcome) = result.ranked.into_iter().next() {
            let better = best
                .as_ref()
                .is_none_or(|b| outcome.expected_total < b.expected_total);
            if better {
                best = Some(outcome);
            }
        }
    }
    Ok(SearchResult {
        ranked: best.into_iter().collect(),
        infeasible,
        evaluations,
    })
}

fn reorder<T: PartialEq + Copy>(options: &[T], first: &T) -> Vec<T> {
    let mut ordered = Vec::with_capacity(options.len());
    if options.contains(first) {
        ordered.push(*first);
    }
    ordered.extend(options.iter().copied().filter(|o| o != first));
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Workload, BusinessRequirements, Vec<WeightedScenario>) {
        (
            ssdep_core::presets::cello_workload(),
            ssdep_core::presets::paper_requirements(),
            paper_scenarios(),
        )
    }

    #[test]
    fn exhaustive_ranks_every_coherent_candidate() {
        let (workload, requirements, scenarios) = fixture();
        let space = DesignSpace::minimal();
        let result = exhaustive(&space, &workload, &requirements, &scenarios).unwrap();
        assert_eq!(result.evaluations, space.len());
        assert_eq!(result.ranked.len() + result.infeasible.len(), space.len());
        for pair in result.ranked.windows(2) {
            assert!(pair[0].expected_total <= pair[1].expected_total);
        }
    }

    #[test]
    fn mirrored_designs_win_only_when_failures_are_frequent_enough() {
        // At the paper-ish frequencies (an array loss per decade), the
        // ~half-million-dollar mirror does not pay for itself; crank the
        // frequencies up and it must win.
        let (workload, requirements, rare) = fixture();
        let result = exhaustive(&DesignSpace::minimal(), &workload, &requirements, &rare).unwrap();
        let best_rare = result.best().expect("some candidate is feasible");
        assert!(
            !best_rare.label.contains("batch"),
            "with rare failures, tape should win, got {}",
            best_rare.label
        );

        let mut frequent = rare.clone();
        for weighted in &mut frequent {
            weighted.annual_frequency *= 20.0;
        }
        let result =
            exhaustive(&DesignSpace::minimal(), &workload, &requirements, &frequent).unwrap();
        let best_frequent = result.best().expect("some candidate is feasible");
        assert!(
            best_frequent.label.contains("batch"),
            "with frequent failures, a mirrored design must win, got {}",
            best_frequent.label
        );
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_the_minimal_space() {
        let (workload, requirements, scenarios) = fixture();
        let space = DesignSpace::minimal();
        let full = exhaustive(&space, &workload, &requirements, &scenarios).unwrap();
        let climbed = hill_climb(&space, &workload, &requirements, &scenarios).unwrap();
        let best_full = full.best().unwrap();
        let best_climbed = climbed.best().unwrap();
        // Coordinate descent can stop at a local optimum, but on this
        // small, well-behaved space it should land within 10 % of the
        // global best — and with fewer evaluations.
        assert!(
            best_climbed.expected_total <= best_full.expected_total * 1.10,
            "climbed {} vs exhaustive {}",
            best_climbed.expected_total,
            best_full.expected_total
        );
        assert!(climbed.evaluations <= full.evaluations * 2);
    }

    #[test]
    fn objectives_filter_identifies_fast_recovery_designs() {
        let (workload, _, scenarios) = fixture();
        let strict = BusinessRequirements::builder()
            .unavailability_penalty_rate(ssdep_core::units::MoneyRate::from_dollars_per_hour(
                50_000.0,
            ))
            .loss_penalty_rate(ssdep_core::units::MoneyRate::from_dollars_per_hour(
                50_000.0,
            ))
            .recovery_point_objective(TimeDelta::from_hours(1.0))
            .build()
            .unwrap();
        let result = exhaustive(&DesignSpace::minimal(), &workload, &strict, &scenarios).unwrap();
        let meeting = result.best_meeting_objectives();
        // Only mirrored designs can hold data loss under an hour.
        if let Some(best) = meeting {
            assert!(best.label.contains("batch"), "{}", best.label);
            assert!(best.worst_data_loss <= TimeDelta::from_hours(1.0));
        }
        // And plenty of tape-only designs must miss it.
        assert!(result.ranked.iter().any(|c| !c.meets_objectives));
    }

    #[test]
    fn multi_start_matches_or_beats_single_start() {
        let (workload, requirements, scenarios) = fixture();
        let space = DesignSpace::broad();
        let single = hill_climb(&space, &workload, &requirements, &scenarios).unwrap();
        let multi =
            multi_start_hill_climb(&space, &workload, &requirements, &scenarios, 5).unwrap();
        let single_best = single.best().unwrap().expected_total;
        let multi_best = multi.best().unwrap().expected_total;
        assert!(multi_best <= single_best * (1.0 + 1e-9));
        // And it finds the global optimum on this space.
        let global = exhaustive(&space, &workload, &requirements, &scenarios).unwrap();
        assert!(
            multi_best <= global.best().unwrap().expected_total * 1.05,
            "multi-start {} vs global {}",
            multi_best,
            global.best().unwrap().expected_total
        );
        assert!(multi.evaluations < global.evaluations * 2);
    }

    #[test]
    fn multi_start_degenerate_inputs() {
        let (workload, requirements, scenarios) = fixture();
        let result = multi_start_hill_climb(
            &DesignSpace::minimal(),
            &workload,
            &requirements,
            &scenarios,
            0,
        )
        .unwrap();
        assert!(result.ranked.is_empty());
        assert_eq!(result.evaluations, 0);
    }

    #[test]
    fn supervised_search_matches_exhaustive_and_resumes() {
        let (workload, requirements, scenarios) = fixture();
        let space = DesignSpace::minimal();
        let plain = exhaustive(&space, &workload, &requirements, &scenarios).unwrap();

        let path = std::env::temp_dir().join(format!(
            "ssdep-search-supervised-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let config = crate::supervisor::SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            ..crate::supervisor::SupervisorConfig::default()
        };
        let supervised = supervised_exhaustive(
            &space,
            &workload,
            &requirements,
            &scenarios,
            &Supervisor::new(config.clone()),
        )
        .unwrap();
        assert!(supervised.failed.is_empty());
        assert!(supervised.provenance.is_complete());
        assert_eq!(supervised.result.evaluations, space.len());
        assert_eq!(supervised.result.ranked.len(), plain.ranked.len());
        assert_eq!(supervised.result.infeasible.len(), plain.infeasible.len());
        for (a, b) in supervised.result.ranked.iter().zip(&plain.ranked) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.expected_total, b.expected_total);
        }

        // Resume: every outcome replays; the ranking is bit-for-bit.
        let resumed = supervised_exhaustive(
            &space,
            &workload,
            &requirements,
            &scenarios,
            &Supervisor::new(config),
        )
        .unwrap();
        assert_eq!(resumed.provenance.resumed, space.len());
        assert_eq!(resumed.result.evaluations, 0, "nothing re-evaluates");
        for (a, b) in resumed.result.ranked.iter().zip(&plain.ranked) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.expected_total, b.expected_total);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preflight_invalid_candidates_are_rejected_without_evaluation() {
        let (workload, requirements, scenarios) = fixture();
        // 100× growth overcommits the primary array for every candidate
        // in the space — the preflight gate must quarantine all of them
        // before any evaluation thread is spawned.
        let overgrown = workload.scaled(100.0).unwrap();
        let space = DesignSpace::minimal();
        let supervised = supervised_exhaustive(
            &space,
            &overgrown,
            &requirements,
            &scenarios,
            &Supervisor::new(crate::supervisor::SupervisorConfig::default()),
        )
        .unwrap();
        assert_eq!(supervised.failed.len(), space.len());
        for outcome in &supervised.failed {
            assert_eq!(outcome.kind, crate::supervisor::FailureKind::Rejected);
            assert_eq!(outcome.attempts, 0, "no evaluation attempt was spent");
            assert!(
                outcome.error.contains("D040") || outcome.error.contains("D041"),
                "the rejection carries the diagnostics: {}",
                outcome.error
            );
        }
        assert_eq!(supervised.provenance.evaluated, 0);
        assert_eq!(supervised.provenance.failed, space.len());
        assert_eq!(supervised.provenance.total, space.len());
        assert!(supervised.result.ranked.is_empty());
        assert!(supervised.result.infeasible.is_empty());
        assert!(!supervised.provenance.is_complete());
    }

    #[test]
    fn preflight_rejections_are_journaled_and_replay_without_retries() {
        use crate::journal::read_journal;
        use crate::supervisor::TaskRecord;
        let (workload, requirements, scenarios) = fixture();
        let overgrown = workload.scaled(100.0).unwrap();
        let space = DesignSpace::minimal();
        let path = std::env::temp_dir().join(format!(
            "ssdep-search-rejected-journal-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let config = crate::supervisor::SupervisorConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            ..crate::supervisor::SupervisorConfig::default()
        };
        let supervised = supervised_exhaustive(
            &space,
            &overgrown,
            &requirements,
            &scenarios,
            &Supervisor::new(config.clone()),
        )
        .unwrap();
        assert_eq!(supervised.failed.len(), space.len());

        // Every rejection landed in the journal, with zero attempts.
        let records = read_journal::<TaskRecord<Candidate, SearchOutcome>>(&path).unwrap();
        assert_eq!(records.len(), space.len());
        for record in &records {
            match record {
                TaskRecord::Failed(outcome) => {
                    assert_eq!(outcome.kind, FailureKind::Rejected);
                    assert_eq!(outcome.attempts, 0, "rejections are never evaluated");
                }
                TaskRecord::Completed { .. } => panic!("no candidate should complete"),
            }
        }

        // A resumed run replays the rejections instead of re-reporting
        // them as fresh, and still evaluates nothing.
        let resumed = supervised_exhaustive(
            &space,
            &overgrown,
            &requirements,
            &scenarios,
            &Supervisor::new(config),
        )
        .unwrap();
        assert_eq!(resumed.provenance.resumed, space.len());
        assert_eq!(resumed.provenance.evaluated, 0);
        assert_eq!(resumed.failed.len(), supervised.failed.len());
        for (a, b) in resumed.failed.iter().zip(&supervised.failed) {
            assert_eq!(a.error, b.error);
            assert_eq!(a.attempts, 0);
        }
        // Same-file resume does not grow the journal with duplicates.
        let replayed = read_journal::<TaskRecord<Candidate, SearchOutcome>>(&path).unwrap();
        assert_eq!(replayed.len(), space.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn broad_space_search_completes_and_orders_costs() {
        let (workload, requirements, scenarios) = fixture();
        let space = DesignSpace::broad();
        let result = exhaustive(&space, &workload, &requirements, &scenarios).unwrap();
        assert!(result.ranked.len() > 20, "{} ranked", result.ranked.len());
        let best = result.best().unwrap();
        let worst = result.ranked.last().unwrap();
        assert!(worst.expected_total > best.expected_total * 2.0);
    }
}

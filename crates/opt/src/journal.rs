//! Append-only checkpoint journals with checksummed v2 framing,
//! corruption inspection, and salvage.
//!
//! The evaluation supervisor records one line per finished task so a
//! killed process can resume without repeating completed work. Crash
//! tolerance rests on two properties:
//!
//! * **appends are atomic at line granularity**: a line is handed to the
//!   sink in one write and durability is forced with batched `fsync`s,
//!   so after a crash the file is a prefix of the uninterrupted journal
//!   plus at most one torn line;
//! * **readers drop a torn tail**: a final line that does not parse is
//!   treated as the crash artifact it is, while an unparsable line in
//!   the middle of the file is reported as corruption — recoverable via
//!   [`salvage_journal`] (CLI: `ssdep journal recover`), which moves the
//!   corrupt spans into a `.quarantine` sidecar.
//!
//! # Record framing
//!
//! Version 2 frames every record with a sequence number and a CRC32
//! (IEEE) over `"<seq>:<payload>"`:
//!
//! ```text
//! v2:<seq>:<crc32 hex8>:<payload JSON>\n
//! ```
//!
//! Readers accept v1 journals — plain JSON lines, everything written
//! before framing existed — unchanged, line by line, so old checkpoints
//! resume bit for bit. The CRC turns silent bit rot into a *located*
//! corruption report instead of a JSON parse error (or worse, a wrong
//! but parsable record).
//!
//! Record *order* carries no meaning: resume matches records to tasks by
//! their serialized key, so journals written by parallel supervisor runs
//! (whose append order follows completion, not input order) replay
//! exactly like serial ones. Replayed outcomes are copied verbatim —
//! resume never re-runs any part of the evaluation pipeline, including
//! its scenario-independent preparation stage.
//!
//! Writes go through the [`JournalSink`](crate::sink::JournalSink) seam,
//! so storage faults (EIO, ENOSPC, short writes) are injectable and the
//! whole failure matrix is testable from library code — see
//! [`crate::sink`] and `DESIGN.md` §14.

use crate::sink::{FaultySink, FileSink, IoFaultPlan, JournalSink};
use serde::de::DeserializeOwned;
use serde::Serialize;
use ssdep_core::error::{Error, RetryPolicy};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, std-only
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// The CRC32 (IEEE) checksum journal frames carry.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Frame parsing (shared by the reader, inspector, and salvager)
// ---------------------------------------------------------------------

/// One parsed journal line, format identified but payload not yet
/// deserialized.
enum Framed<'a> {
    /// Whitespace only — readers skip it.
    Blank,
    /// A v1 plain-JSON line (no frame, no checksum).
    V1(&'a str),
    /// A v2 frame whose checksum verified.
    V2 { seq: u64, payload: &'a str },
}

/// Parses one raw line into its frame, verifying the v2 checksum.
/// Returns the corruption reason on any mismatch.
fn parse_frame(raw: &[u8]) -> Result<Framed<'_>, String> {
    let text = std::str::from_utf8(raw).map_err(|e| format!("invalid UTF-8: {e}"))?;
    if text.trim().is_empty() {
        return Ok(Framed::Blank);
    }
    let Some(rest) = text.strip_prefix("v2:") else {
        return Ok(Framed::V1(text));
    };
    let (seq_text, rest) = rest
        .split_once(':')
        .ok_or("v2 frame is missing its sequence field")?;
    let (crc_text, payload) = rest
        .split_once(':')
        .ok_or("v2 frame is missing its checksum field")?;
    let seq: u64 = seq_text
        .parse()
        .map_err(|_| format!("v2 frame has a malformed sequence number `{seq_text}`"))?;
    let stored = u32::from_str_radix(crc_text, 16)
        .map_err(|_| format!("v2 frame has a malformed checksum `{crc_text}`"))?;
    let computed = crc32(format!("{seq}:{payload}").as_bytes());
    if computed != stored {
        return Err(format!(
            "checksum mismatch on record {seq}: stored {stored:08x}, computed {computed:08x}"
        ));
    }
    Ok(Framed::V2 { seq, payload })
}

/// Splits a journal's bytes into lines, dropping the empty artifact a
/// trailing newline produces (but keeping interior blanks and a final
/// unterminated fragment).
fn split_lines(bytes: &[u8]) -> Vec<&[u8]> {
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    if lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    lines
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// An append-only journal writer with v2 framing, batched durability,
/// and per-append retries through a [`JournalSink`].
///
/// Entries are framed (`v2:<seq>:<crc32>:<json>`) and handed to the sink
/// one line per append; the batch is `fsync`ed every `sync_every`
/// appends (and on [`JournalWriter::sync`]). Entries in an unflushed
/// batch are lost by a crash, which is safe — resume simply repeats that
/// work. Append failures are retried under the configured
/// [`RetryPolicy`], with a sink rollback between attempts so a torn
/// fragment can never end up concatenated with the retried record.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    sink: Box<dyn JournalSink>,
    sync_every: usize,
    pending: usize,
    appended: usize,
    next_seq: u64,
    retry: RetryPolicy,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it if absent. Sequence
    /// numbering continues from the highest intact v2 record already in
    /// the file.
    ///
    /// # Errors
    ///
    /// Returns the transient [`Error::Io`] when the file cannot be
    /// opened or scanned.
    pub fn open(path: impl AsRef<Path>, sync_every: usize) -> Result<JournalWriter, Error> {
        let path = path.as_ref().to_path_buf();
        let next_seq = scan_next_seq(&path)?;
        let sink = FileSink::open(&path)
            .map_err(|e| Error::io_at("journal open", &path, e.to_string()))?;
        Ok(JournalWriter {
            path,
            sink: Box::new(sink),
            sync_every: sync_every.max(1),
            pending: 0,
            appended: 0,
            next_seq,
            // No retries by default: a bare writer keeps the historic
            // fail-fast behavior; the supervisor installs its policy.
            retry: RetryPolicy::immediate(0),
        })
    }

    /// Installs a retry policy for append and fsync failures.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> JournalWriter {
        self.retry = retry;
        self
    }

    /// Replaces the byte sink — e.g. with a memory or instrumented sink
    /// in tests.
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn JournalSink>) -> JournalWriter {
        self.sink = sink;
        self
    }

    /// Wraps the current sink in deterministic fault injection.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: IoFaultPlan) -> JournalWriter {
        let inner = std::mem::replace(&mut self.sink, Box::new(crate::sink::NullSink));
        self.sink = Box::new(FaultySink::new(inner, plan));
        self
    }

    /// Appends one entry as a framed line, retrying under the writer's
    /// [`RetryPolicy`] and syncing when the batch fills.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the entry does not
    /// serialize, and the transient [`Error::Io`] when writes (and their
    /// retries) fail.
    pub fn append<E: Serialize>(&mut self, entry: &E) -> Result<(), Error> {
        let payload = serde_json::to_string(entry)
            .map_err(|e| Error::invalid("journal.entry", format!("not serializable: {e}")))?;
        debug_assert!(!payload.contains('\n'), "serde_json output is single-line");
        let seq = self.next_seq;
        let crc = crc32(format!("{seq}:{payload}").as_bytes());
        let line = format!("v2:{seq}:{crc:08x}:{payload}\n");

        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.sink.append(line.as_bytes()) {
                Ok(()) => break,
                Err(e) => {
                    // Remove any torn fragment before retrying: a retry
                    // on top of a partial write would corrupt the middle
                    // of the journal, not its tail. If even the rollback
                    // fails, stop — the torn bytes stay at the tail,
                    // where readers already tolerate them.
                    let rolled_back = self.sink.rollback().is_ok();
                    if !rolled_back || attempt > self.retry.max_retries {
                        return Err(Error::io_at("journal append", &self.path, e.to_string())
                            .with_attempts(attempt));
                    }
                    std::thread::sleep(self.retry.delay_for(attempt));
                }
            }
        }
        self.next_seq += 1;
        self.pending += 1;
        self.appended += 1;
        if self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces appended entries to stable storage, retrying under the
    /// writer's [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Returns the transient [`Error::Io`] on fsync failure.
    pub fn sync(&mut self) -> Result<(), Error> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.sink.sync() {
                Ok(()) => {
                    self.pending = 0;
                    return Ok(());
                }
                Err(_) if attempt <= self.retry.max_retries => {
                    std::thread::sleep(self.retry.delay_for(attempt));
                }
                Err(e) => {
                    return Err(Error::io_at("journal fsync", &self.path, e.to_string())
                        .with_attempts(attempt))
                }
            }
        }
    }

    /// How many entries have been appended through this writer.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; a crash skips this
        // and resume re-evaluates the unflushed batch.
        let _ = self.sync();
    }
}

/// The sequence number the next record appended to `path` should carry:
/// one past the highest intact v2 record, or 1 for fresh/missing/v1-only
/// journals.
fn scan_next_seq(path: &Path) -> Result<u64, Error> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(1),
        Err(e) => return Err(Error::io_at("journal open", path, e.to_string())),
    };
    let mut max_seq = 0u64;
    for raw in split_lines(&bytes) {
        if let Ok(Framed::V2 { seq, .. }) = parse_frame(raw) {
            max_seq = max_seq.max(seq);
        }
    }
    Ok(max_seq + 1)
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Reads every entry of a journal (v1 plain lines and v2 frames alike),
/// dropping a torn trailing line.
///
/// A missing file reads as empty (a resume before any checkpoint was
/// written is a fresh start, not an error).
///
/// # Errors
///
/// Returns the transient [`Error::Io`] on read failures, and
/// [`Error::InvalidParameter`] when a line *before* the last fails its
/// checksum or does not parse — that is corruption, not a crash
/// artifact; the message names the journal and points at
/// `ssdep journal recover`.
pub fn read_journal<E: DeserializeOwned>(path: impl AsRef<Path>) -> Result<Vec<E>, Error> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(Error::io_at("journal open", path, e.to_string())),
    };
    let lines = split_lines(&bytes);
    let mut entries = Vec::with_capacity(lines.len());
    let last = lines.len().saturating_sub(1);
    for (index, raw) in lines.iter().enumerate() {
        let parsed: Result<Option<E>, String> = match parse_frame(raw) {
            Ok(Framed::Blank) => Ok(None),
            Ok(Framed::V1(payload)) | Ok(Framed::V2 { payload, .. }) => {
                serde_json::from_str(payload)
                    .map(Some)
                    .map_err(|e| e.to_string())
            }
            Err(reason) => Err(reason),
        };
        match parsed {
            Ok(Some(entry)) => entries.push(entry),
            Ok(None) => {}
            // The torn tail of a crashed append: resume re-does that task.
            Err(_) if index == last => break,
            Err(reason) => {
                return Err(Error::invalid(
                    format!("journal `{}`", path.display()),
                    format!(
                        "corrupt entry at line {}: {reason}; run `ssdep journal recover \
                         {}` to quarantine the corrupt span and keep the intact records",
                        index + 1,
                        path.display(),
                    ),
                ))
            }
        }
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Inspection and salvage
// ---------------------------------------------------------------------

/// A run of consecutive corrupt lines found by [`inspect_journal`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CorruptSpan {
    /// First corrupt line (1-based).
    pub first_line: usize,
    /// Last corrupt line (1-based, inclusive).
    pub last_line: usize,
    /// Total bytes across the span's lines.
    pub bytes: usize,
    /// Why the first line of the span failed.
    pub reason: String,
}

/// What [`inspect_journal`] found, machine-readable (`--json` emits it
/// verbatim).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InspectReport {
    /// The journal inspected.
    pub path: String,
    /// Total lines (including corrupt and blank ones).
    pub lines: usize,
    /// Intact v1 (plain JSON) records.
    pub v1_records: usize,
    /// Intact v2 (framed, checksummed) records.
    pub v2_records: usize,
    /// Whether the final line is a torn crash artifact (dropped by
    /// readers; not corruption).
    pub torn_tail: bool,
    /// Highest sequence number among intact v2 records.
    pub max_seq: u64,
    /// Sequence numbers missing from the intact v2 records — each one is
    /// a record that existed and was lost (to corruption or salvage).
    pub missing_seqs: usize,
    /// Corrupt line runs, in file order. Empty means every record is
    /// intact (a torn tail alone still counts as clean).
    pub corrupt_spans: Vec<CorruptSpan>,
}

impl InspectReport {
    /// Whether the journal resumes without salvage: no mid-file
    /// corruption (a torn tail is a tolerated crash artifact).
    pub fn is_clean(&self) -> bool {
        self.corrupt_spans.is_empty()
    }
}

/// What [`salvage_journal`] did, machine-readable.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SalvageReport {
    /// The journal salvaged (rewritten in place when anything was
    /// quarantined).
    pub path: String,
    /// The sidecar holding every quarantined line verbatim.
    pub quarantine: String,
    /// Intact records kept.
    pub kept: usize,
    /// Lines moved to the quarantine sidecar.
    pub quarantined_lines: usize,
    /// Bytes moved to the quarantine sidecar.
    pub quarantined_bytes: usize,
    /// Whether a torn final line was among the quarantined lines.
    pub torn_tail_dropped: bool,
}

/// Per-line verdicts shared by [`inspect_journal`] and
/// [`salvage_journal`].
enum Verdict {
    Blank,
    V1,
    V2(u64),
    Corrupt(String),
}

fn classify(raw: &[u8]) -> Verdict {
    match parse_frame(raw) {
        Ok(Framed::Blank) => Verdict::Blank,
        Ok(Framed::V1(payload)) => match serde_json::from_str::<serde_json::Value>(payload) {
            Ok(_) => Verdict::V1,
            Err(e) => Verdict::Corrupt(format!("invalid JSON: {e}")),
        },
        Ok(Framed::V2 { seq, payload }) => {
            match serde_json::from_str::<serde_json::Value>(payload) {
                Ok(_) => Verdict::V2(seq),
                Err(e) => Verdict::Corrupt(format!("record {seq}: invalid payload JSON: {e}")),
            }
        }
        Err(reason) => Verdict::Corrupt(reason),
    }
}

/// Reads a journal's raw bytes for inspection/salvage (a missing file is
/// an error here — there is nothing to inspect).
fn read_raw(path: &Path) -> Result<Vec<u8>, Error> {
    std::fs::read(path).map_err(|e| Error::io_at("journal open", path, e.to_string()))
}

/// Classifies every line of the journal at `path` without modifying it:
/// intact records by version, corrupt spans, torn tail, and sequence
/// coverage.
///
/// # Errors
///
/// Returns the transient [`Error::Io`] when the file cannot be read.
pub fn inspect_journal(path: impl AsRef<Path>) -> Result<InspectReport, Error> {
    let path = path.as_ref();
    let bytes = read_raw(path)?;
    let lines = split_lines(&bytes);
    let last = lines.len().saturating_sub(1);

    let mut report = InspectReport {
        path: path.display().to_string(),
        lines: lines.len(),
        v1_records: 0,
        v2_records: 0,
        torn_tail: false,
        max_seq: 0,
        missing_seqs: 0,
        corrupt_spans: Vec::new(),
    };
    let mut seqs: Vec<u64> = Vec::new();
    let mut open_span: Option<CorruptSpan> = None;
    for (index, raw) in lines.iter().enumerate() {
        let verdict = classify(raw);
        if let Verdict::Corrupt(reason) = verdict {
            if index == last && !lines.is_empty() {
                // The final line is a torn crash artifact, not
                // corruption — unless it extends a corrupt run, in which
                // case the run itself is still real corruption.
                report.torn_tail = true;
                continue;
            }
            match &mut open_span {
                Some(span) => {
                    span.last_line = index + 1;
                    span.bytes += raw.len();
                }
                None => {
                    open_span = Some(CorruptSpan {
                        first_line: index + 1,
                        last_line: index + 1,
                        bytes: raw.len(),
                        reason,
                    });
                }
            }
            continue;
        }
        if let Some(span) = open_span.take() {
            report.corrupt_spans.push(span);
        }
        match verdict {
            Verdict::V1 => report.v1_records += 1,
            Verdict::V2(seq) => {
                report.v2_records += 1;
                seqs.push(seq);
            }
            // Blank lines count nothing; Corrupt already continued.
            _ => {}
        }
    }
    if let Some(span) = open_span {
        report.corrupt_spans.push(span);
    }
    seqs.sort_unstable();
    seqs.dedup();
    report.max_seq = seqs.last().copied().unwrap_or(0);
    report.missing_seqs = seqs
        .windows(2)
        .map(|w| (w[1] - w[0] - 1) as usize)
        .sum::<usize>();
    Ok(report)
}

/// Rewrites the journal at `path` keeping every intact line verbatim and
/// moving corrupt lines (and a torn tail) into a `<path>.quarantine`
/// sidecar, so a corrupted journal resumes again without losing any
/// intact record. The rewrite is atomic: intact lines are written to a
/// temporary file, fsynced, and renamed over the journal. A journal with
/// nothing to quarantine is left untouched.
///
/// # Errors
///
/// Returns the transient [`Error::Io`] on read, write, or rename
/// failures.
pub fn salvage_journal(path: impl AsRef<Path>) -> Result<SalvageReport, Error> {
    use std::io::Write as _;

    let path = path.as_ref();
    let bytes = read_raw(path)?;
    let lines = split_lines(&bytes);
    let last = lines.len().saturating_sub(1);

    let quarantine_path = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".quarantine");
        PathBuf::from(os)
    };
    let mut report = SalvageReport {
        path: path.display().to_string(),
        quarantine: quarantine_path.display().to_string(),
        kept: 0,
        quarantined_lines: 0,
        quarantined_bytes: 0,
        torn_tail_dropped: false,
    };

    let mut kept: Vec<&[u8]> = Vec::with_capacity(lines.len());
    let mut quarantined: Vec<&[u8]> = Vec::new();
    for (index, raw) in lines.iter().enumerate() {
        match classify(raw) {
            Verdict::Blank => {}
            Verdict::V1 | Verdict::V2(_) => {
                report.kept += 1;
                kept.push(raw);
            }
            Verdict::Corrupt(_) => {
                if index == last {
                    report.torn_tail_dropped = true;
                }
                report.quarantined_lines += 1;
                report.quarantined_bytes += raw.len();
                quarantined.push(raw);
            }
        }
    }
    if quarantined.is_empty() {
        return Ok(report);
    }

    let write_lines = |target: &Path, lines: &[&[u8]]| -> Result<std::fs::File, Error> {
        let io_err =
            |e: std::io::Error| Error::io_at("journal salvage write", target, e.to_string());
        let mut file = std::fs::File::create(target).map_err(io_err)?;
        for line in lines {
            file.write_all(line).map_err(io_err)?;
            file.write_all(b"\n").map_err(io_err)?;
        }
        file.sync_data().map_err(io_err)?;
        Ok(file)
    };

    write_lines(&quarantine_path, &quarantined)?;
    let tmp_path = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    write_lines(&tmp_path, &kept)?;
    std::fs::rename(&tmp_path, path)
        .map_err(|e| Error::io_at("journal salvage rename", path, e.to_string()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Entry {
        id: u32,
        label: String,
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ssdep-journal-{name}-{}.jsonl", std::process::id()))
    }

    fn entries(n: u32) -> Vec<Entry> {
        (0..n)
            .map(|id| Entry {
                id,
                label: format!("task-{id}"),
            })
            .collect()
    }

    fn write_all(path: &Path, entries: &[Entry], sync_every: usize) {
        let mut writer = JournalWriter::open(path, sync_every).unwrap();
        for entry in entries {
            writer.append(entry).unwrap();
        }
    }

    #[test]
    fn roundtrip_preserves_every_entry() {
        let path = temp("roundtrip");
        std::fs::remove_file(&path).ok();
        let written = entries(10);
        {
            let mut writer = JournalWriter::open(&path, 4).unwrap();
            for entry in &written {
                writer.append(entry).unwrap();
            }
            writer.sync().unwrap();
            assert_eq!(writer.appended(), 10);
        }
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, written);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let back: Vec<Entry> = read_journal("/nonexistent/ssdep-no-journal.jsonl").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_mid_file_corruption_is_fatal() {
        let path = temp("torn");
        std::fs::remove_file(&path).ok();
        write_all(&path, &entries(3), 1);
        // Tear the final line as a crash mid-append would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 8];
        std::fs::write(&path, torn).unwrap();
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, entries(2), "torn tail must be dropped");

        // Corruption before the tail is an error, not a silent skip.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "v2: this is not a frame";
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = read_journal::<Entry>(&path).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("corrupt entry at line 1"), "{message}");
        assert!(
            message.contains(&path.display().to_string()),
            "the error must name the journal: {message}"
        );
        assert!(
            message.contains("journal recover"),
            "the error must point at salvage: {message}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_appends_rather_than_truncates() {
        let path = temp("reopen");
        std::fs::remove_file(&path).ok();
        {
            let mut writer = JournalWriter::open(&path, 2).unwrap();
            writer.append(&entries(1)[0]).unwrap();
        }
        {
            let mut writer = JournalWriter::open(&path, 2).unwrap();
            writer
                .append(&Entry {
                    id: 99,
                    label: "resumed".into(),
                })
                .unwrap();
        }
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].id, 99);
        // Sequence numbering continued across the reopen.
        let report = inspect_journal(&path).unwrap();
        assert_eq!(report.v2_records, 2);
        assert_eq!(report.max_seq, 2);
        assert_eq!(report.missing_seqs, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_plain_json_journals_still_read() {
        let path = temp("v1");
        let written = entries(4);
        let mut text = String::new();
        for entry in &written {
            text.push_str(&serde_json::to_string(entry).unwrap());
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, written);

        // A writer opened on a v1 journal appends v2 frames after them.
        {
            let mut writer = JournalWriter::open(&path, 1).unwrap();
            writer
                .append(&Entry {
                    id: 50,
                    label: "new".into(),
                })
                .unwrap();
        }
        let mixed: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(mixed.len(), 5);
        assert_eq!(mixed[4].id, 50);
        let report = inspect_journal(&path).unwrap();
        assert_eq!(report.v1_records, 4);
        assert_eq!(report.v2_records, 1);
        assert!(report.is_clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc_catches_a_single_flipped_bit() {
        let path = temp("bitflip");
        std::fs::remove_file(&path).ok();
        write_all(&path, &entries(3), 1);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit in the middle record.
        let line_len = bytes.len() / 3;
        bytes[line_len + line_len / 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_journal::<Entry>(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt entry at line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_reports_clean_torn_and_corrupt() {
        let path = temp("inspect");
        std::fs::remove_file(&path).ok();
        write_all(&path, &entries(5), 1);
        let clean = inspect_journal(&path).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.v2_records, 5);
        assert_eq!(clean.max_seq, 5);
        assert!(!clean.torn_tail);

        // Tear the tail: still clean, but the tear is reported.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        let torn = inspect_journal(&path).unwrap();
        assert!(torn.is_clean());
        assert!(torn.torn_tail);
        assert_eq!(torn.v2_records, 4);

        // Corrupt lines 2-3: one span, two lines.
        let lines: Vec<&str> = text.lines().collect();
        let mut mangled: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        mangled[1] = "v2:garbage".to_string();
        mangled[2] = "also not a record".to_string();
        std::fs::write(&path, format!("{}\n", mangled.join("\n"))).unwrap();
        let corrupt = inspect_journal(&path).unwrap();
        assert!(!corrupt.is_clean());
        assert_eq!(corrupt.corrupt_spans.len(), 1);
        assert_eq!(corrupt.corrupt_spans[0].first_line, 2);
        assert_eq!(corrupt.corrupt_spans[0].last_line, 3);
        assert_eq!(corrupt.v2_records, 3);
        assert_eq!(corrupt.missing_seqs, 2, "records 2 and 3 are gone");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_quarantines_corruption_and_the_journal_reads_again() {
        let path = temp("salvage");
        std::fs::remove_file(&path).ok();
        write_all(&path, &entries(6), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[2] = "v2:3:deadbeef:{\"id\":2,\"label\":\"tampered\"}".to_string();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        assert!(read_journal::<Entry>(&path).is_err(), "corrupt pre-salvage");

        let report = salvage_journal(&path).unwrap();
        assert_eq!(report.kept, 5);
        assert_eq!(report.quarantined_lines, 1);
        assert!(!report.torn_tail_dropped);

        let back: Vec<Entry> = read_journal(&path).unwrap();
        let expected: Vec<Entry> = entries(6).into_iter().filter(|e| e.id != 2).collect();
        assert_eq!(back, expected, "every intact record survives");
        let quarantined = std::fs::read_to_string(&report.quarantine).unwrap();
        assert!(quarantined.contains("tampered"), "{quarantined}");

        // Salvage of a clean journal is a no-op (and keeps no sidecar).
        std::fs::remove_file(&report.quarantine).ok();
        let noop = salvage_journal(&path).unwrap();
        assert_eq!(noop.quarantined_lines, 0);
        assert!(!Path::new(&noop.quarantine).exists());

        // A writer opened after salvage does not reuse lost sequence
        // numbers.
        {
            let mut writer = JournalWriter::open(&path, 1).unwrap();
            writer
                .append(&Entry {
                    id: 7,
                    label: "after-salvage".into(),
                })
                .unwrap();
        }
        let inspected = inspect_journal(&path).unwrap();
        assert_eq!(inspected.max_seq, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_every_zero_is_clamped_and_one_syncs_each_append() {
        let path = temp("sync-zero");
        std::fs::remove_file(&path).ok();
        // sync_every == 0 must not divide-by-zero or never-sync; it
        // behaves as 1 (every append durable).
        {
            let mut writer = JournalWriter::open(&path, 0).unwrap();
            for entry in entries(3) {
                writer.append(&entry).unwrap();
            }
            // Every line is already on disk before the writer drops.
            let on_disk = std::fs::read_to_string(&path).unwrap();
            assert_eq!(on_disk.lines().count(), 3);
        }
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, entries(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_larger_than_entry_count_flushes_on_drop() {
        let path = temp("big-batch");
        std::fs::remove_file(&path).ok();
        {
            let mut writer = JournalWriter::open(&path, 100).unwrap();
            for entry in entries(3) {
                writer.append(&entry).unwrap();
            }
            // The batch never filled — drop's best-effort sync persists it.
        }
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, entries(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_retries_through_transient_faults() {
        use crate::sink::{FaultKind, IoFaultPlan};
        let path = temp("retry");
        std::fs::remove_file(&path).ok();
        let mut writer = JournalWriter::open(&path, 1)
            .unwrap()
            .with_retry(RetryPolicy::immediate(2))
            .with_fault_plan(IoFaultPlan::new(FaultKind::ShortWrite, 2));
        for entry in entries(4) {
            writer.append(&entry).unwrap();
        }
        drop(writer);
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, entries(4), "the retried record is intact, once");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_without_retries_fails_and_leaves_no_torn_middle() {
        use crate::sink::{FaultKind, IoFaultPlan};
        let path = temp("no-retry");
        std::fs::remove_file(&path).ok();
        let mut writer = JournalWriter::open(&path, 1)
            .unwrap()
            .with_fault_plan(IoFaultPlan::new(FaultKind::ShortWrite, 2));
        let items = entries(3);
        writer.append(&items[0]).unwrap();
        assert!(writer.append(&items[1]).is_err(), "no retries configured");
        writer.append(&items[2]).unwrap();
        drop(writer);
        // The failed append was rolled back: the journal holds exactly
        // the two successful records, fully intact.
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, vec![items[0].clone(), items[2].clone()]);
        assert!(inspect_journal(&path).unwrap().is_clean());
        std::fs::remove_file(&path).ok();
    }
}

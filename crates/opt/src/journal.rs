//! Append-only JSON-lines checkpoint journals.
//!
//! The evaluation supervisor records one JSON line per finished task so
//! a killed process can resume without repeating completed work. The
//! format is deliberately dumb — human-greppable, append-only, no
//! index — because crash tolerance comes from two properties only:
//!
//! * **appends are atomic at line granularity**: a line is written in
//!   one `write` call and durability is forced with batched `fsync`s,
//!   so after a crash the file is a prefix of the uninterrupted journal
//!   plus at most one torn line;
//! * **readers drop a torn tail**: a final line that does not parse is
//!   treated as the crash artifact it is, while an unparsable line in
//!   the middle of the file is reported as corruption.
//!
//! Record *order* carries no meaning: resume matches records to tasks by
//! their serialized key, so journals written by parallel supervisor runs
//! (whose append order follows completion, not input order) replay
//! exactly like serial ones. Replayed outcomes are copied verbatim —
//! resume never re-runs any part of the evaluation pipeline, including
//! its scenario-independent preparation stage.

use serde::de::DeserializeOwned;
use serde::Serialize;
use ssdep_core::error::Error;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// An append-only journal writer with batched durability.
///
/// Entries are buffered and flushed + `fsync`ed every `sync_every`
/// appends (and on [`JournalWriter::sync`]); entries in an unflushed
/// batch are lost by a crash, which is safe — resume simply repeats
/// that work.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    sync_every: usize,
    pending: usize,
    appended: usize,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Returns the transient [`Error::Io`] when the file cannot be
    /// opened.
    pub fn open(path: impl AsRef<Path>, sync_every: usize) -> Result<JournalWriter, Error> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::io(format!("journal open `{}`", path.display()), e.to_string()))?;
        Ok(JournalWriter {
            path,
            writer: BufWriter::new(file),
            sync_every: sync_every.max(1),
            pending: 0,
            appended: 0,
        })
    }

    /// Appends one entry as a single JSON line, syncing when the batch
    /// fills.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the entry does not
    /// serialize, and the transient [`Error::Io`] on write failures.
    pub fn append<E: Serialize>(&mut self, entry: &E) -> Result<(), Error> {
        let line = serde_json::to_string(entry)
            .map_err(|e| Error::invalid("journal.entry", format!("not serializable: {e}")))?;
        debug_assert!(!line.contains('\n'), "serde_json output is single-line");
        writeln!(self.writer, "{line}").map_err(|e| self.io_error("journal append", e))?;
        self.pending += 1;
        self.appended += 1;
        if self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered entries and forces them to stable storage.
    ///
    /// # Errors
    ///
    /// Returns the transient [`Error::Io`] on flush or fsync failure.
    pub fn sync(&mut self) -> Result<(), Error> {
        self.writer
            .flush()
            .map_err(|e| self.io_error("journal flush", e))?;
        self.writer
            .get_ref()
            .sync_data()
            .map_err(|e| self.io_error("journal fsync", e))?;
        self.pending = 0;
        Ok(())
    }

    /// How many entries have been appended through this writer.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn io_error(&self, operation: &str, e: std::io::Error) -> Error {
        Error::io(
            format!("{operation} `{}`", self.path.display()),
            e.to_string(),
        )
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; a crash skips this
        // and resume re-evaluates the unflushed batch.
        let _ = self.sync();
    }
}

/// Reads every entry of a journal, dropping a torn trailing line.
///
/// A missing file reads as empty (a resume before any checkpoint was
/// written is a fresh start, not an error).
///
/// # Errors
///
/// Returns the transient [`Error::Io`] on read failures, and
/// [`Error::InvalidParameter`] when a line *before* the last fails to
/// parse — that is corruption, not a crash artifact.
pub fn read_journal<E: DeserializeOwned>(path: impl AsRef<Path>) -> Result<Vec<E>, Error> {
    let path = path.as_ref();
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(Error::io(
                format!("journal open `{}`", path.display()),
                e.to_string(),
            ))
        }
    };
    let reader = BufReader::new(file);
    let lines: Vec<String> = reader
        .lines()
        .collect::<Result<_, _>>()
        .map_err(|e| Error::io(format!("journal read `{}`", path.display()), e.to_string()))?;

    let mut entries = Vec::with_capacity(lines.len());
    let last = lines.len().saturating_sub(1);
    for (index, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(entry) => entries.push(entry),
            // The torn tail of a crashed append: resume re-does that task.
            Err(_) if index == last => break,
            Err(e) => {
                return Err(Error::invalid(
                    format!("journal `{}`", path.display()),
                    format!("corrupt entry at line {}: {e}", index + 1),
                ))
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Entry {
        id: u32,
        label: String,
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ssdep-journal-{name}-{}.jsonl", std::process::id()))
    }

    fn entries(n: u32) -> Vec<Entry> {
        (0..n)
            .map(|id| Entry {
                id,
                label: format!("task-{id}"),
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_every_entry() {
        let path = temp("roundtrip");
        std::fs::remove_file(&path).ok();
        let written = entries(10);
        {
            let mut writer = JournalWriter::open(&path, 4).unwrap();
            for entry in &written {
                writer.append(entry).unwrap();
            }
            writer.sync().unwrap();
            assert_eq!(writer.appended(), 10);
        }
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, written);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let back: Vec<Entry> = read_journal("/nonexistent/ssdep-no-journal.jsonl").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_mid_file_corruption_is_fatal() {
        let path = temp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut writer = JournalWriter::open(&path, 1).unwrap();
            for entry in entries(3) {
                writer.append(&entry).unwrap();
            }
        }
        // Tear the final line as a crash mid-append would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 8];
        std::fs::write(&path, torn).unwrap();
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back, entries(2), "torn tail must be dropped");

        // Corruption before the tail is an error, not a silent skip.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "{ this is not json";
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = read_journal::<Entry>(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt entry at line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_appends_rather_than_truncates() {
        let path = temp("reopen");
        std::fs::remove_file(&path).ok();
        {
            let mut writer = JournalWriter::open(&path, 2).unwrap();
            writer.append(&entries(1)[0]).unwrap();
        }
        {
            let mut writer = JournalWriter::open(&path, 2).unwrap();
            writer
                .append(&Entry {
                    id: 99,
                    label: "resumed".into(),
                })
                .unwrap();
        }
        let back: Vec<Entry> = read_journal(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].id, 99);
        std::fs::remove_file(&path).ok();
    }
}

//! The candidate design space.
//!
//! A [`Candidate`] is one choice along each policy dimension —
//! point-in-time copies, tape backup, remote vaulting, inter-array
//! mirroring — over the paper's device palette (Table 4). A
//! [`DesignSpace`] is a set of choices per dimension; its candidates are
//! the cross product, filtered for structural sense (vaulting requires
//! backup, a design must have at least one secondary copy).

use serde::{Deserialize, Serialize};
use ssdep_core::error::Error;
use ssdep_core::hierarchy::{Level, StorageDesign};
use ssdep_core::protection::{
    Backup, IncrementalMode, IncrementalPolicy, PrimaryCopy, ProtectionParams, RemoteMirror,
    RemoteVault, SplitMirror, Technique, VirtualSnapshot,
};
use ssdep_core::units::TimeDelta;

/// The point-in-time dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PitChoice {
    /// No PiT level.
    None,
    /// Split mirrors every `acc_hours`, `retained` kept.
    SplitMirror {
        /// Accumulation window in hours.
        acc_hours: f64,
        /// Retention count.
        retained: u32,
    },
    /// Virtual snapshots every `acc_hours`, `retained` kept.
    Snapshot {
        /// Accumulation window in hours.
        acc_hours: f64,
        /// Retention count.
        retained: u32,
    },
}

/// The tape-backup dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackupChoice {
    /// No backup level.
    None,
    /// Full backups every `acc_hours` over `prop_hours`, `retained`
    /// cycles kept, optionally with daily cumulative incrementals.
    Fulls {
        /// Accumulation window in hours.
        acc_hours: f64,
        /// Propagation window in hours.
        prop_hours: f64,
        /// Retention count (cycles).
        retained: u32,
        /// Number of daily cumulative incrementals per cycle (0 = none).
        daily_incrementals: u32,
    },
}

/// The remote-vaulting dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VaultChoice {
    /// No vault level.
    None,
    /// Ship every `acc_weeks`, hold `hold_hours`, keep `retained` fulls.
    Ship {
        /// Accumulation window in weeks.
        acc_weeks: f64,
        /// Hold window in hours.
        hold_hours: f64,
        /// Retention count.
        retained: u32,
    },
}

/// The inter-array mirroring dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MirrorChoice {
    /// No mirror.
    None,
    /// Synchronous mirroring over `links` OC-3s.
    Synchronous {
        /// WAN link count.
        links: u32,
    },
    /// Batched asynchronous mirroring with `acc_minutes` batches over
    /// `links` OC-3s.
    Batched {
        /// Batch accumulation window in minutes.
        acc_minutes: f64,
        /// WAN link count.
        links: u32,
    },
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Point-in-time choice.
    pub pit: PitChoice,
    /// Backup choice.
    pub backup: BackupChoice,
    /// Vaulting choice.
    pub vault: VaultChoice,
    /// Mirroring choice.
    pub mirror: MirrorChoice,
}

impl Candidate {
    /// Whether the combination is structurally sensible: vaulting needs
    /// a backup to ship, backup needs a consistent PiT source, and at
    /// least one secondary copy must exist.
    pub fn is_coherent(&self) -> bool {
        let has_secondary = !matches!(self.pit, PitChoice::None)
            || !matches!(self.backup, BackupChoice::None)
            || !matches!(self.mirror, MirrorChoice::None);
        let vault_ok =
            matches!(self.vault, VaultChoice::None) || !matches!(self.backup, BackupChoice::None);
        let backup_ok =
            matches!(self.backup, BackupChoice::None) || !matches!(self.pit, PitChoice::None);
        has_secondary && vault_ok && backup_ok
    }

    /// A short descriptive name, e.g.
    /// `"mirror12h-fulls168h+5i-vault4w-batch1m x10"`.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.pit {
            PitChoice::None => {}
            PitChoice::SplitMirror {
                acc_hours,
                retained,
            } => parts.push(format!("mirror{acc_hours}h x{retained}")),
            PitChoice::Snapshot {
                acc_hours,
                retained,
            } => parts.push(format!("snap{acc_hours}h x{retained}")),
        }
        match self.backup {
            BackupChoice::None => {}
            BackupChoice::Fulls {
                acc_hours,
                daily_incrementals,
                ..
            } => {
                if daily_incrementals > 0 {
                    parts.push(format!("fulls{acc_hours}h+{daily_incrementals}i"));
                } else {
                    parts.push(format!("fulls{acc_hours}h"));
                }
            }
        }
        match self.vault {
            VaultChoice::None => {}
            VaultChoice::Ship { acc_weeks, .. } => parts.push(format!("vault{acc_weeks}w")),
        }
        match self.mirror {
            MirrorChoice::None => {}
            MirrorChoice::Synchronous { links } => parts.push(format!("sync x{links}")),
            MirrorChoice::Batched { acc_minutes, links } => {
                parts.push(format!("batch{acc_minutes}m x{links}"))
            }
        }
        if parts.is_empty() {
            "bare primary".to_string()
        } else {
            parts.join(" + ")
        }
    }

    /// Builds the concrete design on the paper's device palette.
    ///
    /// # Errors
    ///
    /// Returns parameter-validation errors for non-physical choices
    /// (e.g. a propagation window longer than the accumulation window).
    pub fn materialize(&self) -> Result<StorageDesign, Error> {
        let mut builder = StorageDesign::builder(self.label());
        let array = builder.add_device(ssdep_core::presets::primary_array_spec())?;

        builder.add_level(Level::new(
            "primary copy",
            Technique::PrimaryCopy(PrimaryCopy::new()),
            array,
        ));

        match self.pit {
            PitChoice::None => {}
            PitChoice::SplitMirror {
                acc_hours,
                retained,
            } => {
                let params = pit_params(acc_hours, retained)?;
                builder.add_level(Level::new(
                    "split mirror",
                    Technique::SplitMirror(SplitMirror::new(params)),
                    array,
                ));
            }
            PitChoice::Snapshot {
                acc_hours,
                retained,
            } => {
                let params = pit_params(acc_hours, retained)?;
                builder.add_level(Level::new(
                    "virtual snapshot",
                    Technique::VirtualSnapshot(VirtualSnapshot::new(params)),
                    array,
                ));
            }
        }

        let mut backup_built = false;
        if let BackupChoice::Fulls {
            acc_hours,
            prop_hours,
            retained,
            daily_incrementals,
        } = self.backup
        {
            let tape = builder.add_device(ssdep_core::presets::tape_library_spec())?;
            let full = ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(acc_hours))
                .propagation_window(TimeDelta::from_hours(prop_hours))
                .hold_window(TimeDelta::from_hours(1.0))
                .retention_count(retained)
                .build()?;
            let backup = if daily_incrementals == 0 {
                Backup::full_only(full)?
            } else {
                Backup::with_incrementals(
                    full,
                    IncrementalPolicy {
                        mode: IncrementalMode::Cumulative,
                        accumulation_window: TimeDelta::from_hours(24.0),
                        propagation_window: TimeDelta::from_hours(12.0),
                        hold_window: TimeDelta::from_hours(1.0),
                        count: daily_incrementals,
                    },
                )?
            };
            builder.add_level(Level::new("tape backup", Technique::Backup(backup), tape));
            backup_built = true;
        }

        if let VaultChoice::Ship {
            acc_weeks,
            hold_hours,
            retained,
        } = self.vault
        {
            if !backup_built {
                return Err(Error::invalid(
                    "candidate.vault",
                    "vaulting requires a backup level to ship from",
                ));
            }
            let vault = builder.add_device(ssdep_core::presets::vault_spec())?;
            let courier = builder.add_device(ssdep_core::presets::air_courier_spec())?;
            let params = ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_weeks(acc_weeks))
                .propagation_window(TimeDelta::from_hours(24.0))
                .hold_window(TimeDelta::from_hours(hold_hours))
                .retention_count(retained)
                .build()?;
            builder.add_level(
                Level::new(
                    "remote vaulting",
                    Technique::RemoteVault(RemoteVault::new(params)),
                    vault,
                )
                .with_transports([courier]),
            );
        }

        match self.mirror {
            MirrorChoice::None => {}
            MirrorChoice::Synchronous { links } => {
                let (remote, wan) = mirror_devices(&mut builder, links)?;
                builder.add_level(
                    Level::new(
                        "sync mirror",
                        Technique::RemoteMirror(RemoteMirror::synchronous()),
                        remote,
                    )
                    .with_transports([wan]),
                );
            }
            MirrorChoice::Batched { acc_minutes, links } => {
                let (remote, wan) = mirror_devices(&mut builder, links)?;
                let params = ProtectionParams::builder()
                    .accumulation_window(TimeDelta::from_minutes(acc_minutes))
                    .retention_count(1)
                    .build()?;
                builder.add_level(
                    Level::new(
                        "async batch mirror",
                        Technique::RemoteMirror(RemoteMirror::batched(params)),
                        remote,
                    )
                    .with_transports([wan]),
                );
            }
        }

        builder.recovery_site(paper_recovery_site());
        builder.build()
    }
}

fn pit_params(acc_hours: f64, retained: u32) -> Result<ProtectionParams, Error> {
    ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(acc_hours))
        .propagation_window(TimeDelta::ZERO)
        .retention_count(retained)
        .build()
}

fn mirror_devices(
    builder: &mut ssdep_core::hierarchy::StorageDesignBuilder,
    links: u32,
) -> Result<(ssdep_core::device::DeviceId, ssdep_core::device::DeviceId), Error> {
    let remote = builder.add_device(ssdep_core::presets::remote_array_spec())?;
    let wan = builder.add_device(ssdep_core::presets::oc3_links_spec(links))?;
    Ok((remote, wan))
}

fn paper_recovery_site() -> ssdep_core::hierarchy::RecoverySite {
    use ssdep_core::failure::Location;
    ssdep_core::hierarchy::RecoverySite {
        location: Location::new(
            ssdep_core::presets::REMOTE_LOCATION.0,
            ssdep_core::presets::REMOTE_LOCATION.1,
            ssdep_core::presets::REMOTE_LOCATION.2,
        ),
        provisioning_time: TimeDelta::from_hours(9.0),
        cost_factor: 0.2,
    }
}

/// A set of choices per dimension; candidates are the coherent members
/// of the cross product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Point-in-time choices.
    pub pit: Vec<PitChoice>,
    /// Backup choices.
    pub backup: Vec<BackupChoice>,
    /// Vaulting choices.
    pub vault: Vec<VaultChoice>,
    /// Mirroring choices.
    pub mirror: Vec<MirrorChoice>,
}

impl DesignSpace {
    /// A small space (a few dozen candidates) covering the paper's
    /// Table 7 territory: split mirrors vs snapshots, weekly vs daily
    /// fulls, four-weekly vs weekly vaulting, and batched mirroring over
    /// 1 or 10 links.
    pub fn minimal() -> DesignSpace {
        DesignSpace {
            pit: vec![
                PitChoice::SplitMirror {
                    acc_hours: 12.0,
                    retained: 4,
                },
                PitChoice::Snapshot {
                    acc_hours: 12.0,
                    retained: 4,
                },
            ],
            backup: vec![
                BackupChoice::Fulls {
                    acc_hours: 168.0,
                    prop_hours: 48.0,
                    retained: 4,
                    daily_incrementals: 0,
                },
                BackupChoice::Fulls {
                    acc_hours: 24.0,
                    prop_hours: 12.0,
                    retained: 28,
                    daily_incrementals: 0,
                },
            ],
            vault: vec![
                VaultChoice::Ship {
                    acc_weeks: 4.0,
                    hold_hours: 684.0,
                    retained: 39,
                },
                VaultChoice::Ship {
                    acc_weeks: 1.0,
                    hold_hours: 12.0,
                    retained: 156,
                },
            ],
            mirror: vec![
                MirrorChoice::None,
                MirrorChoice::Batched {
                    acc_minutes: 1.0,
                    links: 1,
                },
            ],
        }
    }

    /// A broader space (hundreds of candidates) for search experiments.
    pub fn broad() -> DesignSpace {
        DesignSpace {
            pit: vec![
                PitChoice::None,
                PitChoice::SplitMirror {
                    acc_hours: 6.0,
                    retained: 4,
                },
                PitChoice::SplitMirror {
                    acc_hours: 12.0,
                    retained: 4,
                },
                PitChoice::Snapshot {
                    acc_hours: 6.0,
                    retained: 8,
                },
                PitChoice::Snapshot {
                    acc_hours: 12.0,
                    retained: 4,
                },
            ],
            backup: vec![
                BackupChoice::None,
                BackupChoice::Fulls {
                    acc_hours: 168.0,
                    prop_hours: 48.0,
                    retained: 4,
                    daily_incrementals: 0,
                },
                BackupChoice::Fulls {
                    acc_hours: 168.0,
                    prop_hours: 48.0,
                    retained: 4,
                    daily_incrementals: 5,
                },
                BackupChoice::Fulls {
                    acc_hours: 24.0,
                    prop_hours: 12.0,
                    retained: 28,
                    daily_incrementals: 0,
                },
            ],
            vault: vec![
                VaultChoice::None,
                VaultChoice::Ship {
                    acc_weeks: 4.0,
                    hold_hours: 684.0,
                    retained: 39,
                },
                VaultChoice::Ship {
                    acc_weeks: 1.0,
                    hold_hours: 12.0,
                    retained: 156,
                },
            ],
            mirror: vec![
                MirrorChoice::None,
                MirrorChoice::Synchronous { links: 1 },
                MirrorChoice::Batched {
                    acc_minutes: 1.0,
                    links: 1,
                },
                MirrorChoice::Batched {
                    acc_minutes: 1.0,
                    links: 10,
                },
            ],
        }
    }

    /// Iterates the coherent candidates of the cross product.
    pub fn candidates(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.pit.iter().flat_map(move |&pit| {
            self.backup.iter().flat_map(move |&backup| {
                self.vault.iter().flat_map(move |&vault| {
                    self.mirror.iter().filter_map(move |&mirror| {
                        let candidate = Candidate {
                            pit,
                            backup,
                            vault,
                            mirror,
                        };
                        candidate.is_coherent().then_some(candidate)
                    })
                })
            })
        })
    }

    /// The number of coherent candidates.
    pub fn len(&self) -> usize {
        self.candidates().count()
    }

    /// Whether the space has no coherent candidate.
    pub fn is_empty(&self) -> bool {
        self.candidates().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_space_is_fully_coherent() {
        let space = DesignSpace::minimal();
        assert_eq!(space.len(), 2 * 2 * 2 * 2);
        assert!(!space.is_empty());
    }

    #[test]
    fn broad_space_filters_incoherent_combinations() {
        let space = DesignSpace::broad();
        let total = 5 * 4 * 3 * 4;
        assert!(
            space.len() < total,
            "incoherent combinations must be dropped"
        );
        for candidate in space.candidates() {
            assert!(candidate.is_coherent());
        }
    }

    #[test]
    fn vault_without_backup_is_incoherent() {
        let candidate = Candidate {
            pit: PitChoice::SplitMirror {
                acc_hours: 12.0,
                retained: 4,
            },
            backup: BackupChoice::None,
            vault: VaultChoice::Ship {
                acc_weeks: 4.0,
                hold_hours: 684.0,
                retained: 39,
            },
            mirror: MirrorChoice::None,
        };
        assert!(!candidate.is_coherent());
    }

    #[test]
    fn backup_without_pit_is_incoherent() {
        let candidate = Candidate {
            pit: PitChoice::None,
            backup: BackupChoice::Fulls {
                acc_hours: 168.0,
                prop_hours: 48.0,
                retained: 4,
                daily_incrementals: 0,
            },
            vault: VaultChoice::None,
            mirror: MirrorChoice::None,
        };
        assert!(!candidate.is_coherent());
    }

    #[test]
    fn bare_primary_is_incoherent() {
        let candidate = Candidate {
            pit: PitChoice::None,
            backup: BackupChoice::None,
            vault: VaultChoice::None,
            mirror: MirrorChoice::None,
        };
        assert!(!candidate.is_coherent());
        assert_eq!(candidate.label(), "bare primary");
    }

    #[test]
    fn every_minimal_candidate_materializes_and_evaluates() {
        let workload = ssdep_core::presets::cello_workload();
        let requirements = ssdep_core::presets::paper_requirements();
        for candidate in DesignSpace::minimal().candidates() {
            let design = candidate.materialize().unwrap_or_else(|e| {
                panic!("{}: {e}", candidate.label());
            });
            let scenario = ssdep_core::failure::FailureScenario::new(
                ssdep_core::failure::FailureScope::Array,
                ssdep_core::failure::RecoveryTarget::Now,
            );
            ssdep_core::analysis::evaluate(&design, &workload, &requirements, &scenario)
                .unwrap_or_else(|e| panic!("{}: {e}", candidate.label()));
        }
    }

    #[test]
    fn baseline_candidate_reproduces_the_baseline_design_shape() {
        let candidate = Candidate {
            pit: PitChoice::SplitMirror {
                acc_hours: 12.0,
                retained: 4,
            },
            backup: BackupChoice::Fulls {
                acc_hours: 168.0,
                prop_hours: 48.0,
                retained: 4,
                daily_incrementals: 0,
            },
            vault: VaultChoice::Ship {
                acc_weeks: 4.0,
                hold_hours: 684.0,
                retained: 39,
            },
            mirror: MirrorChoice::None,
        };
        let design = candidate.materialize().unwrap();
        assert_eq!(design.levels().len(), 4);
        let reference = ssdep_core::presets::baseline_design();
        assert_eq!(design.levels().len(), reference.levels().len());
        assert_eq!(design.devices().len(), reference.devices().len());
    }

    #[test]
    fn labels_are_descriptive() {
        let candidate = Candidate {
            pit: PitChoice::Snapshot {
                acc_hours: 6.0,
                retained: 8,
            },
            backup: BackupChoice::Fulls {
                acc_hours: 24.0,
                prop_hours: 12.0,
                retained: 28,
                daily_incrementals: 5,
            },
            vault: VaultChoice::None,
            mirror: MirrorChoice::Batched {
                acc_minutes: 1.0,
                links: 10,
            },
        };
        let label = candidate.label();
        assert!(label.contains("snap6h"));
        assert!(label.contains("+5i"));
        assert!(label.contains("batch1m x10"));
    }
}

//! Fingerprint equivalence suite: the structural fingerprint must
//! induce exactly the same equality partition as the serde-JSON
//! reference over every preset spec plus a deterministic sample of the
//! broad candidate space — no collisions between distinct inputs, no
//! spurious inequality between identical ones — and must be stable
//! across recomputation, clones, and threads. This is the gate that
//! keeps the serde fallback ([`Fingerprint::of_serde`]) honest as the
//! equivalence reference while the structural hash carries the hot
//! path.

// Test helpers expect on corpus plumbing: a panic is the failure
// report itself.
#![allow(clippy::expect_used)]
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::presets;
use ssdep_core::workload::Workload;
use ssdep_opt::sink::Lcg;
use ssdep_opt::space::DesignSpace;
use ssdep_opt::Fingerprint;

/// Every preset design, a duplicated baseline (so the equal side of the
/// partition is exercised), and a seeded sample of the broad candidate
/// space. Deterministic: the same corpus every run, on every machine.
fn corpus() -> Vec<(StorageDesign, Workload)> {
    let workload = presets::cello_workload();
    let mut pairs = vec![
        (presets::baseline_design(), workload.clone()),
        (presets::baseline_design(), workload.clone()),
    ];
    for design in presets::what_if_designs() {
        pairs.push((design, workload.clone()));
    }
    let space = DesignSpace::broad();
    let candidates: Vec<_> = space.candidates().collect();
    let mut rng = Lcg::new(0x05ee_d0f1_e1d5_u64);
    for _ in 0..200 {
        let pick = rng.below(candidates.len() as u64) as usize;
        if let Ok(design) = candidates[pick].materialize() {
            pairs.push((design, workload.clone()));
        }
    }
    pairs
}

/// The serde-JSON rendering of a pair — the ground truth for "are these
/// inputs structurally identical?".
fn json_pair(design: &StorageDesign, workload: &Workload) -> String {
    let design = serde_json::to_string(design).expect("design to JSON");
    let workload = serde_json::to_string(workload).expect("workload to JSON");
    format!("{design}\u{1f}{workload}")
}

#[test]
fn structural_fingerprints_partition_exactly_like_the_serde_json_reference() {
    let corpus = corpus();
    let entries: Vec<(Fingerprint, Fingerprint, String)> = corpus
        .iter()
        .map(|(design, workload)| {
            (
                Fingerprint::of(design, workload).expect("structural fingerprint"),
                Fingerprint::of_serde(design, workload).expect("serde fingerprint"),
                json_pair(design, workload),
            )
        })
        .collect();
    for (i, a) in entries.iter().enumerate() {
        for (j, b) in entries.iter().enumerate().skip(i + 1) {
            let same_input = a.2 == b.2;
            assert_eq!(
                a.0 == b.0,
                same_input,
                "structural fingerprint disagrees with the JSON reference for \
                 corpus entries {i} and {j}: {} vs {} (same_input = {same_input})",
                a.0,
                b.0,
            );
            assert_eq!(
                a.1 == b.1,
                same_input,
                "the serde fallback itself collided or split on corpus entries {i} and {j}",
            );
        }
    }
    // The corpus must actually exercise both sides of the partition.
    let distinct: std::collections::BTreeSet<u64> = entries.iter().map(|e| e.0.value()).collect();
    assert!(
        distinct.len() > 10,
        "corpus too uniform: {}",
        distinct.len()
    );
    assert!(
        distinct.len() < entries.len(),
        "corpus has no identical pair, the equality side is untested"
    );
}

#[test]
fn fingerprints_are_stable_across_recomputation_clones_and_threads() {
    for (design, workload) in corpus() {
        let (first, bytes) =
            Fingerprint::weigh(&design, &workload).expect("structural fingerprint");
        assert!(
            bytes > 0,
            "a non-empty model hashes a non-empty byte stream"
        );
        let (again, bytes_again) = Fingerprint::weigh(&design, &workload).expect("recomputation");
        assert_eq!(first, again, "recomputation must not drift");
        assert_eq!(bytes, bytes_again, "hashed byte count must not drift");
        let (cloned_design, cloned_workload) = (design.clone(), workload.clone());
        assert_eq!(
            first,
            Fingerprint::of(&cloned_design, &cloned_workload).expect("clone fingerprint"),
            "a deep clone is structurally identical, its fingerprint must match"
        );
        let from_thread = std::thread::spawn(move || Fingerprint::of(&design, &workload))
            .join()
            .expect("fingerprint thread")
            .expect("fingerprint on another thread");
        assert_eq!(
            first, from_thread,
            "fingerprints must not depend on the thread"
        );
    }
}

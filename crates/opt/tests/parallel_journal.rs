//! Chunked-claim parallel supervision contracts: results assembled in
//! input order are byte-identical at every job count, the checkpoint
//! journal carries the same record set whether one worker or eight
//! wrote it (append order may vary — resume matches by key, not
//! position), a serial journal is bit-for-bit reproducible, and
//! `--resume` replays completed work without re-evaluating a single
//! task regardless of which job count produced the journal.

// Test helpers expect on journal plumbing: a panic is the failure
// report itself.
#![allow(clippy::expect_used)]
use ssdep_opt::{Supervisor, SupervisorConfig};
use std::path::{Path, PathBuf};

const TASKS: u32 = 200;

/// A run's completed results plus its sorted journal record payloads.
type RunShape = (Vec<(u32, u64)>, Vec<String>);

/// Deterministic, input-sensitive evaluation: any reordering or
/// re-evaluation-with-drift bug changes an observable answer.
fn eval(i: u32) -> u64 {
    u64::from(i).wrapping_mul(2_654_435_761).rotate_left(7) ^ 0xa5a5_5a5a
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ssdep-parallel-journal-{name}-{}.jsonl",
        std::process::id()
    ))
}

fn supervisor(jobs: usize, checkpoint: Option<PathBuf>, resume: Option<PathBuf>) -> Supervisor {
    Supervisor::new(SupervisorConfig {
        jobs,
        checkpoint,
        resume,
        sync_every: 1,
        ..SupervisorConfig::default()
    })
}

/// The journal's record payloads, sorted — the multiset identity that
/// must hold across job counts. The `v2:<seq>:<crc>:` frame prefix is
/// stripped: sequence numbers (and therefore CRCs) follow append order,
/// which is exactly what parallel claiming is allowed to vary.
fn sorted_records(path: &Path) -> Vec<String> {
    let bytes = std::fs::read(path).expect("read journal");
    let mut records: Vec<String> = String::from_utf8(bytes)
        .expect("journal is UTF-8")
        .lines()
        .map(|line| {
            line.splitn(4, ':')
                .nth(3)
                .unwrap_or_else(|| panic!("unframed journal line: {line}"))
                .to_string()
        })
        .collect();
    records.sort();
    records
}

#[test]
fn results_and_journal_records_are_identical_at_every_job_count() {
    let items: Vec<u32> = (0..TASKS).collect();
    let mut reference: Option<RunShape> = None;
    for jobs in [1usize, 2, 8] {
        let path = temp(&format!("jobs{jobs}"));
        std::fs::remove_file(&path).ok();
        let run = supervisor(jobs, Some(path.clone()), None)
            .run(&items, |&i: &u32| Ok(eval(i)))
            .expect("supervised run");
        assert!(run.failed.is_empty(), "jobs={jobs}: {:?}", run.failed);
        assert_eq!(run.provenance.evaluated, items.len());
        assert!(!run.provenance.journal_degraded);
        let lines = sorted_records(&path);
        assert_eq!(lines.len(), items.len(), "one journal record per task");
        match &reference {
            None => reference = Some((run.completed.clone(), lines)),
            Some((completed, records)) => {
                assert_eq!(
                    &run.completed, completed,
                    "jobs={jobs}: results must be byte-identical to the serial run"
                );
                assert_eq!(
                    &lines, records,
                    "jobs={jobs}: the journal must carry the same record set"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn a_serial_journal_is_bit_for_bit_reproducible() {
    let items: Vec<u32> = (0..TASKS).collect();
    let mut runs = Vec::new();
    for pass in 0..2 {
        let path = temp(&format!("repro{pass}"));
        std::fs::remove_file(&path).ok();
        supervisor(1, Some(path.clone()), None)
            .run(&items, |&i: &u32| Ok(eval(i)))
            .expect("supervised run");
        runs.push(std::fs::read(&path).expect("read journal"));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(
        runs[0], runs[1],
        "two serial runs must write identical bytes"
    );
}

#[test]
fn resume_replays_fully_whoever_wrote_the_journal() {
    let items: Vec<u32> = (0..TASKS).collect();
    let reference = supervisor(1, None, None)
        .run(&items, |&i: &u32| Ok(eval(i)))
        .expect("reference run")
        .completed;
    // Journals written at each job count, each resumed at a *different*
    // job count: the chunked-claim order a parallel run journaled in
    // must replay cleanly under any later topology.
    for (writer_jobs, resume_jobs) in [(1usize, 8usize), (2, 1), (8, 2)] {
        let path = temp(&format!("resume-w{writer_jobs}-r{resume_jobs}"));
        std::fs::remove_file(&path).ok();
        supervisor(writer_jobs, Some(path.clone()), None)
            .run(&items, |&i: &u32| Ok(eval(i)))
            .expect("journaling run");
        let resumed = supervisor(resume_jobs, None, Some(path.clone()))
            .run(&items, |&i: &u32| -> Result<u64, ssdep_core::Error> {
                // Any fresh evaluation lands in `failed` and trips the
                // assertions below: a full journal must replay fully.
                Err(ssdep_core::Error::invalid(
                    "resume",
                    format!("task {i} was re-evaluated despite a complete journal"),
                ))
            })
            .expect("resumed run");
        assert_eq!(
            resumed.provenance.resumed,
            items.len(),
            "w{writer_jobs}-r{resume_jobs}"
        );
        assert_eq!(
            resumed.provenance.evaluated, 0,
            "w{writer_jobs}-r{resume_jobs}"
        );
        assert!(resumed.failed.is_empty(), "{:?}", resumed.failed);
        assert_eq!(
            resumed.completed, reference,
            "replayed results must be byte-identical to a fresh run"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn a_partial_parallel_journal_resumes_without_repeating_work() {
    let items: Vec<u32> = (0..TASKS).collect();
    let half = &items[..(TASKS as usize) / 2];
    let path = temp("partial");
    std::fs::remove_file(&path).ok();
    supervisor(8, Some(path.clone()), None)
        .run(half, |&i: &u32| Ok(eval(i)))
        .expect("half run");
    let run = supervisor(2, Some(path.clone()), Some(path.clone()))
        .run(&items, |&i: &u32| Ok(eval(i)))
        .expect("resumed full run");
    assert_eq!(run.provenance.resumed, half.len());
    assert_eq!(run.provenance.evaluated, items.len() - half.len());
    let expected: Vec<(u32, u64)> = items.iter().map(|&i| (i, eval(i))).collect();
    assert_eq!(run.completed, expected);
    // The topped-up journal now covers everything: a second resume
    // replays fully.
    let replayed = supervisor(1, None, Some(path.clone()))
        .run(&items, |&i: &u32| Ok(eval(i)))
        .expect("full replay");
    assert_eq!(replayed.provenance.resumed, items.len());
    assert_eq!(replayed.provenance.evaluated, 0);
    std::fs::remove_file(&path).ok();
}

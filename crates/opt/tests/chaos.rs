//! Chaos harness: seeded storage-fault torture for the checkpoint path.
//!
//! Each seed drives one torture loop: a partial run checkpoints some
//! work, the journal is damaged the way real storage fails (torn tail,
//! bit rot, garbage spans), salvage quarantines the damage, and a
//! resumed run must reach an answer byte-identical to a fault-free run
//! without re-evaluating any record that survived. Separate loops
//! inject write-side faults (EIO, short writes, ENOSPC) through the
//! supervisor's sink seam and assert the retry and degraded-mode
//! contracts. The CLI-level version of the same loop lives in
//! `devtools/chaos` (`ssdep-chaos`) and `devtools/chaos-smoke.sh`.

use ssdep_core::error::RetryPolicy;
use ssdep_opt::journal::{inspect_journal, read_journal, salvage_journal};
use ssdep_opt::sink::{flip_bits_in_file, FaultKind, IoFaultPlan, Lcg};
use ssdep_opt::supervisor::TaskRecord;
use ssdep_opt::{Supervisor, SupervisorConfig};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const TASKS: u32 = 20;

/// The (deterministic) evaluation under torture: cheap, but with an
/// answer that detects any re-evaluation-with-drift bug.
fn eval(i: u32) -> u64 {
    u64::from(i) * u64::from(i) + 17
}

fn temp(name: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ssdep-chaos-{name}-{seed}-{}.jsonl",
        std::process::id()
    ))
}

fn config(path: &Path) -> SupervisorConfig {
    SupervisorConfig {
        checkpoint: Some(path.to_path_buf()),
        resume: Some(path.to_path_buf()),
        sync_every: 1,
        ..SupervisorConfig::default()
    }
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(format!("{}.quarantine", path.display())).ok();
}

#[test]
fn torture_seeds_resume_to_the_fault_free_answer() {
    let items: Vec<u32> = (0..TASKS).collect();
    let reference = Supervisor::default()
        .run(&items, |&i: &u32| Ok(eval(i)))
        .unwrap()
        .completed;

    for seed in 1..=10u64 {
        let mut rng = Lcg::new(seed);
        let path = temp("torture", seed);
        cleanup(&path);

        // Phase 1: a run dies after finishing k of the tasks (the kill
        // is simulated by only handing it the first k items — the
        // journal state is identical to an abort after task k).
        let k = 1 + rng.below(u64::from(TASKS) - 1) as usize;
        Supervisor::new(config(&path))
            .run(&items[..k], |&i: &u32| Ok(eval(i)))
            .unwrap();

        // Phase 2: seeded storage damage.
        match rng.below(3) {
            0 => {
                // A torn tail, as a crash mid-append leaves behind.
                let bytes = std::fs::read(&path).unwrap();
                let cut = (1 + rng.below(30) as usize).min(bytes.len() - 1);
                std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
            }
            1 => {
                // Silent bit rot somewhere in the file.
                flip_bits_in_file(&path, seed, 1 + rng.below(3) as usize).unwrap();
            }
            _ => {
                // A garbage span spliced into the middle.
                let text = std::fs::read_to_string(&path).unwrap();
                let mut lines: Vec<&str> = text.lines().collect();
                let at = rng.below(lines.len() as u64) as usize;
                lines.insert(at, "v2:99:zzzzzzzz:{\"garbage\":true}");
                std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
            }
        }

        // Phase 3: salvage. Afterwards the journal must read cleanly,
        // and every surviving record must carry the fault-free answer —
        // salvage never invents or mangles a record.
        salvage_journal(&path).unwrap();
        assert!(inspect_journal(&path).unwrap().is_clean(), "seed {seed}");
        let surviving = read_journal::<TaskRecord<u32, u64>>(&path).unwrap();
        let mut survivors: HashSet<u32> = HashSet::new();
        for record in &surviving {
            match record {
                TaskRecord::Completed { item, outcome } => {
                    assert_eq!(*outcome, eval(*item), "seed {seed}");
                    survivors.insert(*item);
                }
                TaskRecord::Failed(failed) => {
                    panic!("seed {seed}: unexpected failure record {failed:?}")
                }
            }
        }

        // Phase 4: resume over the full item list. No surviving task is
        // re-evaluated, and the final answer is byte-identical to the
        // fault-free run.
        let evaluated: Arc<Mutex<Vec<u32>>> = Arc::default();
        let log = Arc::clone(&evaluated);
        let resumed = Supervisor::new(config(&path))
            .run(&items, move |&i: &u32| {
                log.lock().unwrap().push(i);
                Ok(eval(i))
            })
            .unwrap();
        assert_eq!(resumed.completed, reference, "seed {seed}");
        assert_eq!(resumed.provenance.resumed, survivors.len(), "seed {seed}");
        let evaluated = evaluated.lock().unwrap();
        assert_eq!(
            evaluated.len(),
            items.len() - survivors.len(),
            "seed {seed}"
        );
        for i in evaluated.iter() {
            assert!(
                !survivors.contains(i),
                "seed {seed}: surviving task {i} was re-evaluated"
            );
        }
        cleanup(&path);
    }
}

#[test]
fn injected_transient_write_faults_are_survived_without_degradation() {
    let items: Vec<u32> = (0..TASKS).collect();
    let reference = Supervisor::default()
        .run(&items, |&i: &u32| Ok(eval(i)))
        .unwrap()
        .completed;

    for seed in 1..=8u64 {
        let mut rng = Lcg::new(seed);
        let path = temp("transient", seed);
        cleanup(&path);
        let kind = if seed % 2 == 0 {
            FaultKind::AppendEio
        } else {
            FaultKind::ShortWrite
        };
        let at = 1 + rng.below(u64::from(TASKS)) as usize;
        let mut cfg = config(&path);
        cfg.retry = RetryPolicy::immediate(2);
        cfg.journal_faults = Some(IoFaultPlan { kind, at, seed });
        let run = Supervisor::new(cfg)
            .run(&items, |&i: &u32| Ok(eval(i)))
            .unwrap();
        assert!(
            !run.provenance.journal_degraded,
            "seed {seed}: retries must clear a transient {kind:?}"
        );
        assert_eq!(run.completed, reference, "seed {seed}");
        assert!(inspect_journal(&path).unwrap().is_clean(), "seed {seed}");

        // The journal is complete: a resume replays everything.
        let resumed = Supervisor::new(config(&path))
            .run(&items, |_: &u32| -> Result<u64, _> {
                Err(ssdep_core::Error::invalid("eval", "must not re-run"))
            })
            .unwrap();
        assert_eq!(resumed.provenance.resumed, items.len(), "seed {seed}");
        assert_eq!(resumed.completed, reference, "seed {seed}");
        cleanup(&path);
    }
}

#[test]
fn injected_enospc_degrades_the_journal_never_the_run() {
    let items: Vec<u32> = (0..TASKS).collect();
    let reference = Supervisor::default()
        .run(&items, |&i: &u32| Ok(eval(i)))
        .unwrap()
        .completed;

    for seed in 1..=8u64 {
        let mut rng = Lcg::new(seed);
        let path = temp("enospc", seed);
        cleanup(&path);
        let at = 1 + rng.below(u64::from(TASKS)) as usize;
        let mut cfg = config(&path);
        cfg.retry = RetryPolicy::immediate(1);
        cfg.journal_faults = Some(IoFaultPlan::new(FaultKind::AppendEnospc, at));
        let run = Supervisor::new(cfg)
            .run(&items, |&i: &u32| Ok(eval(i)))
            .unwrap();
        assert!(run.provenance.journal_degraded, "seed {seed}");
        assert!(run.journal_error.is_some(), "seed {seed}");
        // The full sweep survived the full disk.
        assert_eq!(run.completed, reference, "seed {seed}");
        // Whatever landed before the disk filled still resumes.
        let records = read_journal::<TaskRecord<u32, u64>>(&path).unwrap();
        assert!(records.len() < items.len(), "seed {seed}");
        for record in &records {
            match record {
                TaskRecord::Completed { item, outcome } => {
                    assert_eq!(*outcome, eval(*item), "seed {seed}")
                }
                TaskRecord::Failed(failed) => {
                    panic!("seed {seed}: unexpected failure record {failed:?}")
                }
            }
        }
        cleanup(&path);
    }
}

/// The acceptance-criterion shape on the real search space: torture the
/// checkpoint of a supervised exhaustive search, salvage, resume, and
/// demand a byte-identical ranking with no completed candidate
/// re-evaluated.
#[test]
fn search_ranking_is_byte_identical_after_torture_and_salvage() {
    use ssdep_opt::search::{paper_scenarios, supervised_exhaustive};
    use ssdep_opt::space::DesignSpace;

    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = paper_scenarios();
    let space = DesignSpace::minimal();
    let fault_free = supervised_exhaustive(
        &space,
        &workload,
        &requirements,
        &scenarios,
        &Supervisor::default(),
    )
    .unwrap();
    let reference = serde_json::to_string(&fault_free.result.ranked).unwrap();

    for seed in [3u64, 11] {
        let path = temp("search", seed);
        cleanup(&path);
        let full = supervised_exhaustive(
            &space,
            &workload,
            &requirements,
            &scenarios,
            &Supervisor::new(config(&path)),
        )
        .unwrap();
        assert!(full.provenance.evaluated > 0);

        // Bit rot strikes the finished checkpoint; salvage quarantines
        // the damaged records.
        flip_bits_in_file(&path, seed, 2).unwrap();
        salvage_journal(&path).unwrap();
        assert!(inspect_journal(&path).unwrap().is_clean(), "seed {seed}");

        // The resumed search re-evaluates only what the rot destroyed
        // and lands on the identical ranking, byte for byte.
        let resumed = supervised_exhaustive(
            &space,
            &workload,
            &requirements,
            &scenarios,
            &Supervisor::new(config(&path)),
        )
        .unwrap();
        let lost = full.provenance.total - resumed.provenance.resumed;
        assert_eq!(resumed.provenance.evaluated, lost, "seed {seed}");
        assert!(
            lost < full.provenance.total,
            "seed {seed}: salvage must keep most records"
        );
        let ranking = serde_json::to_string(&resumed.result.ranked).unwrap();
        assert_eq!(ranking, reference, "seed {seed}");
        cleanup(&path);
    }
}

//! Deliberately-bad fixture: `Ordering::Relaxed` on atomics gating
//! cross-thread control flow, which L022 must flag. Exercised by
//! devtools/lint-gate.sh, which requires exit 2 and an L022 finding.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn spin_until_done(done: &AtomicBool) {
    while !done.load(Ordering::Relaxed) {
        std::hint::spin_loop();
    }
}

pub fn latch_check(ready: &AtomicBool) -> bool {
    if ready.load(Ordering::Relaxed) {
        return true;
    }
    false
}

pub fn raise_stop_flag(stop: &AtomicBool) {
    stop.store(true, Ordering::Relaxed);
}

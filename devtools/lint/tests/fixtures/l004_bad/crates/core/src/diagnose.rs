//! L004 fixture (bad): D900 is defined but neither catalogued nor
//! tested; D901 is catalogued twice; D902 is catalogued but undefined.

pub fn diagnose() -> Vec<&'static str> {
    vec!["D900", "D901"]
}

#[cfg(test)]
mod tests {
    #[test]
    fn d901_fires() {
        assert!(super::diagnose().contains(&"D901"));
    }
}

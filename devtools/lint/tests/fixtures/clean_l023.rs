//! Fixture: container-iteration shapes that *look* like L023 violations
//! but are not — the lint must stay silent. Not compiled — lexed by the
//! lint tests.

use std::collections::{BTreeMap, HashMap, HashSet};

/// The sorted-collect fix shape: collect, sort, then emit.
pub fn render_sorted(counts: &HashMap<String, u64>) -> String {
    let mut keys: Vec<String> = counts.keys().cloned().collect();
    keys.sort();
    let mut out = String::new();
    for key in &keys {
        out.push_str(key);
        out.push('\n');
    }
    out
}

/// `BTreeMap` iterates in key order; emitting from it directly is the
/// other fix shape.
pub fn btree_renders_directly(ordered: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (key, value) in ordered.iter() {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

/// Order-insensitive reductions do not depend on iteration order.
pub fn reductions(sizes: &HashMap<String, u64>, seen: &HashSet<String>) -> (u64, usize) {
    let total: u64 = sizes.values().sum();
    (total, seen.len())
}

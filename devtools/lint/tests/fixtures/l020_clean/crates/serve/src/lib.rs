//! Half of the clean L020 fixture workspace: both sides take `alpha`
//! before `beta`, so the acquired-while-holding graph has edges but no
//! cycle — the lint must stay silent.

use std::sync::Mutex;

pub struct Shared {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn serve_path(shared: &Shared) -> u64 {
    let a = match shared.alpha.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let b = match shared.beta.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *a + *b
}

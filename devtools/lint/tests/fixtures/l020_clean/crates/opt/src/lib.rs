//! The other half of the clean L020 fixture workspace: the same
//! `alpha`-before-`beta` global order as the serve side — consistent
//! orders never cycle.

use std::sync::Mutex;

pub struct Shared {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn opt_path(shared: &Shared) -> u64 {
    let a = match shared.alpha.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let b = match shared.beta.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *a + *b
}

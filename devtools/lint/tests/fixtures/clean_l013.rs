//! Negative fixture for L013: structural hashing, a justified serde
//! fallback, deserialization, and test-region serialization must all
//! stay silent.

fn fingerprint(design: &Design, workload: &Workload) -> (u64, usize) {
    ssdep_core::fingerprint::fingerprint_pair(design, workload)
}

fn serde_fallback(design: &Design) -> Result<String, Error> {
    // ssdep-lint: allow(L013, equivalence reference kept off the hot path)
    serde_json::to_string(design)
}

fn reading_is_not_the_hot_path_tax(bytes: &[u8]) -> Result<Design, Error> {
    serde_json::from_slice(bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_serialization_is_fine() {
        let _ = serde_json::to_string(&42u64);
    }
}

//! The other half of the deliberately-bad L020 fixture workspace: this
//! side takes `beta` before `alpha`, inverting the serve side's order.
//! Each file is locally consistent; only the cross-file graph sees the
//! deadlock.

use std::sync::Mutex;

pub struct Shared {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn opt_path(shared: &Shared) -> u64 {
    let b = match shared.beta.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let a = match shared.alpha.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *a + *b
}

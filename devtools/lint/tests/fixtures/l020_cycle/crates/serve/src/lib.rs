//! Half of the deliberately-bad L020 fixture workspace: the serve side
//! takes `alpha` before `beta`, the opt side takes them in the opposite
//! order — a cross-file lock-order cycle the workspace graph must find,
//! naming both acquisition sites.

use std::sync::Mutex;

pub struct Shared {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn serve_path(shared: &Shared) -> u64 {
    let a = match shared.alpha.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let b = match shared.beta.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *a + *b
}

//! Known-bad fixture: lossy numeric casts in model code (L005). Not
//! compiled — lexed by the lint tests.

pub fn lossy(window: TimeDelta, rate: f64) -> u64 {
    let slots = window.as_secs() as u64;
    let scaled = (rate * 2.5) as u32;
    let narrow = rate as f32;
    slots + scaled as u64 + narrow as u64
}

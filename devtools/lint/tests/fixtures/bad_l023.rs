//! Deliberately-bad fixture: `HashMap` iteration feeding byte-stable
//! output, which L023 must flag. Exercised by devtools/lint-gate.sh,
//! which requires exit 2 and an L023 finding on this file.

use std::collections::HashMap;

pub fn render_counts(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (key, value) in counts.iter() {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

pub fn journal_keys(index: &HashMap<String, u64>) -> Vec<String> {
    index.keys().cloned().collect()
}

//! Known-bad fixture: raw `f64` dimensioned quantities in public
//! signatures (L001). Not compiled — lexed by the lint tests.

pub fn set_accumulation_window(window_secs: f64) -> bool {
    window_secs > 0.0
}

pub fn provisioning_delay_hours(&self) -> f64 {
    9.0
}

pub const fn shelf_capacity_bytes(slots: u64, per_slot_bytes: f64) -> f64 {
    slots as f64 * per_slot_bytes
}

//! Deliberately-bad fixture: unbounded handoffs and undeadlined joins
//! that L012 must flag. Exercised by devtools/lint-gate.sh, which
//! requires exit 2 and an L012 finding on this file.

use std::collections::VecDeque;

fn unbounded_handoff() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u64>();
}

fn unbounded_backlog() -> VecDeque<u64> {
    VecDeque::new()
}

fn undeadlined_drain(handle: std::thread::JoinHandle<()>) {
    let _ = handle.join();
}

//! Deliberately-bad fixture: checkpoint code opening files directly
//! instead of going through the journal sink seam. Every `File::create`
//! and `OpenOptions` mention below must fire L011.

use std::fs::OpenOptions;

fn checkpoint_directly(path: &str) -> std::io::Result<()> {
    let _ = std::fs::File::create(path)?;
    Ok(())
}

fn append_directly(path: &str) -> std::io::Result<()> {
    let _ = OpenOptions::new().append(true).open(path)?;
    Ok(())
}

fn read_side_is_fine(path: &str) -> std::io::Result<Vec<u8>> {
    let _ = std::fs::File::open(path)?;
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_in_tests_are_fine() {
        let _ = std::fs::File::create("scratch.tmp");
    }
}

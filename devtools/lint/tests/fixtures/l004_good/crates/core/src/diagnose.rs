//! L004 fixture (good): every defined code is catalogued and tested.

pub fn diagnose() -> Vec<&'static str> {
    vec!["D900"]
}

#[cfg(test)]
mod tests {
    #[test]
    fn d900_fires() {
        assert!(super::diagnose().contains(&"D900"));
    }
}

//! Deliberately-bad fixture: Mutex/RwLock guards held across blocking
//! I/O that L021 must flag. Exercised by devtools/lint-gate.sh, which
//! requires exit 2 and an L021 finding on this file.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{mpsc::Receiver, Mutex, RwLock};

pub fn write_under_lock(state: &Mutex<Vec<u8>>, stream: &mut TcpStream) -> std::io::Result<()> {
    let guard = match state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    stream.write_all(&guard)
}

pub fn fsync_under_read(index: &RwLock<u64>, file: &std::fs::File) -> std::io::Result<u64> {
    let snapshot = match index.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    file.sync_all()?;
    Ok(*snapshot)
}

pub fn recv_under_lock(jobs: &Mutex<Receiver<u64>>) -> Option<u64> {
    let guard = match jobs.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.recv().ok()
}

//! Known-bad fixture: panics in library code (L002). Not compiled —
//! lexed by the lint tests.

pub fn risky(input: Option<u32>) -> u32 {
    let value = input.unwrap();
    if value > 100 {
        panic!("too big");
    }
    match value {
        0 => unreachable!("filtered upstream"),
        v => parse(v).expect("parses"),
    }
}

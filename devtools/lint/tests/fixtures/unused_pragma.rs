//! Fixture: stale and malformed pragmas must surface as L010 warnings.
//! Not compiled — lexed by the lint tests.

// ssdep-lint: allow(L002, nothing on the next line actually unwraps)
pub fn innocent(input: Option<u32>) -> u32 {
    input.unwrap_or(0)
}

// ssdep-lint: allow(L002)
pub fn missing_reason(input: Option<u32>) -> u32 {
    input.unwrap_or(1)
}

// ssdep-lint: deny(L002, wrong verb)
pub fn wrong_verb(input: Option<u32>) -> u32 {
    input.unwrap_or(2)
}

//! Fixture: constructs that *look* like violations but are not — the
//! lint must stay silent. Not compiled — lexed by the lint tests.

/// Doc comments may say `x.unwrap()` or `panic!` freely, and mention
/// `partial_cmp(..).unwrap()` or casts like `1.5 as u64`.
pub fn negatives(input: Option<u32>) -> u32 {
    // Strings are masked: none of these fire.
    let message = "call .unwrap() then panic!(now) and sort_by partial_cmp";
    let raw = r#"also .expect("here") and 2.5 as u32"#;
    let escaped = "quote \" then .unwrap()";
    /* block comments too: x.unwrap(), 3.7 as i64 /* nested .expect("x") */ */
    let fallback = input.unwrap_or(0);
    let or_else = input.unwrap_or_else(|| message.len() as u32 + raw.len() as u32);
    let ch = '"';
    let escaped_char = '\'';
    let _ = (escaped, ch, escaped_char);
    let widened = fallback as u64 + u64::from(or_else);
    widened as u32
}

/// Lifetimes must not confuse the char-literal scanner.
pub fn lifetimes<'a>(first: &'a str, second: &'a str) -> &'a str {
    if first.len() > second.len() {
        first
    } else {
        second
    }
}

/// `PartialOrd` implementations define `partial_cmp`; that is not a
/// call site.
impl PartialOrd for Thing {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.rank.partial_cmp(&other.rank)
    }
}

/// Dimensionless f64 parameters are exactly right (no L001): ratios,
/// factors, and `per`-rates carry no single unit.
pub fn dimensionless(scale_factor: f64, load_fraction: f64, shipments_per_year: f64) -> f64 {
    scale_factor * load_fraction * shipments_per_year
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_cast() {
        let v: Option<f64> = Some(1.5);
        let x = v.unwrap();
        let n = (x * 10.0).round() as u64;
        assert_eq!(n, 15);
        let mut scores = vec![2.0, 1.0];
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if scores.is_empty() {
            panic!("impossible");
        }
    }
}

#[allow(clippy::unwrap_used)]
pub fn justified_by_clippy(input: Option<u32>) -> u32 {
    // The clippy allow above is the justification dialect L002 respects.
    input.unwrap()
}

//! Deliberately-bad fixture: serde serialization on the evaluation
//! hot path that L013 must flag. Exercised by devtools/lint-gate.sh,
//! which requires exit 2 and an L013 finding on this file.

fn fingerprint_via_serde(design: &Design) -> Result<String, Error> {
    serde_json::to_string(design)
}

fn bytes_via_serde(workload: &Workload) -> Result<Vec<u8>, Error> {
    serde_json::to_vec(workload)
}

fn weigh_pretty(design: &Design) -> Result<String, Error> {
    serde_json::to_string_pretty(design)
}

//! Fixture: guard/blocking-I/O shapes that *look* like L021 violations
//! but are not — the lint must stay silent. Not compiled — lexed by the
//! lint tests.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

/// The canonical fix shape: copy out of the guard inside a block, let
/// the guard drop with the block, then do the blocking write.
pub fn copy_then_write(state: &Mutex<Vec<u8>>, stream: &mut TcpStream) -> std::io::Result<()> {
    let bytes = {
        let guard = match state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clone()
    };
    stream.write_all(&bytes)
}

/// An explicit `drop(guard)` before the blocking call ends the scope.
pub fn drop_then_sync(state: &Mutex<u64>, file: &std::fs::File) -> std::io::Result<()> {
    let guard = match state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let _snapshot = *guard;
    drop(guard);
    file.sync_all()
}

/// `write(buf)` takes arguments, so it is I/O, not a lock acquisition —
/// no guard exists here at all.
pub fn io_write_is_not_a_lock(stream: &mut TcpStream, buf: &[u8]) -> std::io::Result<usize> {
    stream.write(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests may hold guards across blocking calls: deterministic
    /// single-threaded harnesses do it on purpose.
    #[test]
    fn tests_may_block_under_guard(state: &Mutex<Vec<u8>>, stream: &mut TcpStream) {
        let guard = match state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = stream.write_all(&guard);
    }
}

//! Fixture: atomic shapes that *look* like L022 violations but are not
//! — the lint must stay silent. Not compiled — lexed by the lint tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Control flow under SeqCst is exactly what the lint asks for.
pub fn seqcst_spin(done: &AtomicBool) {
    while !done.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }
}

/// Acquire on the latch read pairs with a Release store elsewhere.
pub fn acquire_latch(shutdown: &AtomicBool) -> bool {
    shutdown.load(Ordering::Acquire)
}

/// Counters may relax: fetch_* RMWs and statistics loads do not gate
/// control flow, and `total`/`hits` are not flag names.
pub fn relaxed_counters(hits: &AtomicU64, total: &AtomicU64) -> u64 {
    hits.fetch_add(1, Ordering::Relaxed);
    total.load(Ordering::Relaxed)
}

/// Release on the publishing side of a flag is correct.
pub fn publish(done: &AtomicBool) {
    done.store(true, Ordering::Release);
}

//! Fixture: two identical violations, one pragma — the pragma must
//! suppress exactly the finding on its own/next line, leaving the other
//! to fire. Not compiled — lexed by the lint tests.

use std::collections::HashMap;

pub fn two_loops(cache: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    // ssdep-lint: allow(L023, the first loop feeds a debug sink only)
    for (key, _value) in cache.iter() {
        out.push_str(key);
    }
    for (key, _value) in cache.iter() {
        out.push_str(key);
    }
    out
}

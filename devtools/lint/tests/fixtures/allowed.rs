//! Fixture: every violation carries a justified pragma, so the lint
//! must report nothing. Not compiled — lexed by the lint tests.

// ssdep-lint: allow(L001, interop shim for a C caller that cannot take newtypes)
pub fn set_accumulation_window(window_secs: f64) -> bool {
    window_secs > 0.0
}

pub fn init(input: Option<u32>) -> u32 {
    input.unwrap() // ssdep-lint: allow(L002, init-only path, exhaustively covered by tests)
}

pub fn rank(mut scores: Vec<f64>) -> Vec<f64> {
    // ssdep-lint: allow(L003, L002, scores are clamped to finite values upstream)
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores
}

pub fn cells(ratio: f64, width: usize) -> usize {
    // ssdep-lint: allow(L005, L002, ratio is bounded to the bar width by construction)
    (ratio * width as f64).round() as usize
}

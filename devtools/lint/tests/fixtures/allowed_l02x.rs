//! Fixture: every concurrency/determinism violation carries a justified
//! pragma, so the lint must report nothing. Not compiled — lexed by the
//! lint tests.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub struct OrderedPair {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn forward(pair: &OrderedPair) -> u64 {
    let a = match pair.alpha.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    // ssdep-lint: allow(L020, both locks are only ever taken by the single maintenance thread)
    let b = match pair.beta.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *a + *b
}

pub fn reverse(pair: &OrderedPair) -> u64 {
    let b = match pair.beta.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let a = match pair.alpha.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *a + *b
}

pub fn serialized_write(socket: &Mutex<TcpStream>, payload: &[u8]) -> std::io::Result<()> {
    let mut guard = match socket.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    // ssdep-lint: allow(L021, single-writer socket - the lock IS the write serialization point)
    guard.write_all(payload)
}

pub fn best_effort_probe(closed: &AtomicBool) -> bool {
    // ssdep-lint: allow(L022, advisory fast-path probe; the authoritative check re-reads under the lock)
    closed.load(Ordering::Relaxed)
}

pub fn debug_dump(cache: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    // ssdep-lint: allow(L023, operator debug dump - never journaled or diffed by CI)
    for (key, value) in cache.iter() {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

//! Known-bad fixture: float ordering through `partial_cmp` (L003). Not
//! compiled — lexed by the lint tests.

pub fn rank(mut scores: Vec<f64>) -> Option<f64> {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let best = scores
        .iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
        .copied();
    let _ord = 1.0_f64.partial_cmp(&2.0).expect("comparable");
    best
}

//! End-to-end fixture tests for `ssdep-lint`.
//!
//! Each deliberately-bad fixture under `tests/fixtures/` must fire exactly
//! the lint it was written for, the pragma fixture must suppress every
//! violation it contains, and the negative fixture must stay silent. The
//! two `l004_*` trees are miniature workspaces exercising the
//! cross-artifact D-code consistency pass.

use std::path::{Path, PathBuf};

use ssdep_lint::{lint_paths, lint_workspace, Finding, Report, Severity};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint a single fixture file through the public entry point.
fn lint_fixture(name: &str) -> Report {
    let root = fixture_root();
    lint_paths(&root, &[root.join(name)]).unwrap_or_else(|e| panic!("lint {name}: {e}"))
}

/// The codes of every finding in `report`, in report order.
fn codes(report: &Report) -> Vec<&str> {
    report.findings().iter().map(|f| f.code.as_str()).collect()
}

fn count(report: &Report, code: &str) -> usize {
    report.findings().iter().filter(|f| f.code == code).count()
}

#[test]
fn bad_l001_fires_on_raw_f64_signatures() {
    let report = lint_fixture("bad_l001.rs");
    assert_eq!(
        count(&report, "L001"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L001"; 3], "no other lint may fire");
    assert_eq!(report.exit_status(false), 2);
    let lines: Vec<usize> = report.findings().iter().map(|f| f.line).collect();
    assert_eq!(lines, [4, 8, 12]);
    // Each finding names the newtype the signature should use instead.
    let messages: String = report
        .findings()
        .iter()
        .map(|f| format!("{}\n{}\n", f.message, f.suggestion))
        .collect();
    assert!(messages.contains("TimeDelta"), "messages: {messages}");
    assert!(messages.contains("Bytes"), "messages: {messages}");
}

#[test]
fn bad_l002_fires_on_panicking_calls() {
    let report = lint_fixture("bad_l002.rs");
    assert_eq!(
        count(&report, "L002"),
        4,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L002"; 4]);
    assert_eq!(report.exit_status(false), 2);
    let named: Vec<&str> = ["unwrap()", "panic!", "unreachable!", "expect()"]
        .into_iter()
        .filter(|what| report.findings().iter().any(|f| f.message.contains(what)))
        .collect();
    assert_eq!(named.len(), 4, "each construct named once; got {named:?}");
}

#[test]
fn bad_l003_fires_on_float_ordering() {
    let report = lint_fixture("bad_l003.rs");
    assert_eq!(
        count(&report, "L003"),
        5,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(report.exit_status(false), 2);
    for finding in report.findings().iter().filter(|f| f.code == "L003") {
        assert!(
            finding.suggestion.contains("total_cmp"),
            "L003 must point at total_cmp: {finding:?}"
        );
    }
}

#[test]
fn bad_l005_fires_on_lossy_casts() {
    let report = lint_fixture("bad_l005.rs");
    assert_eq!(
        count(&report, "L005"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L005"; 3]);
    assert_eq!(report.exit_status(false), 2);
    assert!(
        report.findings().iter().any(|f| f.message.contains("f32")),
        "the f64 -> f32 narrowing cast must be reported"
    );
}

#[test]
fn bad_l011_fires_on_direct_checkpoint_io() {
    let report = lint_fixture("bad_l011.rs");
    assert_eq!(
        count(&report, "L011"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L011"; 3]);
    assert_eq!(report.exit_status(false), 2);
    for finding in report.findings() {
        assert!(
            finding.suggestion.contains("JournalSink"),
            "L011 must point at the sink seam: {finding:?}"
        );
    }
}

#[test]
fn bad_l013_fires_on_hot_path_serialization() {
    let report = lint_fixture("bad_l013.rs");
    assert_eq!(
        count(&report, "L013"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L013"; 3], "no other lint may fire");
    assert_eq!(report.exit_status(false), 2);
    let lines: Vec<usize> = report.findings().iter().map(|f| f.line).collect();
    assert_eq!(lines, [6, 10, 14], "to_string, to_vec, to_string_pretty");
    for finding in report.findings() {
        assert!(
            finding.suggestion.contains("fingerprint_pair"),
            "L013 must point at the structural fingerprint: {finding:?}"
        );
    }
}

#[test]
fn clean_l013_fixture_is_silent() {
    let report = lint_fixture("clean_l013.rs");
    assert!(
        report.findings().is_empty(),
        "structural hashing, the pragma'd fallback, deserialization, and \
         test regions must not fire: {:#?}",
        report.findings()
    );
    assert_eq!(report.exit_status(true), 0);
}

#[test]
fn allowed_fixture_is_fully_suppressed() {
    let report = lint_fixture("allowed.rs");
    assert!(
        report.findings().is_empty(),
        "justified pragmas must silence every lint: {:#?}",
        report.findings()
    );
    assert_eq!(report.exit_status(true), 0);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let report = lint_fixture("clean.rs");
    assert!(
        report.findings().is_empty(),
        "false positives on the negative fixture: {:#?}",
        report.findings()
    );
    assert_eq!(report.exit_status(true), 0);
}

#[test]
fn stale_and_malformed_pragmas_warn() {
    let report = lint_fixture("unused_pragma.rs");
    assert_eq!(
        count(&report, "L010"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L010"; 3]);
    assert!(report
        .findings()
        .iter()
        .all(|f| f.severity == Severity::Warning));
    // Warnings alone pass by default and fail only under --deny-warnings.
    assert_eq!(report.exit_status(false), 0);
    assert_eq!(report.exit_status(true), 1);
}

#[test]
fn l004_inconsistent_workspace_is_reported() {
    let root = fixture_root().join("l004_bad");
    let report = lint_workspace(&root).expect("lint l004_bad");
    assert!(
        report.findings().iter().all(|f| f.code == "L004"),
        "only L004 expected: {:#?}",
        report.findings()
    );
    assert_eq!(report.exit_status(false), 2);

    let errors: Vec<&str> = report
        .findings()
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(errors.len(), 3, "errors: {errors:#?}");
    assert!(
        errors
            .iter()
            .any(|m| m.contains("D901") && m.contains("duplicate")),
        "duplicate catalog row for D901: {errors:#?}"
    );
    assert!(
        errors
            .iter()
            .any(|m| m.contains("D900") && m.contains("catalog")),
        "D900 missing from the DESIGN.md catalog: {errors:#?}"
    );
    assert!(
        errors
            .iter()
            .any(|m| m.contains("D900") && m.contains("test")),
        "D900 never exercised by a test: {errors:#?}"
    );

    let warnings: Vec<&Finding> = report
        .findings()
        .iter()
        .filter(|f| f.severity == Severity::Warning)
        .collect();
    assert_eq!(warnings.len(), 1, "warnings: {warnings:#?}");
    assert!(
        warnings[0].message.contains("D902"),
        "stale catalog row D902: {warnings:#?}"
    );
    assert!(
        warnings[0].path.ends_with("DESIGN.md"),
        "stale rows anchor to the catalog file: {warnings:#?}"
    );
}

#[test]
fn l004_consistent_workspace_is_clean() {
    let root = fixture_root().join("l004_good");
    let report = lint_workspace(&root).expect("lint l004_good");
    assert!(
        report.findings().is_empty(),
        "consistent D-code artifacts must lint clean: {:#?}",
        report.findings()
    );
}

#[test]
fn bad_l021_fires_on_guard_across_blocking_io() {
    let report = lint_fixture("bad_l021.rs");
    assert_eq!(
        count(&report, "L021"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L021"; 3], "no other lint may fire");
    assert_eq!(report.exit_status(false), 2);
    let lines: Vec<usize> = report.findings().iter().map(|f| f.line).collect();
    assert_eq!(lines, [14, 22, 31]);
    // Each finding names the blocking call and the acquisition line.
    let messages: String = report
        .findings()
        .iter()
        .map(|f| format!("{}\n", f.message))
        .collect();
    for what in ["`write_all`", "`sync_all`", "`recv`", "acquired line 10"] {
        assert!(messages.contains(what), "messages: {messages}");
    }
}

#[test]
fn clean_l021_fixture_is_silent() {
    let report = lint_fixture("clean_l021.rs");
    assert!(
        report.findings().is_empty(),
        "copy-out, drop, arg-taking write, and test regions must not fire: {:#?}",
        report.findings()
    );
}

#[test]
fn bad_l022_fires_on_relaxed_control_flow() {
    let report = lint_fixture("bad_l022.rs");
    assert_eq!(
        count(&report, "L022"),
        3,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L022"; 3]);
    assert_eq!(report.exit_status(false), 2);
    let lines: Vec<usize> = report.findings().iter().map(|f| f.line).collect();
    assert_eq!(lines, [8, 14, 21], "spin loop, latch check, flag store");
    let messages: String = report
        .findings()
        .iter()
        .map(|f| format!("{}\n", f.message))
        .collect();
    assert!(
        messages.contains("loop condition") && messages.contains("latch"),
        "each finding explains which control-flow shape fired: {messages}"
    );
}

#[test]
fn clean_l022_fixture_is_silent() {
    let report = lint_fixture("clean_l022.rs");
    assert!(
        report.findings().is_empty(),
        "SeqCst/Acquire flags and Relaxed counters must not fire: {:#?}",
        report.findings()
    );
}

#[test]
fn bad_l023_fires_on_hash_iteration() {
    let report = lint_fixture("bad_l023.rs");
    assert_eq!(
        count(&report, "L023"),
        2,
        "findings: {:#?}",
        report.findings()
    );
    assert_eq!(codes(&report), ["L023"; 2]);
    assert_eq!(report.exit_status(false), 2);
    let lines: Vec<usize> = report.findings().iter().map(|f| f.line).collect();
    assert_eq!(lines, [9, 19]);
    for finding in report.findings() {
        assert!(
            finding.suggestion.contains("BTreeMap"),
            "L023 must point at the ordered alternative: {finding:?}"
        );
    }
}

#[test]
fn clean_l023_fixture_is_silent() {
    let report = lint_fixture("clean_l023.rs");
    assert!(
        report.findings().is_empty(),
        "sorted collects, BTreeMap, and reductions must not fire: {:#?}",
        report.findings()
    );
}

#[test]
fn allowed_l02x_fixture_is_fully_suppressed() {
    let report = lint_fixture("allowed_l02x.rs");
    assert!(
        report.findings().is_empty(),
        "justified pragmas must silence L020-L023 (and leave no stale L010): {:#?}",
        report.findings()
    );
    assert_eq!(report.exit_status(true), 0);
}

#[test]
fn a_pragma_suppresses_exactly_one_finding() {
    let report = lint_fixture("pragma_scope_l023.rs");
    // Two identical violations, one pragma: exactly the un-annotated
    // loop survives, and the pragma is counted as used (no L010).
    assert_eq!(codes(&report), ["L023"], "{:#?}", report.findings());
    assert_eq!(report.findings()[0].line, 13);
    assert_eq!(report.exit_status(false), 2);
}

#[test]
fn l020_cycle_workspace_names_both_acquisition_sites() {
    let root = fixture_root().join("l020_cycle");
    let report = lint_workspace(&root).expect("lint l020_cycle");
    assert_eq!(codes(&report), ["L020"], "{:#?}", report.findings());
    assert_eq!(report.exit_status(false), 2);
    let finding = &report.findings()[0];
    assert!(
        finding.message.contains("`alpha` -> `beta` -> `alpha`"),
        "the cycle is spelled out: {finding:?}"
    );
    for site in ["crates/serve/src/lib.rs:18", "crates/opt/src/lib.rs:18"] {
        assert!(
            finding.message.contains(site),
            "both acquisition sites are named: {finding:?}"
        );
    }
}

#[test]
fn l020_consistent_order_workspace_is_clean() {
    let root = fixture_root().join("l020_clean");
    let report = lint_workspace(&root).expect("lint l020_clean");
    assert!(
        report.findings().is_empty(),
        "a consistent global lock order must not fire: {:#?}",
        report.findings()
    );
}

#[test]
fn every_catalog_code_has_a_design_doc_row() {
    // The same discipline L004 enforces on runtime D-codes, applied to
    // the lint's own codes: every `--explain` entry must have a row in
    // the DESIGN.md §11 catalog table.
    let design_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let design = std::fs::read_to_string(&design_path).expect("read DESIGN.md");
    for entry in ssdep_lint::catalog::CATALOG {
        let row = format!("| {} ", entry.code);
        assert!(
            design.contains(&row),
            "{} is explained by the tool but missing from DESIGN.md §11",
            entry.code
        );
    }
}

#[test]
fn json_rendering_is_byte_stable() {
    let root = fixture_root();
    let files: Vec<PathBuf> = [
        "bad_l001.rs",
        "bad_l002.rs",
        "bad_l003.rs",
        "bad_l005.rs",
        "bad_l021.rs",
        "bad_l022.rs",
        "bad_l023.rs",
        "pragma_scope_l023.rs",
    ]
    .iter()
    .map(|n| root.join(n))
    .collect();
    let first = lint_paths(&root, &files).expect("first pass");
    let second = lint_paths(&root, &files).expect("second pass");
    assert_eq!(
        first.render_json(),
        second.render_json(),
        "identical input must serialize to identical bytes"
    );
    // The JSON carries every field CI consumes.
    let json = first.render_json();
    for key in [
        "\"code\"",
        "\"severity\"",
        "\"path\"",
        "\"line\"",
        "\"message\"",
        "\"suggestion\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.ends_with('\n'), "JSON output is newline-terminated");
}

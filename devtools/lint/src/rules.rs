//! The L0xx domain lints, over [`LexedFile`]s.
//!
//! Codes are stable and catalogued in `DESIGN.md` §11, mirroring the
//! runtime diagnostics' `D0xx` scheme (`DESIGN.md` §10):
//!
//! * **L001** — raw `f64` in a public function signature of a core model
//!   module where a `units.rs` newtype exists.
//! * **L002** — `unwrap()` / `expect()` / `panic!()` / `unreachable!()`
//!   in library (non-test, non-CLI) code.
//! * **L003** — float ordering via `partial_cmp(..).unwrap()` or a
//!   float comparator built on `partial_cmp` instead of `total_cmp`.
//! * **L004** — `D0xx` cross-artifact consistency (source ↔ DESIGN.md
//!   catalog ↔ tests); implemented in [`crate::workspace`].
//! * **L005** — lossy `as` numeric casts (float → int truncation, or
//!   `as f32` narrowing) in model code.
//! * **L010** — an `ssdep-lint` pragma that is malformed or suppresses
//!   nothing (so stale allowlists cannot linger).
//! * **L011** — direct `File::create` / `OpenOptions` in checkpoint
//!   code outside the journal sink seam, where fault injection and
//!   rollback cannot see the write.
//! * **L012** — unbounded queue construction (`mpsc::channel`,
//!   `VecDeque::new`) or a bare `JoinHandle::join()` in daemon code
//!   outside the admission seam, where backpressure and drain deadlines
//!   cannot apply.
//! * **L013** — `serde_json::to_string` / `to_vec` in evaluation
//!   hot-path modules outside an explicitly allowed serialization seam,
//!   where the structural fingerprint exists to avoid per-candidate
//!   serialization.
//! * **L020** — lock-order cycles in the workspace acquired-while-
//!   holding graph; implemented in [`crate::graph`] over the per-file
//!   guard scopes from [`crate::parser`].
//! * **L021** — a Mutex/RwLock guard held across blocking I/O
//!   (`sync_all`, `write_all`, TcpStream ops, `recv`, `.join()`).
//! * **L022** — `Ordering::Relaxed` on an atomic that gates cross-
//!   thread control flow (flags read in loop conditions or latch
//!   checks).
//! * **L023** — `HashMap`/`HashSet` iteration feeding byte-stable
//!   output paths (journal lines, `/evaluate` JSON, `--json` CLI
//!   output), which must use `BTreeMap` or a sorted collect.

use crate::findings::{Finding, Severity};
use crate::lexer::{
    LexedFile, FLAG_ALLOW_EXPECT, FLAG_ALLOW_PANIC, FLAG_ALLOW_UNREACHABLE, FLAG_ALLOW_UNWRAP,
    FLAG_TEST,
};
use crate::parser::ParsedFile;

/// Which lint families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct Role {
    /// Library code: the panic-free policy (L002) applies.
    pub library: bool,
    /// Model arithmetic: the lossy-cast policy (L005) applies.
    pub model: bool,
    /// Core model API surface: the dimensional-signature policy (L001)
    /// applies.
    pub signatures: bool,
    /// Checkpoint code: the journal-sink-seam policy (L011) applies.
    pub io_seam: bool,
    /// Daemon code: the bounded-queue / deadlined-join policy (L012)
    /// applies.
    pub bounded: bool,
    /// Evaluation hot-path code: the no-serde-serialization policy
    /// (L013) applies.
    pub hot_path: bool,
    /// Cross-thread code: the guard-liveness and memory-ordering
    /// policies (L020/L021/L022) apply.
    pub concurrency: bool,
    /// Byte-stable output code: the deterministic-iteration policy
    /// (L023) applies.
    pub stable: bool,
}

impl Role {
    /// Every policy applies — used for explicit file arguments and the
    /// fixture suite.
    pub const ALL: Role = Role {
        library: true,
        model: true,
        signatures: true,
        io_seam: true,
        bounded: true,
        hot_path: true,
        concurrency: true,
        stable: true,
    };
}

/// Runs every per-file lint and resolves pragmas. Returns the surviving
/// findings plus L010s for unused or malformed pragmas.
pub fn lint_file(path: &str, lexed: &LexedFile, role: Role) -> Vec<Finding> {
    let findings = raw_findings(path, lexed, role);
    apply_pragmas(path, lexed, findings)
}

/// The per-file findings *before* pragma suppression. The workspace
/// driver uses this so cross-artifact (L004) findings can join the same
/// pragma resolution.
pub fn raw_findings(path: &str, lexed: &LexedFile, role: Role) -> Vec<Finding> {
    let text = Text::new(lexed);
    let mut findings = Vec::new();
    if role.signatures {
        lint_signatures(path, &text, &mut findings);
    }
    if role.library {
        lint_panics(path, &text, &mut findings);
    }
    lint_float_ordering(path, &text, &mut findings);
    if role.model {
        lint_lossy_casts(path, &text, &mut findings);
    }
    if role.io_seam {
        lint_io_seam(path, &text, &mut findings);
    }
    if role.bounded {
        lint_bounded(path, &text, &mut findings);
    }
    if role.hot_path {
        lint_hot_serde(path, &text, &mut findings);
    }
    if role.concurrency {
        let parsed = ParsedFile::parse(lexed);
        lint_guard_blocking(path, &text, &parsed, &mut findings);
        lint_relaxed_ordering(path, &text, &mut findings);
    }
    if role.stable {
        lint_hash_iteration(path, &text, &mut findings);
    }
    findings
}

/// Applies `// ssdep-lint: allow(L00x, reason)` pragmas: a pragma on the
/// same line as a finding (or alone on the line directly above it)
/// suppresses matching codes. Unused and malformed pragmas become L010
/// warnings so allowlists cannot go stale.
pub fn apply_pragmas(path: &str, lexed: &LexedFile, findings: Vec<Finding>) -> Vec<Finding> {
    let mut used = vec![false; lexed.pragmas.len()];
    let mut kept = Vec::with_capacity(findings.len());
    'findings: for finding in findings {
        for (i, pragma) in lexed.pragmas.iter().enumerate() {
            if pragma.malformed.is_some() || !pragma.codes.contains(&finding.code) {
                continue;
            }
            let applies =
                pragma.line == finding.line || (pragma.own_line && pragma.line + 1 == finding.line);
            if applies {
                used[i] = true;
                continue 'findings;
            }
        }
        kept.push(finding);
    }
    for (i, pragma) in lexed.pragmas.iter().enumerate() {
        if let Some(why) = &pragma.malformed {
            kept.push(Finding::new(
                "L010",
                Severity::Warning,
                path,
                pragma.line,
                format!("malformed ssdep-lint pragma: {why}"),
                "write `// ssdep-lint: allow(L00x, reason)` with a non-empty reason",
            ));
        } else if !used[i] {
            kept.push(Finding::new(
                "L010",
                Severity::Warning,
                path,
                pragma.line,
                format!(
                    "unused ssdep-lint pragma: allow({}) suppresses nothing here",
                    pragma.codes.join(", ")
                ),
                "remove the stale pragma (the violation it excused is gone)",
            ));
        }
    }
    kept
}

/// The masked text as a char vector with a per-char line map.
struct Text<'a> {
    chars: Vec<char>,
    line_at: Vec<usize>,
    lexed: &'a LexedFile,
}

impl<'a> Text<'a> {
    fn new(lexed: &'a LexedFile) -> Text<'a> {
        let chars: Vec<char> = lexed.masked.chars().collect();
        let mut line_at = Vec::with_capacity(chars.len());
        let mut line = 1usize;
        for &c in &chars {
            line_at.push(line);
            if c == '\n' {
                line += 1;
            }
        }
        Text {
            chars,
            line_at,
            lexed,
        }
    }

    fn line(&self, i: usize) -> usize {
        self.line_at
            .get(i)
            .copied()
            .unwrap_or_else(|| self.line_at.last().copied().unwrap_or(1))
    }

    fn in_test(&self, i: usize) -> bool {
        self.lexed.has_flag(self.line(i), FLAG_TEST)
    }

    fn allowed(&self, i: usize, flag: u8) -> bool {
        self.lexed.has_flag(self.line(i), flag)
    }

    /// Yields `(start, end)` of each identifier token.
    fn idents(&self) -> IdentIter<'_> {
        IdentIter { text: self, i: 0 }
    }

    fn ident_at(&self, range: (usize, usize)) -> String {
        self.chars[range.0..range.1].iter().collect()
    }

    /// First non-whitespace char index at or after `i`.
    fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.chars.len() && self.chars[i].is_whitespace() {
            i += 1;
        }
        i
    }

    /// Last non-whitespace char index strictly before `i`, if any.
    fn prev_non_ws(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.chars[j].is_whitespace())
    }

    /// Index just past the `)`/`}`/`]`/`>` matching the opener at `open`.
    fn match_delim(&self, open: usize) -> usize {
        let (o, c) = match self.chars[open] {
            '(' => ('(', ')'),
            '[' => ('[', ']'),
            '{' => ('{', '}'),
            '<' => ('<', '>'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < self.chars.len() {
            if self.chars[i] == o {
                depth += 1;
            } else if self.chars[i] == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.chars.len()
    }

    fn slice(&self, start: usize, end: usize) -> String {
        self.chars[start.min(self.chars.len())..end.min(self.chars.len())]
            .iter()
            .collect()
    }
}

struct IdentIter<'a> {
    text: &'a Text<'a>,
    i: usize,
}

impl Iterator for IdentIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let chars = &self.text.chars;
        while self.i < chars.len() {
            let c = chars[self.i];
            if c.is_alphabetic() || c == '_' {
                let start = self.i;
                while self.i < chars.len()
                    && (chars[self.i].is_alphanumeric() || chars[self.i] == '_')
                {
                    self.i += 1;
                }
                return Some((start, self.i));
            }
            if c.is_ascii_digit() {
                // Skip numeric literals whole so suffixes like `2f64`
                // don't read as identifiers. A `.` only continues the
                // literal when a digit follows — `1.0_f64.method()` must
                // stop before `.method` so the call is still visible.
                while self.i < chars.len() {
                    let c = chars[self.i];
                    let continues = c.is_alphanumeric()
                        || c == '_'
                        || (c == '.' && chars.get(self.i + 1).is_some_and(|n| n.is_ascii_digit()));
                    if !continues {
                        break;
                    }
                    self.i += 1;
                }
                continue;
            }
            self.i += 1;
        }
        None
    }
}

// ---------------------------------------------------------------------
// L002 — panics in library code
// ---------------------------------------------------------------------

fn lint_panics(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    for (start, end) in text.idents() {
        if text.in_test(start) {
            continue;
        }
        let ident = text.ident_at((start, end));
        let line = text.line(start);
        match ident.as_str() {
            "unwrap" | "expect" => {
                let after_dot = text
                    .prev_non_ws(start)
                    .is_some_and(|j| text.chars[j] == '.');
                let calls = text.chars.get(text.skip_ws(end)) == Some(&'(');
                if !(after_dot && calls) {
                    continue;
                }
                let flag = if ident == "unwrap" {
                    FLAG_ALLOW_UNWRAP
                } else {
                    FLAG_ALLOW_EXPECT
                };
                if text.allowed(start, flag) {
                    continue;
                }
                findings.push(Finding::new(
                    "L002",
                    Severity::Error,
                    path,
                    line,
                    format!("`.{ident}()` in library code can panic the evaluation pipeline"),
                    "return a typed `Error` (crates/core/src/error.rs), or justify with \
                     `#[allow(clippy::…_used)]` or `// ssdep-lint: allow(L002, reason)`",
                ));
            }
            "panic" | "unreachable" => {
                if text.chars.get(text.skip_ws(end)) != Some(&'!') {
                    continue;
                }
                let flag = if ident == "panic" {
                    FLAG_ALLOW_PANIC
                } else {
                    FLAG_ALLOW_UNREACHABLE
                };
                if text.allowed(start, flag) {
                    continue;
                }
                findings.push(Finding::new(
                    "L002",
                    Severity::Error,
                    path,
                    line,
                    format!("`{ident}!` in library code can panic the evaluation pipeline"),
                    "return a typed `Error` (crates/core/src/error.rs), or justify with \
                     `// ssdep-lint: allow(L002, reason)`",
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// L003 — float ordering
// ---------------------------------------------------------------------

const COMPARATOR_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

fn lint_float_ordering(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    for (start, end) in text.idents() {
        if text.in_test(start) {
            continue;
        }
        let ident = text.ident_at((start, end));
        if ident == "partial_cmp" {
            // A `fn partial_cmp` *definition* (PartialOrd impl) is fine.
            if preceded_by_keyword(text, start, "fn") {
                continue;
            }
            let open = text.skip_ws(end);
            if text.chars.get(open) != Some(&'(') {
                continue;
            }
            let close = text.match_delim(open);
            let mut after = text.skip_ws(close);
            if text.chars.get(after) == Some(&'.') {
                after = text.skip_ws(after + 1);
                let rest: String = text.slice(after, after + 7);
                if rest.starts_with("unwrap") || rest.starts_with("expect") {
                    findings.push(Finding::new(
                        "L003",
                        Severity::Error,
                        path,
                        text.line(start),
                        "float ordering via `partial_cmp(..).unwrap()` panics on NaN",
                        "use `f64::total_cmp` (IEEE 754 total order) instead",
                    ));
                }
            }
        } else if COMPARATOR_SINKS.contains(&ident.as_str()) {
            let open = text.skip_ws(end);
            if text.chars.get(open) != Some(&'(') {
                continue;
            }
            let close = text.match_delim(open);
            let arg = text.slice(open, close);
            if arg.contains("partial_cmp") {
                findings.push(Finding::new(
                    "L003",
                    Severity::Error,
                    path,
                    text.line(start),
                    format!("`{ident}` comparator built on `partial_cmp` is not a total order"),
                    "compare with `f64::total_cmp` (or `Ord` keys) instead",
                ));
            }
        }
    }
}

/// Whether the token before `start` (skipping whitespace) is exactly the
/// keyword `kw`.
fn preceded_by_keyword(text: &Text<'_>, start: usize, kw: &str) -> bool {
    let Some(last) = text.prev_non_ws(start) else {
        return false;
    };
    let mut begin = last + 1;
    while begin > 0 {
        let c = text.chars[begin - 1];
        if c.is_alphanumeric() || c == '_' {
            begin -= 1;
        } else {
            break;
        }
    }
    text.slice(begin, last + 1) == kw
}

// ---------------------------------------------------------------------
// L005 — lossy numeric casts
// ---------------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Substrings of a cast's source expression that mark it as float-valued
/// (so the cast truncates).
const FLOAT_MARKERS: &[&str] = &[
    ".round(",
    ".floor(",
    ".ceil(",
    ".trunc(",
    ".sqrt(",
    "as_secs(",
    "as_minutes(",
    "as_hours(",
    "as_days(",
    "as_weeks(",
    "as_years(",
    ".value(",
    "f64",
    "f32",
];

fn lint_lossy_casts(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    for (start, end) in text.idents() {
        if text.in_test(start) || text.ident_at((start, end)) != "as" {
            continue;
        }
        let ty_start = text.skip_ws(end);
        let ty_end = ident_end(text, ty_start);
        let ty = text.slice(ty_start, ty_end);
        if ty == "f32" {
            findings.push(Finding::new(
                "L005",
                Severity::Error,
                path,
                text.line(start),
                "`as f32` in model code silently drops f64 precision",
                "keep model arithmetic in f64 / the units.rs newtypes, or justify with \
                 `// ssdep-lint: allow(L005, reason)`",
            ));
            continue;
        }
        if !INT_TYPES.contains(&ty.as_str()) {
            continue;
        }
        let source = cast_source(text, start);
        if is_floatish(&source) {
            findings.push(Finding::new(
                "L005",
                Severity::Error,
                path,
                text.line(start),
                format!(
                    "float → `{ty}` `as` cast silently truncates fractions and collapses \
                     NaN to 0"
                ),
                "use the sanctioned helpers in crates/core/src/units.rs (`round_to_u64`, \
                 `whole_secs`, …) or justify with `// ssdep-lint: allow(L005, reason)`",
            ));
        }
    }
}

fn ident_end(text: &Text<'_>, start: usize) -> usize {
    let mut i = start;
    while i < text.chars.len() && (text.chars[i].is_alphanumeric() || text.chars[i] == '_') {
        i += 1;
    }
    i
}

/// The postfix expression to the left of an `as` keyword at `as_start`:
/// identifier/method/index chains with balanced brackets. Conservative —
/// it stops at any operator at depth 0, so `a + b.round() as u64` only
/// captures `b.round()`.
fn cast_source(text: &Text<'_>, as_start: usize) -> String {
    let mut i = as_start;
    // Skip whitespace between the expression and `as`.
    while i > 0 && text.chars[i - 1].is_whitespace() {
        i -= 1;
    }
    let end = i;
    let mut depth = 0usize;
    while i > 0 {
        let c = text.chars[i - 1];
        let consume = if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            true
        } else if c == ')' || c == ']' {
            depth += 1;
            true
        } else if c == '(' || c == '[' {
            if depth == 0 {
                false
            } else {
                depth -= 1;
                true
            }
        } else {
            depth > 0 // operators and whitespace only continue inside brackets
        };
        if !consume {
            break;
        }
        i -= 1;
    }
    text.slice(i, end)
}

fn is_floatish(expr: &str) -> bool {
    if FLOAT_MARKERS.iter().any(|m| expr.contains(m)) {
        return true;
    }
    // A float literal: digit '.' digit.
    let bytes = expr.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

// ---------------------------------------------------------------------
// L011 — checkpoint file I/O outside the journal sink seam
// ---------------------------------------------------------------------

fn lint_io_seam(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    for (start, end) in text.idents() {
        if text.in_test(start) {
            continue;
        }
        let ident = text.ident_at((start, end));
        let construct = match ident.as_str() {
            // The import alone marks the file as opening files behind
            // the seam's back; call sites then add their own findings.
            "OpenOptions" => "`OpenOptions`",
            "File" => {
                let colons = text.skip_ws(end);
                if text.slice(colons, colons + 2) != "::" {
                    continue;
                }
                let method_start = text.skip_ws(colons + 2);
                let method = text.slice(method_start, ident_end(text, method_start));
                if method != "create" && method != "create_new" {
                    continue;
                }
                "`File::create`"
            }
            _ => continue,
        };
        findings.push(Finding::new(
            "L011",
            Severity::Error,
            path,
            text.line(start),
            format!(
                "{construct} in checkpoint code bypasses the journal sink seam, so fault \
                 injection and rollback never see the write"
            ),
            "route the file through `JournalSink`/`FileSink` (crates/opt/src/sink.rs), or \
             justify with `// ssdep-lint: allow(L011, reason)`",
        ));
    }
}

// ---------------------------------------------------------------------
// L013 — serde serialization in evaluation hot-path code
// ---------------------------------------------------------------------

fn lint_hot_serde(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    for (start, end) in text.idents() {
        if text.in_test(start) {
            continue;
        }
        if text.ident_at((start, end)) != "serde_json" {
            continue;
        }
        let colons = text.skip_ws(end);
        if text.slice(colons, colons + 2) != "::" {
            continue;
        }
        let method_start = text.skip_ws(colons + 2);
        let method = text.slice(method_start, ident_end(text, method_start));
        if method != "to_string"
            && method != "to_vec"
            && method != "to_string_pretty"
            && method != "to_vec_pretty"
        {
            continue;
        }
        findings.push(Finding::new(
            "L013",
            Severity::Error,
            path,
            text.line(start),
            format!(
                "`serde_json::{method}` in evaluation hot-path code serializes the whole \
                 model per candidate — the cost the structural fingerprint exists to avoid"
            ),
            "hash with `ssdep_core::fingerprint::fingerprint_pair` \
             (crates/core/src/fingerprint.rs), or justify with \
             `// ssdep-lint: allow(L013, reason)`",
        ));
    }
}

// ---------------------------------------------------------------------
// L012 — unbounded queues and undeadlined joins in daemon code
// ---------------------------------------------------------------------

fn lint_bounded(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    for (start, end) in text.idents() {
        if text.in_test(start) {
            continue;
        }
        let ident = text.ident_at((start, end));
        let line = text.line(start);
        match ident.as_str() {
            // `channel()` / `channel::<T>()` is std's *unbounded* mpsc
            // constructor; `sync_channel` (a different identifier) is
            // the bounded one the admission seam wraps.
            "channel" => {
                let after = text.skip_ws(end);
                let calls = text.chars.get(after) == Some(&'(')
                    || (text.slice(after, after + 2) == "::"
                        && text.chars.get(text.skip_ws(after + 2)) == Some(&'<'));
                if !calls {
                    continue;
                }
                findings.push(Finding::new(
                    "L012",
                    Severity::Error,
                    path,
                    line,
                    "unbounded `mpsc::channel` in daemon code cannot shed load — the queue \
                     grows until memory does the admission control",
                    "hand off through `WorkQueue::bounded` (crates/serve/src/pool.rs) so \
                     overload answers 429, or justify with `// ssdep-lint: allow(L012, reason)`",
                ));
            }
            "VecDeque" => {
                let colons = text.skip_ws(end);
                if text.slice(colons, colons + 2) != "::" {
                    continue;
                }
                let method_start = text.skip_ws(colons + 2);
                if text.slice(method_start, ident_end(text, method_start)) != "new" {
                    continue;
                }
                findings.push(Finding::new(
                    "L012",
                    Severity::Error,
                    path,
                    line,
                    "unbounded `VecDeque::new` backlog in daemon code cannot shed load",
                    "use a depth-capped queue (`WorkQueue::bounded`, crates/serve/src/pool.rs) \
                     or justify with `// ssdep-lint: allow(L012, reason)`",
                ));
            }
            // A bare `.join()` blocks forever on a stuck worker, so a
            // drain can never finish. The seam's `join_with_deadline`
            // polls with a bound instead.
            "join" => {
                let after_dot = text
                    .prev_non_ws(start)
                    .is_some_and(|j| text.chars[j] == '.');
                let open = text.skip_ws(end);
                // The `)` must be *immediately* after the `(`: masked
                // string literals read as whitespace, so skipping it
                // would mistake `join(", ")` for an empty call.
                let empty_call =
                    text.chars.get(open) == Some(&'(') && text.chars.get(open + 1) == Some(&')');
                if !(after_dot && empty_call) {
                    continue;
                }
                findings.push(Finding::new(
                    "L012",
                    Severity::Error,
                    path,
                    line,
                    "bare `JoinHandle::join()` in daemon code blocks a drain forever if the \
                     worker is stuck",
                    "join through `join_with_deadline` (crates/serve/src/pool.rs) so drains \
                     are bounded, or justify with `// ssdep-lint: allow(L012, reason)`",
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// L021 — guard held across blocking I/O
// ---------------------------------------------------------------------

/// Calls that can block indefinitely while a guard pins a lock. `join`
/// is matched only as an empty call (`.join()`), so `slice.join(", ")`
/// — whose masked string argument still occupies columns — never
/// matches. Condvar `wait*` is deliberately absent: waiting *with* the
/// guard is that API's contract.
const BLOCKING_CALLS: &[&str] = &[
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "connect",
    "sleep",
    "join",
];

fn lint_guard_blocking(
    path: &str,
    text: &Text<'_>,
    parsed: &ParsedFile,
    findings: &mut Vec<Finding>,
) {
    for guard in &parsed.guards {
        if guard.in_test {
            continue;
        }
        for (start, end) in text.idents() {
            if start <= guard.scope.0 || start >= guard.scope.1 || text.in_test(start) {
                continue;
            }
            let ident = text.ident_at((start, end));
            if !BLOCKING_CALLS.contains(&ident.as_str()) {
                continue;
            }
            let open = text.skip_ws(end);
            if text.chars.get(open) != Some(&'(') {
                continue;
            }
            if ident == "join" && text.chars.get(open + 1) != Some(&')') {
                continue;
            }
            // Method (`.recv(`) or path (`thread::sleep(`) calls only —
            // a local fn named `connect` is out of scope.
            let Some(prev) = text.prev_non_ws(start) else {
                continue;
            };
            if text.chars[prev] != '.' && text.chars[prev] != ':' {
                continue;
            }
            findings.push(Finding::new(
                "L021",
                Severity::Error,
                path,
                text.line(start),
                format!(
                    "`{ident}` can block while the guard on `{}` (acquired line {}) is still \
                     live — every thread contending for that lock stalls behind this I/O",
                    guard.path, guard.line
                ),
                "shrink the critical section: copy what you need out of the guard, \
                 `drop(guard)`, then block — or justify an intentional handoff with \
                 `// ssdep-lint: allow(L021, reason)`",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L022 — Relaxed ordering on control-flow atomics
// ---------------------------------------------------------------------

/// `_`-separated name segments that mark an atomic as a cross-thread
/// control-flow flag rather than a counter.
const FLAG_SEGMENTS: &[&str] = &[
    "shutdown",
    "stop",
    "stopped",
    "halt",
    "halted",
    "done",
    "closed",
    "closing",
    "draining",
    "drained",
    "cancel",
    "cancelled",
    "canceled",
    "quit",
    "exit",
    "latch",
    "degraded",
    "sealed",
    "terminate",
    "terminated",
];

/// A `while`/`if` condition span and its body, as char ranges.
struct CondSpan {
    is_loop: bool,
    cond: (usize, usize),
    body: (usize, usize),
}

fn condition_spans(text: &Text<'_>) -> Vec<CondSpan> {
    let mut spans = Vec::new();
    for (start, end) in text.idents() {
        let ident = text.ident_at((start, end));
        let is_loop = match ident.as_str() {
            "while" => true,
            "if" => false,
            _ => continue,
        };
        // Condition runs to the first `{` outside brackets.
        let mut depth = 0i32;
        let mut i = end;
        let mut open = None;
        while i < text.chars.len() {
            match text.chars[i] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    open = Some(i);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        spans.push(CondSpan {
            is_loop,
            cond: (end, open),
            body: (open, text.match_delim(open)),
        });
    }
    spans
}

fn lint_relaxed_ordering(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    let spans = condition_spans(text);
    for (start, end) in text.idents() {
        if text.in_test(start) || text.ident_at((start, end)) != "Relaxed" {
            continue;
        }
        // Must be `Ordering::Relaxed`.
        let Some(colon) = text.prev_non_ws(start) else {
            continue;
        };
        if text.chars[colon] != ':' || colon == 0 || text.chars[colon - 1] != ':' {
            continue;
        }
        // The atomic method whose argument list we are inside.
        let Some((method, receiver)) = enclosing_atomic_call(text, start) else {
            continue;
        };
        // RMWs (`fetch_add` claim counters, compare_exchange loops) are
        // the legitimate Relaxed users here.
        if method.starts_with("fetch_") || method.starts_with("compare_exchange") {
            continue;
        }
        let is_load = method == "load";
        let flaggish = flag_named(&receiver);
        let mut why = None;
        if is_load {
            for span in &spans {
                if start > span.cond.0 && start < span.cond.1 {
                    if span.is_loop {
                        why = Some("is read in a loop condition".to_string());
                    } else if body_redirects(text, span.body) {
                        why = Some(
                            "is read in a latch check that redirects control flow".to_string(),
                        );
                    }
                    if why.is_some() {
                        break;
                    }
                }
            }
        }
        if why.is_none() && flaggish && (is_load || method == "store" || method == "swap") {
            why = Some(format!("`{receiver}` names a cross-thread flag"));
        }
        let Some(why) = why else { continue };
        findings.push(Finding::new(
            "L022",
            Severity::Error,
            path,
            text.line(start),
            format!(
                "`Ordering::Relaxed` on an atomic that gates cross-thread control flow ({why}) \
                 — the {method} may observe the other thread's update arbitrarily late"
            ),
            "use `Ordering::SeqCst` (or a documented Acquire/Release pair) for flags and \
             latches; Relaxed is for counters — or justify with \
             `// ssdep-lint: allow(L022, reason)`",
        ));
    }
}

/// The method call whose argument list contains `pos`, with its
/// receiver's trailing path — `(load, "inner.shutdown")` for
/// `inner.shutdown.load(Ordering::Relaxed)`.
fn enclosing_atomic_call(text: &Text<'_>, pos: usize) -> Option<(String, String)> {
    let mut depth = 0usize;
    let mut i = pos;
    let open = loop {
        if i == 0 {
            return None;
        }
        match text.chars[i - 1] {
            ')' => depth += 1,
            '(' => {
                if depth == 0 {
                    break i - 1;
                }
                depth -= 1;
            }
            '{' | '}' | ';' if depth == 0 => return None,
            _ => {}
        }
        i -= 1;
    };
    let method_end = open;
    let mut method_start = method_end;
    while method_start > 0 && {
        let c = text.chars[method_start - 1];
        c.is_alphanumeric() || c == '_'
    } {
        method_start -= 1;
    }
    if method_start == method_end {
        return None;
    }
    let method = text.slice(method_start, method_end);
    let receiver = match text.prev_non_ws(method_start) {
        Some(dot) if text.chars[dot] == '.' => {
            let mut j = dot;
            let mut bdepth = 0usize;
            while j > 0 {
                let c = text.chars[j - 1];
                let consume = if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
                    true
                } else if c == ')' || c == ']' {
                    bdepth += 1;
                    true
                } else if c == '(' || c == '[' {
                    if bdepth == 0 {
                        false
                    } else {
                        bdepth -= 1;
                        true
                    }
                } else {
                    bdepth > 0
                };
                if !consume {
                    break;
                }
                j -= 1;
            }
            text.slice(j, dot)
        }
        _ => String::new(),
    };
    Some((method, receiver))
}

/// Whether the last `.`-segment of `receiver` contains a flag-like
/// `_`-separated name segment.
fn flag_named(receiver: &str) -> bool {
    let last = receiver.rsplit('.').next().unwrap_or(receiver);
    last.split(|c: char| !c.is_alphanumeric())
        .flat_map(|part| part.split('_'))
        .any(|seg| FLAG_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// Whether a condition body contains `break`/`return` — the latch shape.
fn body_redirects(text: &Text<'_>, body: (usize, usize)) -> bool {
    for (start, end) in text.idents() {
        if start <= body.0 || start >= body.1 {
            continue;
        }
        let ident = text.ident_at((start, end));
        if ident == "break" || ident == "return" {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// L023 — hash iteration feeding byte-stable outputs
// ---------------------------------------------------------------------

/// Iterator-producing methods whose order leaks into the result.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Statement substrings that prove the iteration's consumer is order-
/// insensitive or re-sorted: reductions, membership, size, a sorted
/// container, or an in-statement sort.
const ORDER_INSENSITIVE: &[&str] = &[
    ".min",
    ".max",
    ".sum",
    ".count",
    ".any",
    ".all",
    ".fold",
    ".len",
    ".is_empty",
    ".sort",
    "BTreeMap",
    "BTreeSet",
];

fn lint_hash_iteration(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    let names = hash_container_names(text);
    if names.is_empty() {
        return;
    }
    for (start, end) in text.idents() {
        if text.in_test(start) {
            continue;
        }
        let ident = text.ident_at((start, end));
        if HASH_ITER_METHODS.contains(&ident.as_str()) {
            let Some(dot) = text.prev_non_ws(start) else {
                continue;
            };
            if text.chars[dot] != '.' || text.chars.get(text.skip_ws(end)) != Some(&'(') {
                continue;
            }
            let Some(name) = receiver_field(text, dot, &names) else {
                continue;
            };
            if stable_consumer(text, start) {
                continue;
            }
            push_l023(path, text, start, &name, findings);
        } else if ident == "for" {
            // `for pat in <expr> {` — iterating a hash container by
            // reference has the same nondeterministic order.
            let Some(name) = for_loop_hash_source(text, end, &names) else {
                continue;
            };
            push_l023(path, text, start, &name, findings);
        }
    }
}

fn push_l023(path: &str, text: &Text<'_>, start: usize, name: &str, findings: &mut Vec<Finding>) {
    findings.push(Finding::new(
        "L023",
        Severity::Error,
        path,
        text.line(start),
        format!(
            "iteration over hash container `{name}` feeds an output path required to be \
             byte-stable, but `HashMap`/`HashSet` order differs per process"
        ),
        "use a `BTreeMap`/`BTreeSet`, or collect and sort before emitting \
         (`let mut v: Vec<_> = m.keys().collect(); v.sort();`), or justify with \
         `// ssdep-lint: allow(L023, reason)`",
    ));
}

/// Names bound to `HashMap`/`HashSet` values in this file: type
/// ascriptions (`name: HashMap<…>` on fields, params, and lets — with
/// `&`/`mut`/lifetimes peeled) and `let name = HashMap::new()`-style
/// constructions.
fn hash_container_names(text: &Text<'_>) -> Vec<String> {
    let mut names = Vec::new();
    let idents: Vec<(usize, usize)> = text.idents().collect();
    for (n, &(start, end)) in idents.iter().enumerate() {
        let ident = text.ident_at((start, end));
        if ident != "HashMap" && ident != "HashSet" {
            continue;
        }
        // `use std::collections::HashMap` / `HashMap::new()` receivers
        // are type positions, not bindings.
        if let Some(prev) = text.prev_non_ws(start) {
            if text.chars[prev] == ':' && prev > 0 && text.chars[prev - 1] == ':' {
                // `::HashMap` — a path segment. `let m = HashMap::new()`
                // is handled below via the `=` that precedes the path.
                if let Some(before) = ascribed_or_assigned_name(text, &idents, n) {
                    names.push(before);
                }
                continue;
            }
        }
        if let Some(name) = ascribed_or_assigned_name(text, &idents, n) {
            names.push(name);
        }
    }
    names.sort();
    names.dedup();
    names
}

/// The binding name for the `HashMap`/`HashSet` token at ident index
/// `n`: either `name : [&|mut|'a ]* Hash…` or `let name = …Hash…::new()`.
fn ascribed_or_assigned_name(
    text: &Text<'_>,
    idents: &[(usize, usize)],
    n: usize,
) -> Option<String> {
    let (start, _) = idents[n];
    // Walk back over `&`, `'a`, `mut`, and path prefixes to the `:` or
    // `=` that introduces this type/value.
    let mut i = start;
    loop {
        let prev = text.prev_non_ws(i)?;
        let c = text.chars[prev];
        if c == '&' || c == '\'' {
            i = prev;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            // `mut` qualifier or a path segment like `std`/`collections`.
            let mut s = prev;
            while s > 0 && (text.chars[s - 1].is_alphanumeric() || text.chars[s - 1] == '_') {
                s -= 1;
            }
            let word = text.slice(s, prev + 1);
            if word == "mut" {
                i = s;
                continue;
            }
            return None;
        }
        if c == ':' && prev > 0 && text.chars[prev - 1] == ':' {
            // `::` path separator — keep walking left past the segment.
            i = prev - 1;
            continue;
        }
        if c == ':' {
            // Ascription: the name is the ident just before the colon.
            let named = text.prev_non_ws(prev)?;
            if !(text.chars[named].is_alphanumeric() || text.chars[named] == '_') {
                return None;
            }
            let mut s = named;
            while s > 0 && (text.chars[s - 1].is_alphanumeric() || text.chars[s - 1] == '_') {
                s -= 1;
            }
            let name = text.slice(s, named + 1);
            return if name.is_empty() { None } else { Some(name) };
        }
        if c == '=' {
            // Assignment: `let name = HashMap::new()` — require the
            // statement head to be a `let` binding.
            let named = text.prev_non_ws(prev)?;
            if !(text.chars[named].is_alphanumeric() || text.chars[named] == '_') {
                return None;
            }
            let mut s = named;
            while s > 0 && (text.chars[s - 1].is_alphanumeric() || text.chars[s - 1] == '_') {
                s -= 1;
            }
            let name = text.slice(s, named + 1);
            // The token before must be `let` or `let mut`.
            let mut check = s;
            for _ in 0..2 {
                let p = text.prev_non_ws(check)?;
                if !(text.chars[p].is_alphanumeric() || text.chars[p] == '_') {
                    return None;
                }
                let mut ws = p;
                while ws > 0 && (text.chars[ws - 1].is_alphanumeric() || text.chars[ws - 1] == '_')
                {
                    ws -= 1;
                }
                let word = text.slice(ws, p + 1);
                if word == "let" {
                    return Some(name);
                }
                if word != "mut" {
                    return None;
                }
                check = ws;
            }
            return None;
        }
        return None;
    }
}

/// The registered container name a `.method()` receiver ends in, if any
/// (`shard.entries.iter()` matches a registered `entries`).
fn receiver_field(text: &Text<'_>, dot: usize, names: &[String]) -> Option<String> {
    let mut j = dot;
    let mut depth = 0usize;
    while j > 0 {
        let c = text.chars[j - 1];
        let consume = if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            true
        } else if c == ')' || c == ']' {
            depth += 1;
            true
        } else if c == '(' || c == '[' {
            if depth == 0 {
                false
            } else {
                depth -= 1;
                true
            }
        } else {
            depth > 0
        };
        if !consume {
            break;
        }
        j -= 1;
    }
    let chain = text.slice(j, dot);
    let last = chain
        .rsplit('.')
        .next()
        .unwrap_or(&chain)
        .trim_end_matches(|c: char| !(c.is_alphanumeric() || c == '_'));
    let last = match last.rfind(|c: char| !(c.is_alphanumeric() || c == '_')) {
        Some(i) => &last[i + 1..],
        None => last,
    };
    names.iter().find(|n| n.as_str() == last).cloned()
}

/// Whether the statement containing the iteration (or the statements
/// that follow it in the same block, for `let v = …collect(); v.sort()`)
/// proves the consumer order-insensitive.
fn stable_consumer(text: &Text<'_>, pos: usize) -> bool {
    // Statement span: back to `;`/`{`/`}`, forward to a `;` at depth 0
    // or the start of a block (a loop/if header) or the block close.
    let mut start = pos;
    while start > 0 && !matches!(text.chars[start - 1], ';' | '{' | '}') {
        start -= 1;
    }
    let mut depth = 0i32;
    let mut end = pos;
    while end < text.chars.len() {
        match text.chars[end] {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => break,
            '}' if depth == 0 => break,
            ';' if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    let stmt = text.slice(start, end);
    if ORDER_INSENSITIVE.iter().any(|m| stmt.contains(m)) {
        return true;
    }
    // `let name = …collect…;` followed by `name.sort…` later in the
    // same enclosing block is the sanctioned sorted-collect shape.
    let head = stmt.trim_start();
    if head.starts_with("let") && stmt.contains("collect") {
        let Some(eq) = stmt.find('=') else {
            return false;
        };
        let name = stmt[..eq]
            .trim_start()
            .trim_start_matches("let")
            .trim()
            .trim_start_matches("mut")
            .trim();
        let name: String = name
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            let mut bdepth = 0i32;
            let mut i = end;
            let needle: Vec<char> = format!("{name}.sort").chars().collect();
            while i < text.chars.len() {
                match text.chars[i] {
                    '{' => bdepth += 1,
                    '}' => {
                        if bdepth == 0 {
                            break;
                        }
                        bdepth -= 1;
                    }
                    _ => {}
                }
                if text.chars[i..].starts_with(&needle[..])
                    && (i == 0
                        || !(text.chars[i - 1].is_alphanumeric() || text.chars[i - 1] == '_'))
                {
                    return true;
                }
                i += 1;
            }
        }
    }
    false
}

/// The registered container a `for pat in <expr> {` loop iterates, if
/// any. `end` is just past the `for` keyword.
fn for_loop_hash_source(text: &Text<'_>, end: usize, names: &[String]) -> Option<String> {
    // Find the `in` keyword at depth 0 before the loop body `{`.
    let mut depth = 0i32;
    let mut i = end;
    let mut in_end = None;
    while i < text.chars.len() {
        match text.chars[i] {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => break,
            'i' if depth == 0
                && text.chars.get(i + 1) == Some(&'n')
                && (i == 0 || !is_word_char(text.chars[i - 1]))
                && text.chars.get(i + 2).is_some_and(|c| !is_word_char(*c)) =>
            {
                in_end = Some(i + 2);
            }
            _ => {}
        }
        i += 1;
    }
    let body_open = i;
    let expr = text.slice(text.skip_ws(in_end?), body_open);
    // The iterated expression's trailing field: strip borrows and any
    // trailing `.iter()`-style call (already handled by the method arm).
    let expr = expr.trim().trim_start_matches(['&', '*']);
    let expr = expr.trim_start_matches("mut ").trim();
    if expr.contains('(') {
        return None; // method-call iterations are the other arm's job
    }
    let last = expr.rsplit('.').next().unwrap_or(expr).trim();
    names.iter().find(|n| n.as_str() == last).cloned()
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

// ---------------------------------------------------------------------
// L001 — raw f64 in public model signatures
// ---------------------------------------------------------------------

/// Signature qualifiers that may sit between `pub` and `fn`.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

fn lint_signatures(path: &str, text: &Text<'_>, findings: &mut Vec<Finding>) {
    let idents: Vec<(usize, usize)> = text.idents().collect();
    for (n, &(start, end)) in idents.iter().enumerate() {
        if text.ident_at((start, end)) != "pub" || text.in_test(start) {
            continue;
        }
        // `pub(crate)` and friends are not public API.
        if text.chars.get(text.skip_ws(end)) == Some(&'(') {
            continue;
        }
        // Walk qualifiers to `fn`, then the function name.
        let mut k = n + 1;
        while k < idents.len() && FN_QUALIFIERS.contains(&text.ident_at(idents[k]).as_str()) {
            k += 1;
        }
        if k >= idents.len() || text.ident_at(idents[k]) != "fn" {
            continue;
        }
        let Some(&name_tok) = idents.get(k + 1) else {
            continue;
        };
        let fn_name = text.ident_at(name_tok);
        // Find the parameter list, skipping generics.
        let mut i = text.skip_ws(name_tok.1);
        if text.chars.get(i) == Some(&'<') {
            i = text.skip_ws(text.match_delim(i));
        }
        if text.chars.get(i) != Some(&'(') {
            continue;
        }
        let params_end = text.match_delim(i);
        let params = text.slice(i + 1, params_end.saturating_sub(1));
        let line = text.line(start);
        for (name, ty) in split_params(&params) {
            if !contains_word(&ty, "f64") {
                continue;
            }
            if let Some(newtype) = dimension_hint(&name) {
                findings.push(Finding::new(
                    "L001",
                    Severity::Error,
                    path,
                    line,
                    format!(
                        "public model fn `{fn_name}` takes raw `f64` for `{name}`, which \
                         reads as a dimensioned quantity"
                    ),
                    format!(
                        "take `{newtype}` (crates/core/src/units.rs) so the unit is typed, \
                         or justify with `// ssdep-lint: allow(L001, reason)`"
                    ),
                ));
            }
        }
        // Return position: `-> … f64 …` with a dimensioned fn name.
        let ret_end = signature_end(text, params_end);
        let ret = text.slice(params_end, ret_end);
        if ret.contains("->") && contains_word(&ret, "f64") {
            if let Some(newtype) = dimension_hint(&fn_name) {
                findings.push(Finding::new(
                    "L001",
                    Severity::Error,
                    path,
                    line,
                    format!(
                        "public model fn `{fn_name}` returns raw `f64` but its name reads \
                         as a dimensioned quantity"
                    ),
                    format!(
                        "return `{newtype}` (crates/core/src/units.rs) so the unit is typed, \
                         or justify with `// ssdep-lint: allow(L001, reason)`"
                    ),
                ));
            }
        }
    }
}

/// Index of the `{`, `;`, or `where` that ends a signature's return
/// clause.
fn signature_end(text: &Text<'_>, mut i: usize) -> usize {
    while i < text.chars.len() {
        match text.chars[i] {
            '{' | ';' => return i,
            'w' => {
                let end = ident_end(text, i);
                if text.slice(i, end) == "where" {
                    return i;
                }
                i = end;
            }
            '<' | '(' | '[' => i = text.match_delim(i),
            _ => i += 1,
        }
    }
    i
}

/// Splits a parameter list at top-level commas into `(name, type)`
/// pairs. Pattern parameters (tuples, `mut x`, …) reduce to their last
/// identifier before the `:`.
fn split_params(params: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    let mut parts: Vec<String> = Vec::new();
    for c in params.chars() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    for part in parts {
        let mut split = part.splitn(2, ':');
        let pattern = split.next().unwrap_or("").trim();
        let Some(ty) = split.next() else {
            continue; // `self`, `&self`, …
        };
        let name = pattern
            .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("")
            .to_string();
        if name.is_empty() {
            continue;
        }
        out.push((name, ty.trim().to_string()));
    }
    out
}

/// Whether `needle` occurs in `haystack` as a whole word.
fn contains_word(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Segments that mark an identifier as deliberately dimensionless —
/// ratios, fractions, statistical weights — which raw `f64` is right
/// for.
const DIMENSIONLESS: &[&str] = &[
    "factor",
    "fraction",
    "ratio",
    "overhead",
    "multiplier",
    "weight",
    "share",
    "util",
    "utilization",
    "pct",
    "percent",
    "nines",
    "frequency",
    "freq",
    "probability",
    "prob",
    "count",
    "per",
    "index",
    "quantile",
];

/// Name-segment → `units.rs` newtype table for L001.
const DIMENSIONED: &[(&[&str], &str)] = &[
    (
        &[
            "secs", "seconds", "hours", "minutes", "days", "weeks", "years", "duration", "window",
            "period", "latency", "lag", "delay", "deadline", "timeout", "age",
        ],
        "TimeDelta",
    ),
    (&["bytes", "capacity"], "Bytes"),
    (&["bandwidth", "bps", "throughput"], "Bandwidth"),
    (
        &["dollars", "cost", "price", "outlay", "penalty"],
        "Money (dollars)",
    ),
];

/// The `units.rs` newtype an identifier's name implies, if any.
fn dimension_hint(ident: &str) -> Option<&'static str> {
    let segments: Vec<&str> = ident.split('_').filter(|s| !s.is_empty()).collect();
    if segments
        .iter()
        .any(|s| DIMENSIONLESS.contains(&s.to_ascii_lowercase().as_str()))
    {
        return None;
    }
    for (markers, newtype) in DIMENSIONED {
        if segments
            .iter()
            .any(|s| markers.contains(&s.to_ascii_lowercase().as_str()))
        {
            return Some(newtype);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, role: Role) -> Vec<Finding> {
        let lexed = LexedFile::lex(src);
        lint_file("test.rs", &lexed, role)
    }

    #[test]
    fn l003_sees_methods_called_on_float_literals() {
        let src = "fn f() { let _ = 1.0_f64.partial_cmp(&2.0).unwrap(); }\n";
        let findings = run(src, Role::ALL);
        assert_eq!(
            findings.iter().filter(|f| f.code == "L003").count(),
            1,
            "{findings:?}"
        );
    }

    #[test]
    fn l002_fires_on_unwrap_and_panic_outside_tests() {
        let src = "fn f() { x.unwrap(); }\nfn g() { panic!(\"boom\"); }\n";
        let findings = run(src, Role::ALL);
        assert_eq!(
            findings.iter().filter(|f| f.code == "L002").count(),
            2,
            "{findings:?}"
        );
    }

    #[test]
    fn l002_respects_unwrap_or_and_clippy_allows() {
        let src = "\
fn f() { x.unwrap_or(0); }
#[allow(clippy::unwrap_used)]
fn g() { x.unwrap(); }
fn h() { std::panic::catch_unwind(|| 1); }
";
        let findings = run(src, Role::ALL);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn l003_fires_on_partial_cmp_unwrap_and_sort_by() {
        let src = "\
fn f(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let _ = a.partial_cmp(&b).unwrap();
}
impl PartialOrd for X {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
";
        let findings = run(src, Role::ALL);
        let l003 = findings.iter().filter(|f| f.code == "L003").count();
        assert_eq!(l003, 3, "{findings:?}"); // sort_by + 2 chained unwraps
        assert!(findings.iter().all(|f| f.line <= 3), "{findings:?}");
    }

    #[test]
    fn l005_fires_on_float_truncation_not_int_widening() {
        let src = "\
fn f(x: f64, n: u32) {
    let a = x.round() as u64;
    let b = n as f64;
    let c = n as usize;
    let d = (x * 10.0) as i32;
    let e = x as f32;
}
";
        let findings = run(src, Role::ALL);
        let lines: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L005")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2, 5, 6], "{findings:?}");
    }

    #[test]
    fn l001_fires_on_dimensioned_f64_params_and_returns() {
        let src = "\
pub fn set_window(window_secs: f64) {}
pub fn scale(factor: f64) {}
pub fn recovery_hours(&self) -> f64 { 0.0 }
pub fn shipments_per_year(&self) -> f64 { 0.0 }
fn private_window(window_secs: f64) {}
";
        let findings = run(src, Role::ALL);
        let l001: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L001")
            .map(|f| f.line)
            .collect();
        assert_eq!(l001, vec![1, 3], "{findings:?}");
        assert!(findings.iter().any(|f| f.suggestion.contains("TimeDelta")));
    }

    #[test]
    fn pragmas_suppress_and_go_stale() {
        let src = "\
fn f() { x.unwrap(); } // ssdep-lint: allow(L002, init-only path, tested exhaustively)
// ssdep-lint: allow(L002, the next line is innocent)
fn g() { x.unwrap_or(1); }
";
        let findings = run(src, Role::ALL);
        assert!(!findings.iter().any(|f| f.code == "L002"), "{findings:?}");
        let stale: Vec<&Finding> = findings.iter().filter(|f| f.code == "L010").collect();
        assert_eq!(stale.len(), 1, "{findings:?}");
        assert_eq!(stale[0].line, 2);
    }

    #[test]
    fn multi_code_pragma_covers_both_codes() {
        let src = "let n = (x * 2.5) as u64; // ssdep-lint: allow(L005, L002, bounded by loop)\n";
        let findings = run(src, Role::ALL);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn roles_gate_the_lint_families() {
        let src = "\
fn f() { x.unwrap(); let y = z.round() as u64; }
fn g() { let _ = std::fs::File::create(\"x\"); }
fn h() { let (_tx, _rx) = std::sync::mpsc::channel::<u64>(); }
fn i() { let _ = serde_json::to_string(&x); }
";
        let quiet = run(
            src,
            Role {
                library: false,
                model: false,
                signatures: false,
                io_seam: false,
                bounded: false,
                hot_path: false,
                concurrency: false,
                stable: false,
            },
        );
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn l013_fires_on_hot_path_serialization_only() {
        let src = "\
fn a(d: &D) { let _ = serde_json::to_string(d); }
fn b(d: &D) { let _ = serde_json :: to_vec(d); }
fn c(bytes: &[u8]) { let _ = serde_json::from_slice::<D>(bytes); }
fn d(d: &D) { let _ = other_json::to_string(d); }
";
        let findings = run(src, Role::ALL);
        let l013: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L013")
            .map(|f| f.line)
            .collect();
        assert_eq!(l013, [1, 2], "{findings:?}");
    }

    #[test]
    fn l012_fires_on_unbounded_queues_and_bare_joins() {
        let src = "\
fn a() { let (_tx, _rx) = std::sync::mpsc::channel::<u64>(); }
fn b() -> std::collections::VecDeque<u64> { std::collections::VecDeque::new() }
fn c(h: std::thread::JoinHandle<()>) { let _ = h.join(); }
fn d() { let (_tx, _rx) = std::sync::mpsc::sync_channel::<u64>(8); }
fn e(parts: &[&str]) -> String { parts.join(\", \") }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let (_tx, _rx) = std::sync::mpsc::channel::<u64>(); }
}
";
        let findings = run(src, Role::ALL);
        let l012: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L012")
            .map(|f| f.line)
            .collect();
        // The unbounded channel, the VecDeque backlog, and the bare
        // join — but not sync_channel, str::join(sep), or test code.
        assert_eq!(l012, vec![1, 2, 3], "{findings:?}");
        assert!(findings
            .iter()
            .filter(|f| f.code == "L012")
            .all(|f| f.suggestion.contains("pool.rs")));
    }

    #[test]
    fn l011_fires_on_direct_file_io_outside_tests() {
        let src = "\
use std::fs::OpenOptions;
fn f() { let _ = std::fs::File::create(\"j\"); }
fn g() { let _ = OpenOptions::new().append(true).open(\"j\"); }
fn h() { let _ = std::fs::File::open(\"j\"); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::fs::File::create(\"scratch\"); }
}
";
        let findings = run(src, Role::ALL);
        let l011: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L011")
            .map(|f| f.line)
            .collect();
        // The import, the create call, and the OpenOptions call site —
        // but not the read-side `File::open` or the test module.
        assert_eq!(l011, vec![1, 2, 3], "{findings:?}");
        assert!(findings
            .iter()
            .filter(|f| f.code == "L011")
            .all(|f| f.suggestion.contains("sink.rs")));
    }

    #[test]
    fn l021_fires_on_blocking_calls_under_a_live_guard() {
        let src = "\
fn held(m: &std::sync::Mutex<Vec<u8>>, s: &mut std::net::TcpStream) {
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let _ = std::io::Write::write_all(s, &g);
}
fn released(m: &std::sync::Mutex<Vec<u8>>, s: &mut std::net::TcpStream) {
    let bytes = {
        let g = match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.clone()
    };
    let _ = std::io::Write::write_all(s, &bytes);
}
fn dropped(m: &std::sync::Mutex<u64>) {
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    drop(g);
    std::thread::sleep(std::time::Duration::from_millis(1));
}
";
        let findings = run(src, Role::ALL);
        let l021: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L021")
            .map(|f| f.line)
            .collect();
        assert_eq!(l021, vec![6], "{findings:?}");
        assert!(findings
            .iter()
            .filter(|f| f.code == "L021")
            .all(|f| f.message.contains("`m`")));
    }

    #[test]
    fn l022_fires_on_relaxed_control_flow_not_counters() {
        let src = "\
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
fn spin(flag: &AtomicBool) {
    while !flag.load(Ordering::Relaxed) {}
}
fn latch(shutdown: &AtomicBool) -> bool {
    if shutdown.load(Ordering::Relaxed) {
        return true;
    }
    false
}
fn store_flag(shutdown: &AtomicBool) {
    shutdown.store(true, Ordering::Relaxed);
}
fn counters(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
    let _ = hits.load(Ordering::Relaxed);
}
fn seqcst(shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {}
}
";
        let findings = run(src, Role::ALL);
        let l022: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L022")
            .map(|f| f.line)
            .collect();
        assert_eq!(l022, vec![3, 6, 12], "{findings:?}");
    }

    #[test]
    fn l023_fires_on_hash_iteration_and_accepts_sorted_collects() {
        let src = "\
use std::collections::{BTreeMap, HashMap};
pub struct Catalog {
    rows: HashMap<String, u64>,
    sorted: BTreeMap<String, u64>,
}
pub fn unstable(c: &Catalog) -> String {
    let mut out = String::new();
    for (k, _v) in c.rows.iter() {
        out.push_str(k);
    }
    out
}
pub fn sorted_collect(c: &Catalog) -> Vec<String> {
    let mut keys: Vec<String> = c.rows.keys().cloned().collect();
    keys.sort();
    keys
}
pub fn reduction(c: &Catalog) -> u64 {
    c.rows.values().sum()
}
pub fn btree_is_fine(c: &Catalog) -> String {
    let mut out = String::new();
    for (k, _v) in c.sorted.iter() {
        out.push_str(k);
    }
    out
}
";
        let findings = run(src, Role::ALL);
        let l023: Vec<usize> = findings
            .iter()
            .filter(|f| f.code == "L023")
            .map(|f| f.line)
            .collect();
        assert_eq!(l023, vec![8], "{findings:?}");
        assert!(findings
            .iter()
            .filter(|f| f.code == "L023")
            .all(|f| f.suggestion.contains("BTreeMap")));
    }
}

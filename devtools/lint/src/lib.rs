//! `ssdep-lint` — workspace static analysis for the dependability
//! framework.
//!
//! The runtime preflight (`ssdep check`, `D0xx`) validates *designs*;
//! this crate validates the *codebase* against the same engineering
//! policies, with the same shape: stable codes (`L0xx`), a catalog in
//! `DESIGN.md` §11, suppression with mandatory justification, and the
//! 0/1/2 exit ladder so CI treats both gates identically.
//!
//! It is std-only on purpose: the offline build harness has no `syn` or
//! registry access, so [`lexer`] implements the small slice of Rust
//! lexing the lints need (comment/string masking, attribute regions,
//! pragma comments).

pub mod catalog;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
mod workspace;

pub use findings::{Finding, Report, Severity};
pub use workspace::{lint_paths, lint_workspace};

//! The built-in lint catalog behind `ssdep-lint --explain L0xx`.
//!
//! One entry per stable code, mirroring the `DESIGN.md` §11 table (a
//! test cross-checks that every entry here has a catalog row there, the
//! same mechanism L004 applies to the runtime `D0xx` codes). Each entry
//! carries the rationale and a concrete fix example so the explanation
//! is actionable offline, without opening the design doc.

use crate::findings::Severity;

/// One catalog entry: what a code means and how to fix it.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    pub code: &'static str,
    pub severity: Severity,
    /// One-line summary of what the lint fires on.
    pub title: &'static str,
    /// Why the policy exists in this repo.
    pub rationale: &'static str,
    /// A concrete before/after fix example.
    pub fix: &'static str,
}

/// Every stable lint code, in code order.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        code: "L001",
        severity: Severity::Error,
        title: "raw `f64` in a public core-model signature where a units.rs newtype exists",
        rationale: "The paper's model mixes seconds, bytes, bandwidth, and dollars; a raw f64 \
                    parameter named `window_secs` compiles when handed hours. The newtypes in \
                    crates/core/src/units.rs make the dimension part of the type.",
        fix: "before: pub fn set_window(window_secs: f64)\n\
              after:  pub fn set_window(window: TimeDelta)",
    },
    CatalogEntry {
        code: "L002",
        severity: Severity::Error,
        title: "`unwrap()` / `expect()` / `panic!` / `unreachable!` in library code",
        rationale: "The evaluation pipeline is panic-free by policy: a panic in a sweep worker \
                    poisons locks and aborts the batch instead of quarantining one candidate.",
        fix: "before: let plan = build().unwrap();\n\
              after:  let plan = build().map_err(Error::from)?;",
    },
    CatalogEntry {
        code: "L003",
        severity: Severity::Error,
        title: "float ordering via `partial_cmp` instead of `total_cmp`",
        rationale: "`partial_cmp(..).unwrap()` panics on NaN and a partial comparator breaks \
                    sort invariants; IEEE 754 total order is deterministic for every input.",
        fix: "before: v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
              after:  v.sort_by(|a, b| a.total_cmp(b));",
    },
    CatalogEntry {
        code: "L004",
        severity: Severity::Error,
        title: "`D0xx` diagnostic codes inconsistent across source, DESIGN.md catalog, and tests",
        rationale: "The runtime preflight catalog is an API contract; a code that is defined but \
                    undocumented or untested silently drifts.",
        fix: "add the missing `| D0xx | … |` row to DESIGN.md §10 and a test asserting the \
              diagnosis emits the code (or delete the stale row)",
    },
    CatalogEntry {
        code: "L005",
        severity: Severity::Error,
        title: "lossy `as` numeric cast in model code",
        rationale: "float -> int `as` casts truncate fractions and collapse NaN to 0 silently, \
                    which corrupts recovery-time and capacity math.",
        fix: "before: let n = (secs / step) as u64;\n\
              after:  let n = round_to_u64(secs / step)?;  // crates/core/src/units.rs",
    },
    CatalogEntry {
        code: "L010",
        severity: Severity::Warning,
        title: "malformed or unused `// ssdep-lint: allow(...)` pragma",
        rationale: "A suppression that no longer suppresses anything is a stale allowlist entry; \
                    a malformed one silently fails to apply.",
        fix: "write `// ssdep-lint: allow(L00x, reason)` with a non-empty reason, and delete \
              pragmas whose violation is gone",
    },
    CatalogEntry {
        code: "L011",
        severity: Severity::Error,
        title: "direct `File::create` / `OpenOptions` in checkpoint code outside the sink seam",
        rationale: "Fault injection and rollback live in the JournalSink seam \
                    (crates/opt/src/sink.rs); a raw file handle bypasses both, so chaos tests \
                    cannot see the write.",
        fix: "before: let f = File::create(path)?;\n\
              after:  let sink = FileSink::open(path)?;  // crates/opt/src/sink.rs",
    },
    CatalogEntry {
        code: "L012",
        severity: Severity::Error,
        title: "unbounded queue or bare `JoinHandle::join()` in daemon code",
        rationale: "An unbounded `mpsc::channel` or `VecDeque::new` backlog grows until memory \
                    does the admission control, and a bare join blocks a SIGTERM drain forever \
                    on a stuck worker.",
        fix: "hand off through `WorkQueue::bounded` and join through `join_with_deadline` \
              (crates/serve/src/pool.rs)",
    },
    CatalogEntry {
        code: "L013",
        severity: Severity::Error,
        title: "`serde_json::to_string`/`to_vec` in evaluation hot-path code",
        rationale: "Serializing the whole design/workload per candidate dominates \
                    microsecond-scale evaluations; the structural fingerprint walks the \
                    model without allocating, so a serde call on the hot path is a silent \
                    5x tax on every supervised run.",
        fix: "hash with `ssdep_core::fingerprint::fingerprint_pair` \
              (crates/core/src/fingerprint.rs); a deliberate serialization seam (the serde \
              equivalence fallback) is justified with `// ssdep-lint: allow(L013, reason)`",
    },
    CatalogEntry {
        code: "L020",
        severity: Severity::Error,
        title: "lock-order cycle in the workspace acquired-while-holding graph",
        rationale: "Two call paths that take the same locks in opposite orders deadlock the \
                    serve thread pool under concurrency; the cross-file graph catches the \
                    inversion even when each file looks locally consistent.",
        fix: "pick one global acquisition order (document it next to the lock fields) and \
              re-order the minority site, or merge the locks into one",
    },
    CatalogEntry {
        code: "L021",
        severity: Severity::Error,
        title: "a Mutex/RwLock guard held across blocking I/O",
        rationale: "`sync_all`, `write_all`, TcpStream ops, `recv`, and `join` can block \
                    indefinitely; holding a guard across them stalls every thread contending \
                    for that lock and can freeze a graceful drain.",
        fix: "before: let g = state.lock()…; stream.write_all(&g)?;\n\
              after:  let bytes = { let g = state.lock()…; g.clone() }; \
              stream.write_all(&bytes)?;",
    },
    CatalogEntry {
        code: "L022",
        severity: Severity::Error,
        title: "`Ordering::Relaxed` on an atomic that gates cross-thread control flow",
        rationale: "Relaxed loads may observe a flag arbitrarily late: a `while \
                    !done.load(Relaxed)` spin or a shutdown latch can miss the store and run \
                    forever. Counters may relax; control flow may not.",
        fix: "before: while !shutdown.load(Ordering::Relaxed) { … }\n\
              after:  while !shutdown.load(Ordering::SeqCst) { … }  // or Acquire/Release pairs",
    },
    CatalogEntry {
        code: "L023",
        severity: Severity::Error,
        title: "`HashMap`/`HashSet` iteration feeding a byte-stable output path",
        rationale: "Hash iteration order differs per process, but journal lines, `/evaluate` \
                    JSON, and `--json` CLI output are contractually byte-stable (CI diffs them \
                    with cmp). One unsorted loop breaks resume and the gate.",
        fix: "before: for (k, v) in map.iter() { out.push_str(k); }\n\
              after:  let mut keys: Vec<_> = map.keys().collect(); keys.sort(); \
              // or use a BTreeMap",
    },
];

/// Looks up a catalog entry by code.
pub fn entry(code: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|e| e.code == code)
}

/// Renders one entry for `--explain`.
pub fn render(entry: &CatalogEntry) -> String {
    format!(
        "{} ({}) — {}\n\nwhy it matters here:\n  {}\n\nfix:\n  {}\n",
        entry.code,
        entry.severity,
        entry.title,
        entry.rationale,
        entry.fix.replace('\n', "\n  ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        let codes: Vec<&str> = CATALOG.iter().map(|e| e.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "catalog must stay in code order");
    }

    #[test]
    fn every_code_renders() {
        for e in CATALOG {
            let text = render(e);
            assert!(text.contains(e.code));
            assert!(text.contains("fix:"));
        }
        assert!(entry("L020").is_some());
        assert!(entry("L999").is_none());
    }
}

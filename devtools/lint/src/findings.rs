//! Lint findings and their human / machine renderings.
//!
//! The JSON form is hand-rolled (the lint crate is std-only by design)
//! and **byte-stable**: findings are sorted on a total key, keys are
//! emitted in a fixed order, and nothing time- or environment-dependent
//! is included, so CI can diff two runs with `cmp`.

use std::fmt;

/// How serious a finding is — mirrors `ssdep check`'s ladder, minus
/// hints (a lint that only hints is noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Violates a hard policy; exits 2.
    Error,
    /// Worth fixing but does not gate by default; exits 1 under
    /// `--deny-warnings`.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable machine-readable code (`L001`…); catalogued in
    /// `DESIGN.md` §11.
    pub code: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// A concrete suggested fix.
    pub suggestion: String,
}

impl Finding {
    /// Builds a finding; `path` is normalized to forward slashes.
    pub fn new(
        code: &str,
        severity: Severity,
        path: &str,
        line: usize,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Finding {
        Finding {
            code: code.to_string(),
            severity,
            path: path.replace('\\', "/"),
            line,
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }

    /// The total sort key that makes reports deterministic.
    fn sort_key(&self) -> (&str, usize, &str, &str) {
        (&self.path, self.line, &self.code, &self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity, self.code, self.path, self.line, self.message
        )
    }
}

/// A full lint report: sorted, deduplicated findings plus counts.
#[derive(Debug, Default)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// Builds a report: sorts on the total key and drops exact
    /// duplicates (two rules may anchor the same defect to one line).
    pub fn from_findings(mut findings: Vec<Finding>) -> Report {
        findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        findings.dedup();
        Report { findings }
    }

    /// Every finding, in report order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// The process exit status: 0 clean, 1 denied warnings, 2 errors —
    /// the same ladder as `ssdep check`.
    pub fn exit_status(&self, deny_warnings: bool) -> u8 {
        if self.errors() > 0 {
            2
        } else if deny_warnings && self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// The human rendering: one line per finding, a `fix:` line when a
    /// suggestion exists, and a count summary.
    pub fn render_human(&self, header: &str) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{header}");
        for finding in &self.findings {
            let _ = writeln!(out, "{finding}");
            if !finding.suggestion.is_empty() {
                let _ = writeln!(out, "  fix: {}", finding.suggestion);
            }
        }
        let (errors, warnings) = (self.errors(), self.warnings());
        let _ = writeln!(
            out,
            "summary: {errors} error{}, {warnings} warning{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
        out
    }

    /// The byte-stable JSON rendering.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"code\": {},\n", json_str(&f.code)));
            out.push_str(&format!(
                "      \"severity\": {},\n",
                json_str(&f.severity.to_string())
            ));
            out.push_str(&format!("      \"path\": {},\n", json_str(&f.path)));
            out.push_str(&format!("      \"line\": {},\n", f.line));
            out.push_str(&format!("      \"message\": {},\n", json_str(&f.message)));
            out.push_str(&format!(
                "      \"suggestion\": {}\n",
                json_str(&f.suggestion)
            ));
            out.push_str("    }");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{\n    \"errors\": {},\n    \"warnings\": {}\n  }}\n}}\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal, per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &str, path: &str, line: usize) -> Finding {
        Finding::new(code, Severity::Error, path, line, "m", "s")
    }

    #[test]
    fn findings_sort_and_dedup() {
        let report = Report::from_findings(vec![
            finding("L002", "b.rs", 9),
            finding("L001", "a.rs", 3),
            finding("L001", "a.rs", 3),
        ]);
        assert_eq!(report.findings().len(), 2);
        assert_eq!(report.findings()[0].path, "a.rs");
    }

    #[test]
    fn exit_ladder_matches_check() {
        let clean = Report::from_findings(Vec::new());
        assert_eq!(clean.exit_status(true), 0);
        let warn = Report::from_findings(vec![Finding::new(
            "L010",
            Severity::Warning,
            "a.rs",
            1,
            "m",
            "",
        )]);
        assert_eq!(warn.exit_status(false), 0);
        assert_eq!(warn.exit_status(true), 1);
        let err = Report::from_findings(vec![finding("L002", "a.rs", 1)]);
        assert_eq!(err.exit_status(false), 2);
    }

    #[test]
    fn json_escapes_and_stays_stable() {
        let report = Report::from_findings(vec![Finding::new(
            "L002",
            Severity::Error,
            "a.rs",
            1,
            "uses \"quotes\"\nand newlines",
            "",
        )]);
        let a = report.render_json();
        let b = report.render_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"quotes\\\"\\nand"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let report = Report::from_findings(Vec::new());
        assert!(report.render_json().contains("\"findings\": []"));
        assert!(report.render_human("lint").contains("0 errors, 0 warnings"));
    }
}

//! The workspace-wide lock-acquisition graph behind **L020**.
//!
//! Nodes are normalized lock paths ([`crate::parser`]); a directed edge
//! `A → B` records that somewhere in the workspace a guard on `A` was
//! still live when `B` was acquired, with both acquisition sites kept
//! for the report. A cycle in this graph is a lock-order inversion: two
//! threads running the participating functions concurrently can each
//! hold one lock while waiting for the other — the classic deadlock the
//! serve thread pool and the sharded `EvalEngine` must never reach.
//!
//! Detection is deterministic: edges are deduplicated first-site-wins in
//! file order, adjacency is sorted, and each simple cycle is reported
//! exactly once, rotated so its lexicographically smallest lock comes
//! first. Self-edges (re-acquiring a lock already held) are reported as
//! single-lock cycles, except for indexed families like `shards[_]`,
//! where two sites may legitimately address different elements.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, Severity};

/// One acquired-while-holding observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock whose guard was live.
    pub held: String,
    /// The lock acquired under it.
    pub acquired: String,
    /// Where the held lock was acquired.
    pub held_file: String,
    pub held_line: usize,
    /// Where the nested acquisition happened.
    pub acquired_file: String,
    pub acquired_line: usize,
}

/// Builds L020 findings for every lock-order cycle in `edges`. Returns
/// `(anchor file, finding)` pairs so the workspace driver can join them
/// into per-file pragma resolution.
pub fn lock_order_findings(edges: &[LockEdge]) -> Vec<(String, Finding)> {
    // Deduplicate by (held, acquired), first site wins — edges arrive in
    // sorted file order, so this is deterministic.
    let mut unique: BTreeMap<(String, String), &LockEdge> = BTreeMap::new();
    for edge in edges {
        unique
            .entry((edge.held.clone(), edge.acquired.clone()))
            .or_insert(edge);
    }

    let mut findings = Vec::new();

    // Self-edges: re-acquiring a lock already held is an immediate
    // self-deadlock with std's non-reentrant Mutex. Indexed families
    // (`shards[_]`) are exempt — distinct elements are distinct locks.
    for ((held, acquired), edge) in &unique {
        if held == acquired && !held.contains("[_]") {
            findings.push((
                edge.acquired_file.clone(),
                Finding::new(
                    "L020",
                    Severity::Error,
                    &edge.acquired_file,
                    edge.acquired_line,
                    format!(
                        "lock `{held}` is acquired again while already held (guard taken at \
                         {}:{}) — std mutexes are not reentrant, so this self-deadlocks",
                        edge.held_file, edge.held_line
                    ),
                    "drop the first guard before re-acquiring, or pass the guard down instead \
                     of the lock",
                ),
            ));
        }
    }

    // Adjacency over the non-self edges, sorted for determinism.
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (held, acquired) in unique.keys() {
        if held != acquired {
            adjacency.entry(held).or_default().push(acquired);
        }
    }
    for targets in adjacency.values_mut() {
        targets.sort_unstable();
        targets.dedup();
    }

    // Enumerate simple cycles: DFS from each start node in sorted order,
    // visiting only nodes >= the start so every cycle is found exactly
    // once, anchored at its smallest lock. Depth-capped as a backstop —
    // real lock graphs here have a handful of nodes.
    const MAX_CYCLE: usize = 8;
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        let mut cycles: Vec<Vec<String>> = Vec::new();
        dfs_cycles(start, start, &adjacency, &mut path, &mut cycles, MAX_CYCLE);
        for cycle in cycles {
            if seen.insert(cycle.clone()) {
                findings.push(cycle_finding(&cycle, &unique));
            }
        }
    }
    findings
}

fn dfs_cycles<'a>(
    start: &'a str,
    current: &'a str,
    adjacency: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<String>>,
    max_len: usize,
) {
    let Some(nexts) = adjacency.get(current) else {
        return;
    };
    for &next in nexts {
        if next == start {
            if path.len() >= 2 {
                cycles.push(path.iter().map(|s| (*s).to_string()).collect());
            }
            continue;
        }
        // Only nodes greater than the start (canonical anchor) and not
        // already on the path (simple cycles only).
        if next <= start || path.contains(&next) || path.len() >= max_len {
            continue;
        }
        path.push(next);
        dfs_cycles(start, next, adjacency, path, cycles, max_len);
        path.pop();
    }
}

/// Renders one cycle as a finding naming every acquisition site on it.
fn cycle_finding(
    cycle: &[String],
    unique: &BTreeMap<(String, String), &LockEdge>,
) -> (String, Finding) {
    let ring: String = cycle
        .iter()
        .chain(cycle.first())
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(" -> ");
    let mut sites = Vec::new();
    let mut anchor: Option<&LockEdge> = None;
    for i in 0..cycle.len() {
        let held = &cycle[i];
        let acquired = &cycle[(i + 1) % cycle.len()];
        if let Some(edge) = unique.get(&(held.clone(), acquired.clone())) {
            sites.push(format!(
                "`{acquired}` is acquired at {}:{} while `{held}` is held (guard taken at \
                 {}:{})",
                edge.acquired_file, edge.acquired_line, edge.held_file, edge.held_line
            ));
            if anchor.is_none() {
                anchor = Some(edge);
            }
        }
    }
    let (anchor_file, anchor_line) = anchor
        .map(|e| (e.acquired_file.clone(), e.acquired_line))
        .unwrap_or_else(|| (String::from("<unknown>"), 0));
    let finding = Finding::new(
        "L020",
        Severity::Error,
        &anchor_file,
        anchor_line,
        format!("lock-order cycle {ring}: {}", sites.join("; ")),
        "pick one global acquisition order for these locks and use it at every site, or \
         merge them into one lock; justify an impossible interleaving with \
         `// ssdep-lint: allow(L020, reason)`",
    );
    (anchor_file, finding)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &str, acquired: &str, file: &str, line: usize) -> LockEdge {
        LockEdge {
            held: held.to_string(),
            acquired: acquired.to_string(),
            held_file: file.to_string(),
            held_line: line.saturating_sub(1),
            acquired_file: file.to_string(),
            acquired_line: line,
        }
    }

    #[test]
    fn consistent_order_has_no_findings() {
        let edges = vec![
            edge("alpha", "beta", "a.rs", 10),
            edge("alpha", "beta", "b.rs", 20),
            edge("beta", "gamma", "a.rs", 30),
        ];
        assert!(lock_order_findings(&edges).is_empty());
    }

    #[test]
    fn two_lock_cycle_names_both_sites() {
        let edges = vec![
            edge("alpha", "beta", "crates/serve/src/lib.rs", 15),
            edge("beta", "alpha", "crates/opt/src/lib.rs", 25),
        ];
        let findings = lock_order_findings(&edges);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let (file, finding) = &findings[0];
        assert_eq!(file, "crates/serve/src/lib.rs");
        assert!(finding.message.contains("crates/serve/src/lib.rs:15"));
        assert!(finding.message.contains("crates/opt/src/lib.rs:25"));
        assert!(finding.message.contains("`alpha` -> `beta` -> `alpha`"));
    }

    #[test]
    fn each_cycle_reported_once() {
        let edges = vec![
            edge("a", "b", "x.rs", 1),
            edge("b", "c", "x.rs", 2),
            edge("c", "a", "x.rs", 3),
            edge("b", "a", "y.rs", 4),
        ];
        let findings = lock_order_findings(&edges);
        // One 3-cycle a->b->c->a and one 2-cycle a->b->a.
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn self_edge_is_a_self_deadlock_except_indexed_families() {
        let edges = vec![
            edge("journal", "journal", "x.rs", 7),
            edge("shards[_]", "shards[_]", "y.rs", 9),
        ];
        let findings = lock_order_findings(&edges);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].1.message.contains("not reentrant"));
    }
}

//! CLI entry point for `ssdep-lint`.
//!
//! ```text
//! ssdep-lint [--json] [--deny-warnings] [--root DIR] [FILES…]
//! ssdep-lint --explain L0xx
//! ```
//!
//! With no file arguments it lints the whole workspace under `--root`
//! (default: the current directory), including the cross-artifact L004
//! check. With file arguments it lints exactly those files with every
//! lint family enabled — the mode the fixture suite uses. `--explain`
//! prints the catalog entry for one code (rationale + fix example) and
//! exits without linting anything.
//!
//! Exit status: 0 clean, 1 warnings under `--deny-warnings`, 2 errors —
//! the same ladder as `ssdep check`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("ssdep-lint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("ssdep-lint: --explain needs a lint code (e.g. L020)");
                    return ExitCode::from(2);
                };
                return explain(&code);
            }
            "--help" | "-h" => {
                println!("usage: ssdep-lint [--json] [--deny-warnings] [--root DIR] [FILES...]");
                println!("       ssdep-lint --explain L0xx");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ssdep-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let result = if paths.is_empty() {
        ssdep_lint::lint_workspace(&root)
    } else {
        ssdep_lint::lint_paths(&root, &paths)
    };
    let report = match result {
        Ok(report) => report,
        Err(err) => {
            eprintln!("ssdep-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        let scope = if paths.is_empty() {
            "workspace".to_string()
        } else {
            format!("{} file(s)", paths.len())
        };
        print!("{}", report.render_human(&format!("ssdep-lint: {scope}")));
    }
    ExitCode::from(report.exit_status(deny_warnings))
}

/// Prints the catalog entry for `code`, or the list of known codes when
/// the code is unknown (exit 2, same as any other usage error).
fn explain(code: &str) -> ExitCode {
    match ssdep_lint::catalog::entry(code) {
        Some(entry) => {
            print!("{}", ssdep_lint::catalog::render(entry));
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = ssdep_lint::catalog::CATALOG
                .iter()
                .map(|e| e.code)
                .collect();
            eprintln!(
                "ssdep-lint: unknown lint code `{code}`; known codes: {}",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

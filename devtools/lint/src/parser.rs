//! A std-only block/brace-tree parser layered over [`crate::lexer`],
//! tracking `MutexGuard` / `RwLockGuard` bindings and their live scopes.
//!
//! The lexer gives us masked text (comments and string contents are
//! spaces, line structure preserved); this module adds just enough
//! structure for the concurrency lints:
//!
//! * a brace tree (every `{` paired with its `}`), so a binding's
//!   enclosing block — and therefore a guard's drop point — is known;
//! * recognition of lock acquisitions: `expr.lock()` always, and
//!   zero-argument `expr.read()` / `expr.write()` (which discriminates
//!   `RwLock` from `io::Read::read(&mut buf)` — the I/O forms always
//!   take arguments, and masked string arguments still occupy columns);
//! * the **live scope** of each acquired guard, by statement shape:
//!   - `let g = expr.lock()…;` (incl. `.unwrap()` chains and
//!     `let g = match expr.lock() { Ok(g) => g, Err(p) => p.into_inner() }`)
//!     lives to the end of the enclosing block, truncated at `drop(g)`;
//!   - `if let Ok(g) = expr.lock()` / `while let …` lives for the
//!     condition's body block;
//!   - a bare `match expr.lock() { … }` scrutinee lives for the match
//!     body;
//!   - any other expression temporary lives to the end of its statement.
//!
//! **Known limits** (documented in `DESIGN.md` §11): no macro expansion,
//! no trait dispatch, and no interprocedural analysis — a guard returned
//! from a helper (`fn shard(&self) -> MutexGuard<'_, Shard>`) is
//! invisible at its call sites, and lock paths are matched nominally by
//! field name, so two same-named fields on different structs alias.

use crate::lexer::{LexedFile, FLAG_TEST};

/// What kind of lock an acquisition takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock()`.
    Mutex,
    /// `RwLock::read()`.
    RwRead,
    /// `RwLock::write()`.
    RwWrite,
}

/// One lock acquisition with the char range where its guard is live.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Normalized lock path (`shards[_]`, `receiver`, `alpha`), keyed by
    /// the trailing field name so call sites in different files match.
    pub path: String,
    /// What kind of lock this is.
    pub kind: LockKind,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Char index (into the masked text) of the acquisition method.
    pub pos: usize,
    /// Live scope as a half-open char range of the masked text.
    pub scope: (usize, usize),
    /// The binding name, when the guard is `let`-bound.
    pub binding: Option<String>,
    /// Whether the acquisition sits in a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// The parsed view of one file: its guards with live scopes.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub guards: Vec<Guard>,
}

impl ParsedFile {
    /// Parses the lexed file's masked text.
    pub fn parse(lexed: &LexedFile) -> ParsedFile {
        Parser::new(lexed).run()
    }

    /// Pairs `(holding, acquired)` of guard indices where the second
    /// acquisition happens inside the first guard's live scope — the
    /// acquired-while-holding edge set the lock-order graph consumes.
    pub fn nested_acquisitions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, held) in self.guards.iter().enumerate() {
            for (j, acq) in self.guards.iter().enumerate() {
                if i != j && acq.pos > held.scope.0 && acq.pos < held.scope.1 {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    line_at: Vec<usize>,
    /// `(open, close)` char indices of every brace pair, in open order.
    blocks: Vec<(usize, usize)>,
    lexed: &'a LexedFile,
}

impl<'a> Parser<'a> {
    fn new(lexed: &'a LexedFile) -> Parser<'a> {
        let chars: Vec<char> = lexed.masked.chars().collect();
        let mut line_at = Vec::with_capacity(chars.len());
        let mut line = 1usize;
        for &c in &chars {
            line_at.push(line);
            if c == '\n' {
                line += 1;
            }
        }
        let blocks = brace_pairs(&chars);
        Parser {
            chars,
            line_at,
            blocks,
            lexed,
        }
    }

    fn run(&self) -> ParsedFile {
        let mut guards = Vec::new();
        let mut i = 0usize;
        while i < self.chars.len() {
            let c = self.chars[i];
            if !(c.is_alphabetic() || c == '_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < self.chars.len() && (self.chars[i].is_alphanumeric() || self.chars[i] == '_')
            {
                i += 1;
            }
            let ident: String = self.chars[start..i].iter().collect();
            let kind = match ident.as_str() {
                "lock" => LockKind::Mutex,
                "read" => LockKind::RwRead,
                "write" => LockKind::RwWrite,
                _ => continue,
            };
            if let Some(guard) = self.guard_at(start, i, kind) {
                guards.push(guard);
            }
        }
        ParsedFile { guards }
    }

    /// Builds the [`Guard`] for a candidate acquisition ident, if the
    /// surrounding shape really is one.
    fn guard_at(&self, start: usize, end: usize, kind: LockKind) -> Option<Guard> {
        // Must be `.method()` — a *zero-argument* call. The I/O forms
        // (`read(&mut buf)`, `write(b"…")`) always pass arguments, and
        // masked literals still occupy their columns, so requiring `)`
        // immediately after `(` rejects them.
        let dot = self.prev_non_ws(start)?;
        if self.chars[dot] != '.' {
            return None;
        }
        let open = self.skip_ws(end);
        if self.chars.get(open) != Some(&'(') || self.chars.get(open + 1) != Some(&')') {
            return None;
        }
        let after_call = open + 2;

        let chain_start = self.chain_start(dot);
        let raw: String = self.chars[chain_start..dot].iter().collect();
        let path = normalize_lock_path(&raw);
        if path.is_empty() {
            return None;
        }

        let stmt_start = self.statement_start(chain_start);
        let head: String = self.chars[stmt_start..chain_start].iter().collect();
        let head = head.trim();

        let mut binding = None;
        let scope = if head.starts_with("if") || head.starts_with("while") {
            // `if let Ok(g) = expr.lock()` — the guard lives for the
            // condition's body block.
            binding = let_pattern_binding(head);
            self.next_block_extent(after_call)
        } else if head.starts_with("let") {
            // `let g = expr.lock()…;` or `let g = match expr.lock() {…};`
            // — lives to the end of the enclosing block, truncated at
            // `drop(g)`.
            binding = let_pattern_binding(head);
            let block_end = self.enclosing_block_end(stmt_start);
            let mut scope_end = block_end;
            if let Some(name) = &binding {
                if let Some(dropped) = self.drop_pos(after_call, block_end, name) {
                    scope_end = dropped;
                }
            }
            (after_call, scope_end)
        } else if head.contains("match") {
            // Bare `match expr.lock() { … }` scrutinee: lives for the
            // match body.
            self.next_block_extent(after_call)
        } else {
            // Expression temporary: lives to the end of the statement.
            (after_call, self.statement_end(after_call))
        };

        Some(Guard {
            path,
            kind,
            line: self.line(start),
            pos: start,
            scope,
            binding,
            in_test: self.lexed.has_flag(self.line(start), FLAG_TEST),
        })
    }

    fn line(&self, i: usize) -> usize {
        self.line_at
            .get(i)
            .copied()
            .unwrap_or_else(|| self.line_at.last().copied().unwrap_or(1))
    }

    fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.chars.len() && self.chars[i].is_whitespace() {
            i += 1;
        }
        i
    }

    fn prev_non_ws(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.chars[j].is_whitespace())
    }

    /// Start of the postfix receiver chain whose final `.` sits at `dot`:
    /// identifiers, `.`/`::`, and balanced `(…)` / `[…]` groups.
    fn chain_start(&self, dot: usize) -> usize {
        let mut i = dot;
        let mut depth = 0usize;
        while i > 0 {
            let c = self.chars[i - 1];
            let consume = if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
                true
            } else if c == ')' || c == ']' {
                depth += 1;
                true
            } else if c == '(' || c == '[' {
                if depth == 0 {
                    false
                } else {
                    depth -= 1;
                    true
                }
            } else {
                depth > 0
            };
            if !consume {
                break;
            }
            i -= 1;
        }
        i
    }

    /// First char of the statement containing `pos`: just past the
    /// nearest preceding `;`, `{`, or `}`.
    fn statement_start(&self, pos: usize) -> usize {
        let mut i = pos;
        while i > 0 {
            match self.chars[i - 1] {
                ';' | '{' | '}' => return i,
                _ => i -= 1,
            }
        }
        0
    }

    /// Char index just past the end of the statement starting inside the
    /// current nesting at `from`: a `;` or `,` at relative depth 0, or
    /// the close of the enclosing block.
    fn statement_end(&self, from: usize) -> usize {
        let mut depth = 0i32;
        let mut i = from;
        while i < self.chars.len() {
            match self.chars[i] {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        return i;
                    }
                    depth -= 1;
                }
                ';' | ',' if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        self.chars.len()
    }

    /// Close index of the innermost brace pair containing `pos`, or the
    /// file end when `pos` is at the top level.
    fn enclosing_block_end(&self, pos: usize) -> usize {
        let mut best: Option<(usize, usize)> = None;
        for &(open, close) in &self.blocks {
            if open < pos && pos <= close && best.is_none_or(|(o, _)| open > o) {
                best = Some((open, close));
            }
        }
        best.map_or(self.chars.len(), |(_, close)| close)
    }

    /// Scope of the next block after `from`: `(from, close-of-that-block)`.
    /// Used for `if let` bodies and bare `match` scrutinees.
    fn next_block_extent(&self, from: usize) -> (usize, usize) {
        for &(open, close) in &self.blocks {
            if open >= from {
                return (from, close);
            }
        }
        (from, self.chars.len())
    }

    /// Position of `drop(name)` between `from` and `until`, if any.
    fn drop_pos(&self, from: usize, until: usize, name: &str) -> Option<usize> {
        let mut i = from;
        while i + 4 < until.min(self.chars.len()) {
            if self.chars[i..].starts_with(&['d', 'r', 'o', 'p'])
                && (i == 0 || !is_ident_char(self.chars[i - 1]))
            {
                let mut j = self.skip_ws(i + 4);
                if self.chars.get(j) == Some(&'(') {
                    j = self.skip_ws(j + 1);
                    let name_chars: Vec<char> = name.chars().collect();
                    if self.chars[j..].starts_with(&name_chars[..]) {
                        let after = self.skip_ws(j + name_chars.len());
                        if self.chars.get(after) == Some(&')') {
                            return Some(i);
                        }
                    }
                }
            }
            i += 1;
        }
        None
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Every `{`/`}` pair in the masked text, by a simple depth stack.
fn brace_pairs(chars: &[char]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '{' => stack.push(i),
            '}' => {
                if let Some(open) = stack.pop() {
                    pairs.push((open, i));
                }
            }
            _ => {}
        }
    }
    pairs.sort_unstable();
    pairs
}

/// The binding name of a `let` pattern head (`let g =`, `let mut g =`,
/// `if let Ok(mut g) =`): the last identifier between `let` and `=`,
/// skipping `mut` and pattern constructors.
fn let_pattern_binding(head: &str) -> Option<String> {
    let eq = head.find('=')?;
    let let_pos = head.find("let")?;
    if let_pos >= eq {
        return None;
    }
    let pattern = &head[let_pos + 3..eq];
    let mut last = None;
    let mut current = String::new();
    for c in pattern.chars().chain(std::iter::once(' ')) {
        if is_ident_char(c) {
            current.push(c);
        } else if !current.is_empty() {
            let word = std::mem::take(&mut current);
            if word != "mut"
                && word != "ref"
                && !word.chars().next().is_some_and(char::is_uppercase)
            {
                last = Some(word);
            }
        }
    }
    last
}

/// Normalizes a receiver chain to a lock path: whitespace stripped,
/// outer parens/borrows peeled, `self.` dropped, index expressions
/// collapsed to `[_]`, call arguments collapsed to `()` — then keyed by
/// the trailing field segment so acquisition sites in different files
/// (through different local names) match nominally.
fn normalize_lock_path(raw: &str) -> String {
    // Peel leading borrows / `mut ` / outer parens (token-wise, so a
    // field named `mutex` keeps its name).
    let mut s = raw.trim().to_string();
    loop {
        let mut t = s.trim().to_string();
        if let Some(rest) = t.strip_prefix(['&', '*']) {
            t = rest.to_string();
        } else if let Some(rest) = t.strip_prefix("mut ") {
            t = rest.to_string();
        } else if t.starts_with('(') && t.ends_with(')') && t.len() >= 2 {
            t = t[1..t.len() - 1].to_string();
        }
        if t == s {
            break;
        }
        s = t;
    }
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    let s = s.strip_prefix("self.").unwrap_or(&s).to_string();
    // Collapse bracket / paren groups so `shards[index]` and
    // `shards[(i + 1) % n]` both read `shards[_]`.
    let mut out = String::new();
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '[' => {
                if depth == 0 {
                    out.push_str("[_");
                }
                depth += 1;
            }
            '(' => {
                if depth == 0 {
                    out.push('(');
                }
                depth += 1;
            }
            ']' | ')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(c);
                }
            }
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    // Key by the trailing field segment: `shared.alpha` and
    // `state.alpha` are the same lock field.
    let trimmed = out.trim_end_matches('.');
    let key = match trimmed.rfind('.') {
        Some(i) if i + 1 < trimmed.len() => &trimmed[i + 1..],
        _ => trimmed,
    };
    key.trim_start_matches(':').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&LexedFile::lex(src))
    }

    #[test]
    fn normalizes_lock_paths() {
        assert_eq!(normalize_lock_path("self.shards[index]"), "shards[_]");
        assert_eq!(normalize_lock_path("shared.alpha"), "alpha");
        assert_eq!(normalize_lock_path("receiver"), "receiver");
        assert_eq!(normalize_lock_path("(*map)"), "map");
        assert_eq!(normalize_lock_path("&state.beta"), "beta");
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let src = "\
fn f(m: &std::sync::Mutex<u64>) {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    work();
    more();
}
";
        let parsed = parse(src);
        assert_eq!(parsed.guards.len(), 1);
        let g = &parsed.guards[0];
        assert_eq!(g.path, "m");
        assert_eq!(g.binding.as_deref(), Some("g"));
        assert_eq!(g.kind, LockKind::Mutex);
        // Scope reaches past both calls to the closing brace.
        let tail: String = src.chars().take(g.scope.1).collect();
        assert!(tail.contains("more()"), "scope too short: {g:?}");
    }

    #[test]
    fn drop_truncates_the_scope() {
        let src = "\
fn f(m: &std::sync::Mutex<u64>) {
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    drop(g);
    after();
}
";
        let parsed = parse(src);
        assert_eq!(parsed.guards.len(), 1);
        let g = &parsed.guards[0];
        assert_eq!(g.binding.as_deref(), Some("g"));
        let scope_text: String = src
            .chars()
            .skip(g.scope.0)
            .take(g.scope.1 - g.scope.0)
            .collect();
        assert!(
            !scope_text.contains("after()"),
            "drop(g) must end the scope: {scope_text}"
        );
    }

    #[test]
    fn match_temporary_scopes_to_the_match_body() {
        let src = "\
fn len(m: &std::sync::Mutex<Vec<u64>>) -> usize {
    match m.lock() {
        Ok(g) => g.len(),
        Err(p) => p.into_inner().len(),
    }
}
fn after() {}
";
        let parsed = parse(src);
        assert_eq!(parsed.guards.len(), 1);
        let g = &parsed.guards[0];
        let scope_text: String = src
            .chars()
            .skip(g.scope.0)
            .take(g.scope.1 - g.scope.0)
            .collect();
        assert!(scope_text.contains("into_inner"));
        assert!(!scope_text.contains("fn after"));
    }

    #[test]
    fn rwlock_read_is_zero_arg_only() {
        let src = "\
fn f(l: &std::sync::RwLock<u64>, s: &mut std::net::TcpStream, buf: &mut [u8]) {
    let g = l.read().unwrap_or_else(|p| p.into_inner());
    let _ = std::io::Read::read(s, buf);
    let _n = s.read(buf);
}
";
        let parsed = parse(src);
        assert_eq!(parsed.guards.len(), 1, "{:?}", parsed.guards);
        assert_eq!(parsed.guards[0].kind, LockKind::RwRead);
        assert_eq!(parsed.guards[0].path, "l");
    }

    #[test]
    fn nested_acquisitions_form_edges() {
        let src = "\
fn f(s: &Shared) {
    let a = match s.alpha.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let b = match s.beta.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let _ = (*a, *b);
}
";
        let parsed = parse(src);
        assert_eq!(parsed.guards.len(), 2);
        let edges = parsed.nested_acquisitions();
        assert_eq!(edges, vec![(0, 1)], "alpha holds while beta acquires");
        assert_eq!(parsed.guards[0].path, "alpha");
        assert_eq!(parsed.guards[1].path, "beta");
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(m: &std::sync::Mutex<u64>) {
        let g = m.lock().unwrap();
        let _ = *g;
    }
}
";
        let parsed = parse(src);
        assert_eq!(parsed.guards.len(), 1);
        assert!(parsed.guards[0].in_test);
    }
}

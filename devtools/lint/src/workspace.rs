//! Workspace walking, file roles, and the cross-artifact L004 check.
//!
//! L004 keeps the `D0xx` runtime-diagnostic scheme honest across three
//! artifacts: every code *defined* in crate sources must have a row in
//! the `DESIGN.md` §10 catalog and be *exercised* by at least one test;
//! catalog rows with no defining source are flagged the other way.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::findings::{Finding, Report, Severity};
use crate::graph::{self, LockEdge};
use crate::lexer::{LexedFile, FLAG_TEST};
use crate::parser::ParsedFile;
use crate::rules::{self, Role};

/// One lexed workspace source file.
struct FileEntry {
    /// Root-relative path with forward slashes.
    rel: String,
    lexed: LexedFile,
    role: Role,
}

/// Lints the whole workspace under `root`: every `crates/*/src/**/*.rs`
/// with its crate's role, plus the cross-artifact L004 check against
/// `DESIGN.md` and `crates/*/tests`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut entries = Vec::new();
    let mut test_files = Vec::new();
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let crate_name = file_name(&crate_dir);
        let src = crate_dir.join("src");
        if src.is_dir() {
            for path in rust_files_under(&src)? {
                let rel = relative(root, &path);
                let source = fs::read_to_string(&path)?;
                let role = role_for(&crate_name, &rel);
                entries.push(FileEntry {
                    rel,
                    lexed: LexedFile::lex(&source),
                    role,
                });
            }
        }
        let tests = crate_dir.join("tests");
        if tests.is_dir() {
            for path in rust_files_under(&tests)? {
                let source = fs::read_to_string(&path)?;
                test_files.push(LexedFile::lex(&source));
            }
        }
    }

    let mut per_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for entry in &entries {
        per_file.insert(
            entry.rel.clone(),
            rules::raw_findings(&entry.rel, &entry.lexed, entry.role),
        );
    }
    let mut catalog_findings = Vec::new();
    lint_code_consistency(
        root,
        &entries,
        &test_files,
        &mut per_file,
        &mut catalog_findings,
    )?;
    lint_lock_order(&entries, &mut per_file);

    let mut all = catalog_findings;
    for entry in &entries {
        let raw = per_file.remove(&entry.rel).unwrap_or_default();
        all.extend(rules::apply_pragmas(&entry.rel, &entry.lexed, raw));
    }
    Ok(Report::from_findings(all))
}

/// Lints explicit files (fixture / spot-check mode): every lint family
/// applies, the given files form one lock-order graph scope, and the
/// cross-artifact check is skipped.
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let mut entries = Vec::new();
    for path in paths {
        let source = fs::read_to_string(path)?;
        let rel = relative(root, path);
        if entries.iter().any(|e: &FileEntry| e.rel == rel) {
            continue;
        }
        entries.push(FileEntry {
            rel,
            lexed: LexedFile::lex(&source),
            role: Role::ALL,
        });
    }
    let mut per_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for entry in &entries {
        per_file.insert(
            entry.rel.clone(),
            rules::raw_findings(&entry.rel, &entry.lexed, entry.role),
        );
    }
    lint_lock_order(&entries, &mut per_file);
    let mut all = Vec::new();
    for entry in &entries {
        let raw = per_file.remove(&entry.rel).unwrap_or_default();
        all.extend(rules::apply_pragmas(&entry.rel, &entry.lexed, raw));
    }
    Ok(Report::from_findings(all))
}

// ---------------------------------------------------------------------
// L020 — workspace lock-order graph
// ---------------------------------------------------------------------

/// Builds the acquired-while-holding edge set over every concurrency-
/// role file and joins each cycle finding into `per_file`, so L020
/// participates in the same pragma resolution as per-file lints.
fn lint_lock_order(entries: &[FileEntry], per_file: &mut BTreeMap<String, Vec<Finding>>) {
    let mut edges: Vec<LockEdge> = Vec::new();
    for entry in entries {
        if !entry.role.concurrency {
            continue;
        }
        let parsed = ParsedFile::parse(&entry.lexed);
        for (held_idx, acquired_idx) in parsed.nested_acquisitions() {
            let held = &parsed.guards[held_idx];
            let acquired = &parsed.guards[acquired_idx];
            if held.in_test || acquired.in_test {
                continue;
            }
            edges.push(LockEdge {
                held: held.path.clone(),
                acquired: acquired.path.clone(),
                held_file: entry.rel.clone(),
                held_line: held.line,
                acquired_file: entry.rel.clone(),
                acquired_line: acquired.line,
            });
        }
    }
    for (rel, finding) in graph::lock_order_findings(&edges) {
        per_file.entry(rel).or_default().push(finding);
    }
}

/// The lint families a crate source file participates in.
fn role_for(crate_name: &str, rel: &str) -> Role {
    let units = rel.ends_with("/units.rs");
    let library = !matches!(crate_name, "cli" | "bench");
    let model = library && crate_name != "integration" && !units;
    // journal.rs and sink.rs *are* the seam: salvage and FileSink own
    // the raw file handles everything else must route through.
    let seam = rel.ends_with("/journal.rs") || rel.ends_with("/sink.rs");
    // pool.rs *is* the admission seam: WorkQueue and join_with_deadline
    // own the raw channel and join everything else must route through.
    let admission_seam = rel.ends_with("/pool.rs");
    // The modules the supervisor hot path runs through per candidate:
    // the staged engine (fingerprint + prepare) and the core analysis
    // fold. Serialization there is a per-candidate tax the structural
    // fingerprint exists to remove; anything legitimate (the serde
    // equivalence fallback) carries an explicit pragma.
    let hot_path = (crate_name == "opt" && rel.ends_with("/engine.rs"))
        || (crate_name == "core" && rel.contains("/analysis/"));
    Role {
        library,
        // units.rs *defines* the newtypes, so raw f64 is its business.
        signatures: crate_name == "core" && !units,
        model,
        io_seam: crate_name == "opt" && !seam,
        bounded: crate_name == "serve" && !admission_seam,
        hot_path,
        // The crates with cross-thread lock traffic: the serve thread
        // pool and the sharded EvalEngine / parallel supervisor.
        concurrency: matches!(crate_name, "serve" | "opt"),
        // The crates whose outputs are contractually byte-stable:
        // journal lines (opt), /evaluate JSON (serve), --json (cli).
        stable: matches!(crate_name, "serve" | "opt" | "cli"),
    }
}

// ---------------------------------------------------------------------
// L004 — D0xx cross-artifact consistency
// ---------------------------------------------------------------------

fn lint_code_consistency(
    root: &Path,
    entries: &[FileEntry],
    test_files: &[LexedFile],
    per_file: &mut BTreeMap<String, Vec<Finding>>,
    catalog_findings: &mut Vec<Finding>,
) -> io::Result<()> {
    // Defined: D-code string literals in non-test crate code, first
    // occurrence wins as the anchor.
    let mut defined: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut tested: BTreeSet<String> = BTreeSet::new();
    for entry in entries {
        for (line, text) in &entry.lexed.strings {
            if !is_diag_code(text) {
                continue;
            }
            if entry.lexed.has_flag(*line, FLAG_TEST) {
                tested.insert(text.clone());
            } else {
                defined
                    .entry(text.clone())
                    .or_insert_with(|| (entry.rel.clone(), *line));
            }
        }
    }
    for lexed in test_files {
        for (_, text) in &lexed.strings {
            if is_diag_code(text) {
                tested.insert(text.clone());
            }
        }
    }

    // Catalog: `| D0xx | …` rows in DESIGN.md.
    let design_path = root.join("DESIGN.md");
    let design = if design_path.is_file() {
        fs::read_to_string(&design_path)?
    } else {
        String::new()
    };
    let mut catalog: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in design.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix('|') else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let code = cell.trim();
        if !is_diag_code(code) {
            continue;
        }
        let lineno = idx + 1;
        if catalog.insert(code.to_string(), lineno).is_some() {
            catalog_findings.push(Finding::new(
                "L004",
                Severity::Error,
                "DESIGN.md",
                lineno,
                format!("diagnostic code {code} has a duplicate catalog row"),
                "keep exactly one row per code in the DESIGN.md §10 catalog",
            ));
        }
    }

    for (code, (rel, line)) in &defined {
        let mut push = |message: String, suggestion: String| {
            let finding = Finding::new("L004", Severity::Error, rel, *line, message, suggestion);
            per_file.entry(rel.clone()).or_default().push(finding);
        };
        if !catalog.contains_key(code) {
            push(
                format!("diagnostic code {code} is missing from the DESIGN.md §10 catalog"),
                format!("add a `| {code} | … |` row describing the check"),
            );
        }
        if !tested.contains(code) {
            push(
                format!("diagnostic code {code} is not exercised by any test"),
                format!("add a test that asserts a diagnosis emits {code}"),
            );
        }
    }
    for (code, lineno) in &catalog {
        if !defined.contains_key(code) {
            catalog_findings.push(Finding::new(
                "L004",
                Severity::Warning,
                "DESIGN.md",
                *lineno,
                format!("catalog row {code} has no defining source"),
                "remove the stale row or implement the diagnostic",
            ));
        }
    }
    Ok(())
}

/// Whether `s` is exactly a runtime diagnostic code (`D` + 3 digits).
fn is_diag_code(s: &str) -> bool {
    s.len() == 4 && s.starts_with('D') && s[1..].bytes().all(|b| b.is_ascii_digit())
}

// ---------------------------------------------------------------------
// filesystem helpers (std-only, deterministic order)
// ---------------------------------------------------------------------

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Every `.rs` file under `dir`, recursively, in sorted order.
fn rust_files_under(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs::read_dir(&current)?.collect::<io::Result<Vec<_>>>()? {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// `path` relative to `root`, forward-slashed; falls back to the path
/// itself when it is not under `root`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_codes_match_exactly() {
        assert!(is_diag_code("D020"));
        assert!(!is_diag_code("D20"));
        assert!(!is_diag_code("D0200"));
        assert!(!is_diag_code("L004"));
        assert!(!is_diag_code("code D020"));
    }

    #[test]
    fn roles_follow_crate_boundaries() {
        let core = role_for("core", "crates/core/src/failure.rs");
        assert!(core.library && core.model && core.signatures);
        let units = role_for("core", "crates/core/src/units.rs");
        assert!(units.library && !units.model && !units.signatures);
        let cli = role_for("cli", "crates/cli/src/app.rs");
        assert!(!cli.library && !cli.model && !cli.signatures);
        let integration = role_for("integration", "crates/integration/src/lib.rs");
        assert!(integration.library && !integration.model);
        assert!(!core.io_seam && !cli.io_seam);
        let supervisor = role_for("opt", "crates/opt/src/supervisor.rs");
        assert!(supervisor.io_seam, "opt code must go through the sink seam");
        let journal = role_for("opt", "crates/opt/src/journal.rs");
        let sink = role_for("opt", "crates/opt/src/sink.rs");
        assert!(
            !journal.io_seam && !sink.io_seam,
            "the seam itself is exempt"
        );
        let server = role_for("serve", "crates/serve/src/server.rs");
        assert!(
            server.bounded,
            "serve code must go through the admission seam"
        );
        let pool = role_for("serve", "crates/serve/src/pool.rs");
        assert!(!pool.bounded, "the admission seam itself is exempt");
        assert!(!supervisor.bounded && !cli.bounded);
        assert!(
            server.concurrency && supervisor.concurrency,
            "serve and opt carry the cross-thread lock traffic"
        );
        assert!(!core.concurrency && !cli.concurrency);
        assert!(
            server.stable && supervisor.stable && cli.stable,
            "journal, /evaluate, and --json outputs are byte-stable"
        );
        assert!(!core.stable && !integration.stable);
    }
}

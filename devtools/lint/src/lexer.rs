//! A lightweight, std-only Rust lexer for the lint pass.
//!
//! The offline build environment has no `syn`, so `ssdep-lint` does its
//! own scanning. The lexer does three things the lints need:
//!
//! 1. **Masking** — comments and the *contents* of string/char literals
//!    are replaced with spaces (line structure preserved), so token
//!    scans over the masked text can never fire inside `"…unwrap()…"`
//!    or a doc comment.
//! 2. **Pragmas** — `// ssdep-lint: allow(L00x, reason)` comments are
//!    parsed into [`Pragma`]s, including malformed ones (missing code or
//!    reason) so the driver can warn about them.
//! 3. **Regions** — `#[cfg(test)]` / `#[test]` items and
//!    `#[allow(clippy::…)]` scopes are resolved to per-line flags, so
//!    lints skip test code and respect existing, clippy-visible
//!    justifications instead of demanding a second pragma dialect.
//!
//! String literal contents are still collected (with line numbers) for
//! the cross-artifact L004 check, which needs the `D0xx` codes that live
//! *inside* strings.

/// Line is inside a `#[cfg(test)]` item or a `#[test]` function.
pub const FLAG_TEST: u8 = 1;
/// Line is covered by `#[allow(clippy::unwrap_used)]`.
pub const FLAG_ALLOW_UNWRAP: u8 = 2;
/// Line is covered by `#[allow(clippy::expect_used)]`.
pub const FLAG_ALLOW_EXPECT: u8 = 4;
/// Line is covered by `#[allow(clippy::panic)]`.
pub const FLAG_ALLOW_PANIC: u8 = 8;
/// Line is covered by `#[allow(clippy::unreachable)]`.
pub const FLAG_ALLOW_UNREACHABLE: u8 = 16;

/// One `// ssdep-lint: …` comment, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// The lint codes it allows (e.g. `L002`).
    pub codes: Vec<String>,
    /// The free-text justification after the codes.
    pub reason: String,
    /// Whether the comment is alone on its line (then it applies to the
    /// *next* line instead of its own).
    pub own_line: bool,
    /// Why the pragma could not be parsed, when it could not.
    pub malformed: Option<String>,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// The masked source as one string, newlines preserved.
    pub masked: String,
    /// Byte offset of the start of each line in `masked`.
    line_starts: Vec<usize>,
    /// Per-line region flags (`FLAG_*`), indexed by line - 1.
    pub flags: Vec<u8>,
    /// `ssdep-lint` pragmas, in file order.
    pub pragmas: Vec<Pragma>,
    /// String literal contents: (1-based line of the opening quote, text).
    pub strings: Vec<(usize, String)>,
}

impl LexedFile {
    /// Lexes `source` into masked text, pragmas, strings, and regions.
    pub fn lex(source: &str) -> LexedFile {
        let (masked, comments, strings) = mask(source);
        let line_starts = line_starts(&masked);
        let line_count = line_starts.len();
        let mut file = LexedFile {
            masked,
            line_starts,
            flags: vec![0; line_count],
            pragmas: Vec::new(),
            strings,
        };
        for (line, text, own_line) in comments {
            if let Some(pragma) = parse_pragma(line, &text, own_line) {
                file.pragmas.push(pragma);
            }
        }
        mark_regions(&mut file);
        file
    }

    /// The 1-based line containing byte offset `pos` of `masked`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether the (1-based) line carries `flag`.
    pub fn has_flag(&self, line: usize, flag: u8) -> bool {
        self.flags
            .get(line.saturating_sub(1))
            .is_some_and(|f| f & flag != 0)
    }
}

/// Byte offsets where each line starts.
fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// A line comment: `(line, text-after-slashes, own_line)`.
type LineComment = (usize, String, bool);
/// A string literal's contents: `(line, text)`.
type StringLiteral = (usize, String);

/// Masks comments and literal contents. Returns the masked text, the
/// line comments, and the string literal contents.
#[allow(clippy::too_many_lines)]
fn mask(source: &str) -> (String, Vec<LineComment>, Vec<StringLiteral>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Pushes a masked placeholder, preserving newlines.
    fn push_masked(out: &mut String, c: char, line: &mut usize) {
        if c == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments): capture to EOL.
                let start_line = line;
                let mut text = String::new();
                let mut j = i + 2;
                // Doc comment slashes / inner-doc bangs are part of the
                // marker, not the text.
                while matches!(chars.get(j), Some('/' | '!')) {
                    j += 1;
                }
                while j < chars.len() && chars[j] != '\n' {
                    text.push(chars[j]);
                    j += 1;
                }
                for _ in i..j {
                    out.push(' ');
                }
                comments.push((start_line, text, !line_has_code));
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nested.
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        push_masked(&mut out, chars[i], &mut line);
                        i += 1;
                    }
                }
            }
            '"' => {
                // Plain (or byte) string literal.
                let start_line = line;
                let mut text = String::new();
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            text.push(chars[i]);
                            if let Some(&next) = chars.get(i + 1) {
                                text.push(next);
                                push_masked(&mut out, chars[i], &mut line);
                                push_masked(&mut out, next, &mut line);
                                i += 2;
                            } else {
                                push_masked(&mut out, chars[i], &mut line);
                                i += 1;
                            }
                        }
                        '"' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        other => {
                            text.push(other);
                            push_masked(&mut out, other, &mut line);
                            i += 1;
                        }
                    }
                }
                strings.push((start_line, text));
                line_has_code = true;
            }
            'r' | 'b' if starts_raw_string(&chars, i) => {
                // Raw (or raw byte) string: r"…", r#"…"#, br##"…"##…
                let start_line = line;
                let mut j = i;
                if chars[j] == 'b' {
                    out.push(' ');
                    j += 1;
                }
                out.push(' ');
                j += 1; // past 'r'
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    out.push(' ');
                    j += 1;
                }
                out.push(' ');
                j += 1; // past the opening quote
                let mut text = String::new();
                'raw: while j < chars.len() {
                    if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    text.push(chars[j]);
                    push_masked(&mut out, chars[j], &mut line);
                    j += 1;
                }
                strings.push((start_line, text));
                i = j;
                line_has_code = true;
            }
            '\'' => {
                // Char literal vs lifetime. A lifetime is `'ident` not
                // closed by a quote right after one char.
                let is_char_literal = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(_) => chars.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char_literal {
                    out.push(' ');
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else {
                        push_masked(&mut out, chars[i], &mut line);
                        i += 1;
                    }
                    // Consume to the closing quote (multi-char escapes
                    // like '\u{1F600}').
                    while i < chars.len() && chars[i] != '\'' {
                        push_masked(&mut out, chars[i], &mut line);
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push('\'');
                    i += 1;
                }
                line_has_code = true;
            }
            '\n' => {
                out.push('\n');
                line += 1;
                line_has_code = false;
                i += 1;
            }
            other => {
                if !other.is_whitespace() {
                    line_has_code = true;
                }
                out.push(other);
                i += 1;
            }
        }
    }
    (out, comments, strings)
}

/// Whether position `i` (at `r` or `b`) opens a raw string literal.
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`var` vs `r"`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    j += 1; // past 'r'
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Parses one line comment into a [`Pragma`], if it carries the marker.
fn parse_pragma(line: usize, text: &str, own_line: bool) -> Option<Pragma> {
    let rest = text.trim().strip_prefix("ssdep-lint:")?.trim();
    let malformed = |why: &str| {
        Some(Pragma {
            line,
            codes: Vec::new(),
            reason: String::new(),
            own_line,
            malformed: Some(why.to_string()),
        })
    };
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return malformed("expected `allow(L00x, reason)`");
    };
    let mut codes = Vec::new();
    let mut reason_parts: Vec<&str> = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if reason_parts.is_empty() && is_lint_code(part) {
            codes.push(part.to_string());
        } else {
            reason_parts.push(part);
        }
    }
    if codes.is_empty() {
        return malformed("no lint code (expected `allow(L00x, reason)`)");
    }
    let reason = reason_parts.join(", ");
    if reason.trim().is_empty() {
        return malformed("missing reason (expected `allow(L00x, reason)`)");
    }
    Some(Pragma {
        line,
        codes,
        reason,
        own_line,
        malformed: None,
    })
}

/// Whether `s` looks like a lint code (`L` + 3 digits).
fn is_lint_code(s: &str) -> bool {
    s.len() == 4 && s.starts_with('L') && s[1..].bytes().all(|b| b.is_ascii_digit())
}

/// Resolves `#[…]` attributes to per-line region flags.
fn mark_regions(file: &mut LexedFile) {
    let chars: Vec<char> = file.masked.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        let inner = chars.get(j) == Some(&'!');
        if inner {
            j += 1;
        }
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'[') {
            i += 1;
            continue;
        }
        // Balanced-bracket attribute content.
        let mut depth = 0usize;
        let mut content = String::new();
        while j < chars.len() {
            match chars[j] {
                '[' => {
                    depth += 1;
                    if depth > 1 {
                        content.push('[');
                    }
                }
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                    content.push(']');
                }
                c => content.push(c),
            }
            j += 1;
        }
        let flags = attr_flags(&content);
        if flags == 0 {
            i = j;
            continue;
        }
        let start_line = file.line_of(byte_offset(&chars, attr_start));
        let end = if inner {
            chars.len()
        } else {
            item_extent_end(&chars, j)
        };
        let end_line = file.line_of(byte_offset(&chars, end.saturating_sub(1).max(attr_start)));
        for l in start_line..=end_line.min(file.flags.len()) {
            file.flags[l - 1] |= flags;
        }
        i = j;
    }
}

/// Byte offset of char index `idx` (the masked text is almost always
/// ASCII, but identifiers may not be).
fn byte_offset(chars: &[char], idx: usize) -> usize {
    chars[..idx.min(chars.len())]
        .iter()
        .map(|c| c.len_utf8())
        .sum()
}

/// The region flags an attribute body implies.
fn attr_flags(content: &str) -> u8 {
    let compact: String = content.chars().filter(|c| !c.is_whitespace()).collect();
    let mut flags = 0;
    if compact == "test" || compact == "cfg(test)" {
        flags |= FLAG_TEST;
    }
    if compact.starts_with("allow(") || compact.starts_with("expect(") {
        if compact.contains("clippy::unwrap_used") {
            flags |= FLAG_ALLOW_UNWRAP;
        }
        if compact.contains("clippy::expect_used") {
            flags |= FLAG_ALLOW_EXPECT;
        }
        if compact.contains("clippy::panic") {
            flags |= FLAG_ALLOW_PANIC;
        }
        if compact.contains("clippy::unreachable") {
            flags |= FLAG_ALLOW_UNREACHABLE;
        }
    }
    flags
}

/// The char index just past the item an outer attribute at `from`
/// decorates: past further attributes, then to the `;` of a bodiless
/// item or the matching `}` of its body.
fn item_extent_end(chars: &[char], from: usize) -> usize {
    let mut i = from;
    // Skip whitespace and any further outer attributes.
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if chars.get(i) == Some(&'#') {
            // Skip this attribute's brackets.
            while i < chars.len() && chars[i] != '[' {
                i += 1;
            }
            let mut depth = 0usize;
            while i < chars.len() {
                match chars[i] {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    // Scan the item header for `;` (no body) or `{` (body start).
    while i < chars.len() {
        match chars[i] {
            ';' => return i + 1,
            '{' => {
                let mut depth = 0usize;
                while i < chars.len() {
                    match chars[i] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return chars.len();
            }
            _ => i += 1,
        }
    }
    chars.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let src = "let a = \"call .unwrap() here\"; // and .unwrap() there\nlet b = 1;\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].1, "call .unwrap() here");
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src =
            "let re = r#\"x.unwrap()\"#;\nlet c = '\\'';\nlet q = 'u';\nfn f<'a>(x: &'a str) {}\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("fn f<'a>"), "{}", lexed.masked);
        assert_eq!(lexed.strings[0].1, "x.unwrap()");
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let src = "/* outer /* inner .unwrap() */ still */ let x = 1;\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_module_lines_are_flagged() {
        let src = "\
fn live() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u8> = None;
        x.unwrap();
    }
}
";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.has_flag(1, FLAG_TEST));
        for line in 3..=10 {
            assert!(lexed.has_flag(line, FLAG_TEST), "line {line} not flagged");
        }
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.has_flag(2, FLAG_TEST));
    }

    #[test]
    fn allow_attributes_cover_their_item() {
        let src = "\
#[allow(clippy::expect_used)]
pub fn preset() {
    build().expect(\"valid\");
}

pub fn other() {}
";
        let lexed = LexedFile::lex(src);
        assert!(lexed.has_flag(3, FLAG_ALLOW_EXPECT));
        assert!(!lexed.has_flag(3, FLAG_ALLOW_UNWRAP));
        assert!(!lexed.has_flag(6, FLAG_ALLOW_EXPECT));
    }

    #[test]
    fn inner_allow_covers_the_whole_file() {
        let src = "#![allow(clippy::unwrap_used)]\n\nfn f() { x.unwrap(); }\n";
        let lexed = LexedFile::lex(src);
        assert!(lexed.has_flag(3, FLAG_ALLOW_UNWRAP));
    }

    #[test]
    fn pragmas_parse_codes_and_reason() {
        let src = "\
let v = risky(); // ssdep-lint: allow(L002, bounded by construction)
// ssdep-lint: allow(L003, L005, sorted upstream, twice)
// ssdep-lint: allow(L002)
// ssdep-lint: deny(L002, nope)
";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.pragmas.len(), 4);
        let p = &lexed.pragmas[0];
        assert_eq!(p.codes, vec!["L002"]);
        assert_eq!(p.reason, "bounded by construction");
        assert!(!p.own_line);
        assert!(p.malformed.is_none());
        let p = &lexed.pragmas[1];
        assert_eq!(p.codes, vec!["L003", "L005"]);
        assert_eq!(p.reason, "sorted upstream, twice");
        assert!(p.own_line);
        assert!(lexed.pragmas[2].malformed.is_some());
        assert!(lexed.pragmas[3].malformed.is_some());
    }

    #[test]
    fn attribute_then_more_attributes_extends_to_item_body() {
        let src = "\
#[cfg(test)]
#[derive(Debug)]
struct Fixture {
    value: u8,
}
fn live() {}
";
        let lexed = LexedFile::lex(src);
        assert!(lexed.has_flag(4, FLAG_TEST));
        assert!(!lexed.has_flag(6, FLAG_TEST));
    }
}

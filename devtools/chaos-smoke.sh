#!/bin/sh
# Storage-fault smoke test shared by ci.sh (networked CI) and
# offline-check.sh (network-restricted): kill a checkpointed search
# mid-run, corrupt the surviving journal, and require the
# inspect/recover/resume pipeline to reproduce the fault-free ranking
# byte for byte. Then fill the disk (injected ENOSPC) and require the
# run to finish degraded — exit 3, caveat printed, results intact.
# Finally the seeded torture harness (ssdep-chaos) runs a bounded
# number of seeds.
#
# Usage: devtools/chaos-smoke.sh <ssdep binary> <ssdep-chaos binary>
set -eu

SSDEP=${1:?usage: chaos-smoke.sh <ssdep binary> <ssdep-chaos binary>}
CHAOS=${2:?usage: chaos-smoke.sh <ssdep binary> <ssdep-chaos binary>}
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Fault-free reference ranking.
"$SSDEP" search --checkpoint "$SMOKE_DIR/full.jsonl" > "$SMOKE_DIR/full.out"
sed -n '/^Rank/,$p' "$SMOKE_DIR/full.out" > "$SMOKE_DIR/full.rank"

# Kill after three journal appends, then rot a byte inside the first
# record's sequence field — a deterministic mid-file corruption.
if SSDEP_CRASH_AFTER=3 "$SSDEP" search --checkpoint "$SMOKE_DIR/crash.jsonl" \
    > /dev/null 2>&1; then
    echo "chaos-smoke: expected the crash-injected search to die" >&2
    exit 1
fi
printf 'X' | dd of="$SMOKE_DIR/crash.jsonl" bs=1 seek=3 conv=notrunc 2> /dev/null

# inspect must flag the corruption (exit 1) with byte-stable --json.
set +e
"$SSDEP" journal inspect "$SMOKE_DIR/crash.jsonl" --json > "$SMOKE_DIR/inspect1.json"
INSPECT_STATUS=$?
set -e
if [ "$INSPECT_STATUS" -ne 1 ]; then
    echo "chaos-smoke: expected exit 1 from inspect of a corrupt journal," \
        "got $INSPECT_STATUS" >&2
    exit 1
fi
"$SSDEP" journal inspect "$SMOKE_DIR/crash.jsonl" --json \
    > "$SMOKE_DIR/inspect2.json" || true
if ! cmp -s "$SMOKE_DIR/inspect1.json" "$SMOKE_DIR/inspect2.json"; then
    echo "chaos-smoke: journal inspect --json is not stable across runs" >&2
    exit 1
fi
grep -q '"corrupt_spans"' "$SMOKE_DIR/inspect1.json" || {
    echo "chaos-smoke: inspect --json lost the corrupt-span report" >&2
    exit 1
}

# recover quarantines the span; the journal then inspects clean.
"$SSDEP" journal recover "$SMOKE_DIR/crash.jsonl" > "$SMOKE_DIR/recover.out"
grep -q 'quarantined' "$SMOKE_DIR/recover.out" || {
    echo "chaos-smoke: recover did not report a quarantined span" >&2
    exit 1
}
if [ ! -s "$SMOKE_DIR/crash.jsonl.quarantine" ]; then
    echo "chaos-smoke: recover left no quarantine sidecar" >&2
    exit 1
fi
"$SSDEP" journal inspect "$SMOKE_DIR/crash.jsonl" > /dev/null || {
    echo "chaos-smoke: journal still corrupt after recover" >&2
    exit 1
}

# The salvaged journal resumes to the identical ranking.
"$SSDEP" search --resume "$SMOKE_DIR/crash.jsonl" > "$SMOKE_DIR/resumed.out"
sed -n '/^Rank/,$p' "$SMOKE_DIR/resumed.out" > "$SMOKE_DIR/resumed.rank"
if ! cmp -s "$SMOKE_DIR/full.rank" "$SMOKE_DIR/resumed.rank"; then
    echo "chaos-smoke: post-recover resume diverged from the full run:" >&2
    diff "$SMOKE_DIR/full.rank" "$SMOKE_DIR/resumed.rank" >&2 || true
    exit 1
fi
grep -q 'resumed' "$SMOKE_DIR/resumed.out" || {
    echo "chaos-smoke: resumed run did not replay the salvaged prefix" >&2
    exit 1
}

# Injected ENOSPC after two appends: the run must finish degraded —
# exit 3, a caveat in the output, and the ranking still intact.
set +e
SSDEP_JOURNAL_FAULT=enospc@2 "$SSDEP" search \
    --checkpoint "$SMOKE_DIR/enospc.jsonl" > "$SMOKE_DIR/enospc.out" 2>&1
ENOSPC_STATUS=$?
set -e
if [ "$ENOSPC_STATUS" -ne 3 ]; then
    echo "chaos-smoke: expected exit 3 from the ENOSPC-degraded search," \
        "got $ENOSPC_STATUS" >&2
    exit 1
fi
grep -q 'caveat: checkpoint journal lost mid-run' "$SMOKE_DIR/enospc.out" || {
    echo "chaos-smoke: degraded search printed no journal caveat" >&2
    exit 1
}
sed -n '/^Rank/,$p' "$SMOKE_DIR/enospc.out" > "$SMOKE_DIR/enospc.rank"
if ! cmp -s "$SMOKE_DIR/full.rank" "$SMOKE_DIR/enospc.rank"; then
    echo "chaos-smoke: ENOSPC leaked into the ranking:" >&2
    diff "$SMOKE_DIR/full.rank" "$SMOKE_DIR/enospc.rank" >&2 || true
    exit 1
fi

# Bounded seeded torture via the harness binary.
"$CHAOS" --seeds 2 || {
    echo "chaos-smoke: ssdep-chaos reported a contract violation" >&2
    exit 1
}

echo "chaos smoke test passed"

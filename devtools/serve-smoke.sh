#!/bin/sh
# Daemon smoke test shared by ci.sh (networked CI) and offline-check.sh
# (network-restricted): start `ssdep serve` on an ephemeral port, probe
# /healthz, evaluate the baseline spec twice and require byte-identical
# responses, stream a /sweep, then SIGTERM the daemon and require a
# graceful drain (exit 0 and the drain summary printed). Finally the
# in-process torture harness (ssdep-serve-chaos) runs a bounded number
# of seeds across every injected fault.
#
# Usage: devtools/serve-smoke.sh <ssdep binary> <ssdep-serve-chaos binary>
set -eu

SSDEP=${1:?usage: serve-smoke.sh <ssdep binary> <ssdep-serve-chaos binary>}
SERVE_CHAOS=${2:?usage: serve-smoke.sh <ssdep binary> <ssdep-serve-chaos binary>}
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

SMOKE_DIR=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

# Start the daemon on an ephemeral port; it prints the bound address
# eagerly before blocking on signals.
"$SSDEP" serve --addr 127.0.0.1:0 --jobs 2 --queue-depth 8 \
    > "$SMOKE_DIR/serve.out" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^ssdep serve: listening on //p' "$SMOKE_DIR/serve.out")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVE_PID" 2> /dev/null; then
        echo "serve-smoke: daemon died before listening:" >&2
        cat "$SMOKE_DIR/serve.out" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve-smoke: daemon never printed its listen address" >&2
    exit 1
fi

# Liveness.
"$SERVE_CHAOS" probe "$ADDR" /healthz > "$SMOKE_DIR/healthz.json" || {
    echo "serve-smoke: /healthz probe failed" >&2
    exit 1
}
grep -q '"status":"ok"' "$SMOKE_DIR/healthz.json" || {
    echo "serve-smoke: /healthz did not report ok" >&2
    exit 1
}

# The baseline spec evaluates, twice, byte-stably.
"$SSDEP" init > "$SMOKE_DIR/spec.json"
"$SERVE_CHAOS" post "$ADDR" /evaluate "$SMOKE_DIR/spec.json" \
    > "$SMOKE_DIR/eval1.json" || {
    echo "serve-smoke: POST /evaluate failed" >&2
    exit 1
}
"$SERVE_CHAOS" post "$ADDR" /evaluate "$SMOKE_DIR/spec.json" \
    > "$SMOKE_DIR/eval2.json" || {
    echo "serve-smoke: second POST /evaluate failed" >&2
    exit 1
}
if ! cmp -s "$SMOKE_DIR/eval1.json" "$SMOKE_DIR/eval2.json"; then
    echo "serve-smoke: /evaluate responses are not byte-stable:" >&2
    diff "$SMOKE_DIR/eval1.json" "$SMOKE_DIR/eval2.json" >&2 || true
    exit 1
fi
grep -q '"evaluation"' "$SMOKE_DIR/eval1.json" || {
    echo "serve-smoke: /evaluate response carries no evaluation" >&2
    exit 1
}

# A sweep streams JSON lines ending in the completion trailer.
"$SERVE_CHAOS" post "$ADDR" /sweep "$SMOKE_DIR/spec.json" \
    > "$SMOKE_DIR/sweep.ndjson" || {
    echo "serve-smoke: POST /sweep failed" >&2
    exit 1
}
grep -q '"done":true' "$SMOKE_DIR/sweep.ndjson" || {
    echo "serve-smoke: /sweep stream has no completion trailer" >&2
    exit 1
}

# Metrics reflect the traffic.
"$SERVE_CHAOS" probe "$ADDR" /metrics > "$SMOKE_DIR/metrics.json" || {
    echo "serve-smoke: /metrics probe failed" >&2
    exit 1
}
grep -q '"cache_hits":' "$SMOKE_DIR/metrics.json" || {
    echo "serve-smoke: /metrics lost the cache counters" >&2
    exit 1
}

# SIGTERM must drain gracefully: exit 0 and a drain summary printed.
kill -TERM "$SERVE_PID"
SERVE_STATUS=0
wait "$SERVE_PID" || SERVE_STATUS=$?
SERVE_PID=""
if [ "$SERVE_STATUS" -ne 0 ]; then
    echo "serve-smoke: expected exit 0 after SIGTERM drain, got $SERVE_STATUS" >&2
    cat "$SMOKE_DIR/serve.out" >&2
    exit 1
fi
grep -q 'drained' "$SMOKE_DIR/serve.out" || {
    echo "serve-smoke: daemon exited without printing the drain summary" >&2
    cat "$SMOKE_DIR/serve.out" >&2
    exit 1
}
grep -q '0 stuck thread' "$SMOKE_DIR/serve.out" || {
    echo "serve-smoke: drain abandoned stuck threads" >&2
    cat "$SMOKE_DIR/serve.out" >&2
    exit 1
}

# Bounded seeded torture across every injected fault.
"$SERVE_CHAOS" --seeds 2 || {
    echo "serve-smoke: ssdep-serve-chaos reported a contract violation" >&2
    exit 1
}

echo "serve smoke test passed"

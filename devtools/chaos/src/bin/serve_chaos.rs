//! `ssdep-serve-chaos`: seeded torture harness for the evaluation
//! daemon, plus a tiny dependency-free HTTP client for smoke scripts.
//!
//! Chaos mode (the default) spins up an in-process [`Server`] per phase
//! per seed, injects each deterministic service fault
//! (`slow`, `queue-full`, `journal-eio`), and asserts the daemon's
//! robustness contracts:
//!
//! * it never crashes and never returns a torn JSON body — every
//!   response body (and every sweep stream line) must parse;
//! * overload and injected queue faults shed with `429 Retry-After`;
//! * slow requests are answered `504` within the deadline budget while
//!   later requests still succeed;
//! * a journal fault degrades `/healthz` to `503` without dropping the
//!   faulted request's results;
//! * shutdown mid-sweep drains: the stream completes with its trailer
//!   and every thread joins.
//!
//! Usage: `ssdep-serve-chaos [--seeds N]` (default 8); exits nonzero on
//! any contract violation. Client mode, for shell smokes that may not
//! have curl: `ssdep-serve-chaos probe <addr> <path>` (GET) and
//! `ssdep-serve-chaos post <addr> <path> <body-file>` — both print the
//! body to stdout and exit 0 only for a 200.

use serde::Serialize;
use ssdep_serve::{ServeConfig, ServeFaultKind, ServeFaultPlan, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(what.to_string())
    }
}

/// The paper's baseline system as an `/evaluate` body.
fn baseline_body() -> String {
    #[derive(Serialize)]
    struct Body {
        workload: ssdep_core::Workload,
        design: ssdep_core::hierarchy::StorageDesign,
        requirements: ssdep_core::requirements::BusinessRequirements,
    }
    serde_json::to_string(&Body {
        workload: ssdep_core::presets::cello_workload(),
        design: ssdep_core::presets::baseline_design(),
        requirements: ssdep_core::presets::paper_requirements(),
    })
    .unwrap_or_default()
}

/// A raw HTTP exchange: status, headers (joined), body.
struct Exchange {
    status: u16,
    head: String,
    body: String,
}

/// Issues one request and reads the connection to EOF.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Result<Exchange, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body split in `{raw}`"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("no status in `{head}`"))?;
    Ok(Exchange {
        status,
        head: head.to_string(),
        body: body.to_string(),
    })
}

/// The never-torn-JSON contract: every response body parses whole.
fn parse_json(exchange: &Exchange, context: &str) -> Result<serde_json::Value, String> {
    serde_json::from_str(&exchange.body)
        .map_err(|e| format!("{context}: torn/unparsable body `{}`: {e}", exchange.body))
}

fn start(fault: Option<ServeFaultPlan>, deadline: Duration) -> Result<Server, String> {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue_depth: 8,
        deadline,
        fault,
    })
    .map_err(|e| format!("start: {e}"))
}

/// Slow fault: request k stalls past the deadline and is answered 504;
/// every other request succeeds with byte-identical bodies.
fn slow(seed: u64) -> Result<String, String> {
    let total = 2 + (seed % 3) as usize; // 2..=4 requests
    let hit = 1 + (seed as usize % total);
    let server = start(
        Some(ServeFaultPlan::new(ServeFaultKind::Slow, hit)),
        Duration::from_millis(150),
    )?;
    let addr = server.addr();
    let body = baseline_body();
    let mut ok_bodies: Vec<String> = Vec::new();
    for request_no in 1..=total {
        let exchange = call(addr, "POST", "/evaluate", &body)?;
        parse_json(&exchange, "evaluate")?;
        if request_no == hit {
            check(
                exchange.status == 504,
                &format!(
                    "request {request_no} should be 504, got {}",
                    exchange.status
                ),
            )?;
            check(
                exchange.body.contains("deadline exceeded"),
                "504 body names the deadline",
            )?;
        } else {
            check(
                exchange.status == 200,
                &format!(
                    "request {request_no} should be 200, got {}",
                    exchange.status
                ),
            )?;
            ok_bodies.push(exchange.body);
        }
    }
    check(
        ok_bodies.windows(2).all(|pair| pair[0] == pair[1]),
        "successful responses are byte-identical",
    )?;
    let summary = server.drain();
    check(summary.stuck_threads == 0, "drain left no stuck threads")?;
    Ok(format!("{total} requests, 504 at #{hit}, drained clean"))
}

/// Queue-full fault: request k is shed with `429 Retry-After`; the
/// others are served.
fn queue_full(seed: u64) -> Result<String, String> {
    let total = 2 + (seed % 3) as usize;
    let hit = 1 + (seed as usize % total);
    let server = start(
        Some(ServeFaultPlan::new(ServeFaultKind::QueueFull, hit)),
        Duration::from_secs(10),
    )?;
    let addr = server.addr();
    let body = baseline_body();
    for request_no in 1..=total {
        let exchange = call(addr, "POST", "/evaluate", &body)?;
        parse_json(&exchange, "evaluate")?;
        if request_no == hit {
            check(
                exchange.status == 429,
                &format!(
                    "request {request_no} should shed 429, got {}",
                    exchange.status
                ),
            )?;
            check(
                exchange.head.contains("Retry-After: 1"),
                "429 carries Retry-After",
            )?;
        } else {
            check(
                exchange.status == 200,
                &format!(
                    "request {request_no} should be 200, got {}",
                    exchange.status
                ),
            )?;
        }
    }
    let summary = server.drain();
    check(summary.shed == 1, "exactly one request shed")?;
    check(summary.stuck_threads == 0, "drain left no stuck threads")?;
    Ok(format!("{total} requests, shed at #{hit}, drained clean"))
}

/// Journal fault: the faulted request still answers 200 with results,
/// but `/healthz` latches to `503 degraded` and `/metrics` agrees.
fn journal_eio(seed: u64) -> Result<String, String> {
    let total = 1 + (seed % 3) as usize;
    let hit = 1 + (seed as usize % total);
    let server = start(
        Some(ServeFaultPlan::new(ServeFaultKind::JournalEio, hit)),
        Duration::from_secs(10),
    )?;
    let addr = server.addr();
    let body = baseline_body();
    for request_no in 1..=total {
        let exchange = call(addr, "POST", "/evaluate", &body)?;
        parse_json(&exchange, "evaluate")?;
        check(
            exchange.status == 200,
            &format!(
                "request {request_no} still answers 200 under a journal fault, got {}",
                exchange.status
            ),
        )?;
    }
    let health = call(addr, "GET", "/healthz", "")?;
    parse_json(&health, "healthz")?;
    check(
        health.status == 503,
        &format!(
            "healthz degrades to 503 after the journal fault, got {}",
            health.status
        ),
    )?;
    check(health.body.contains("degraded"), "healthz names degraded")?;
    let metrics = call(addr, "GET", "/metrics", "")?;
    parse_json(&metrics, "metrics")?;
    check(
        metrics.body.contains("\"degraded\":true"),
        "metrics breaker is latched",
    )?;
    let summary = server.drain();
    check(summary.stuck_threads == 0, "drain left no stuck threads")?;
    Ok(format!(
        "{total} requests, journal fault at #{hit}, health degraded, drained clean"
    ))
}

/// Drain mid-sweep: shutdown arrives while a sweep streams; the stream
/// still completes with its trailer, and every line parses.
fn drain_mid_sweep(seed: u64) -> Result<String, String> {
    let server = start(None, Duration::from_secs(10))?;
    let addr = server.addr();
    let points = 2 + (seed % 3) as usize;
    let scales: Vec<String> = (0..points).map(|i| format!("{}.0", i + 1)).collect();
    let body = baseline_body();
    let body = format!(
        "{},\"scales\":[{}]}}",
        &body[..body.len() - 1],
        scales.join(",")
    );
    let sweeper = std::thread::spawn(move || call(addr, "POST", "/sweep", &body));
    // Let the sweep be admitted, then pull the plug.
    std::thread::sleep(Duration::from_millis(30));
    server.begin_shutdown();
    let summary = server.drain();
    let exchange = sweeper.join().map_err(|_| "sweep client panicked")??;
    check(
        exchange.status == 200,
        &format!("sweep stream is 200, got {}", exchange.status),
    )?;
    let lines: Vec<&str> = exchange.body.lines().collect();
    check(
        lines.len() == points + 1,
        &format!("expected {} stream lines, got {}", points + 1, lines.len()),
    )?;
    for line in &lines {
        serde_json::from_str::<serde_json::Value>(line)
            .map_err(|e| format!("torn sweep line `{line}`: {e}"))?;
    }
    check(
        lines.last().is_some_and(|l| l.contains("\"done\":true")),
        "stream ends with the completion trailer",
    )?;
    check(summary.stuck_threads == 0, "drain left no stuck threads")?;
    Ok(format!(
        "{points}-point sweep survived shutdown, trailer present"
    ))
}

fn parse_seeds(args: &[String]) -> Result<u64, String> {
    let mut seeds = 8u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--seeds needs a value".to_string())?;
                seeds = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad --seeds value `{value}`"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ssdep-serve-chaos [--seeds N] | probe <addr> <path> | post <addr> <path> <body-file>"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag `{other}`; try --help")),
        }
    }
    Ok(seeds)
}

/// Client mode for shell smokes: one GET or POST, body to stdout,
/// exit 0 only on HTTP 200.
fn client(method: &str, args: &[String]) -> ExitCode {
    let (addr_text, path, body) = match (args.first(), args.get(1)) {
        (Some(addr), Some(path)) if method == "GET" => (addr, path, String::new()),
        (Some(addr), Some(path)) if args.len() == 3 => {
            let file = &args[2];
            match std::fs::read_to_string(file) {
                Ok(body) => (addr, path, body),
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!(
                "usage: ssdep-serve-chaos probe <addr> <path> | post <addr> <path> <body-file>"
            );
            return ExitCode::FAILURE;
        }
    };
    let addr: SocketAddr = match addr_text.parse() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("bad address `{addr_text}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match call(addr, method, path, &body) {
        Ok(exchange) => {
            println!("{}", exchange.body);
            if exchange.status == 200 {
                ExitCode::SUCCESS
            } else {
                eprintln!("HTTP {}", exchange.status);
                ExitCode::FAILURE
            }
        }
        Err(why) => {
            eprintln!("{why}");
            ExitCode::FAILURE
        }
    }
}

/// One named chaos phase: a contract check run once per seed.
type Phase = fn(u64) -> Result<String, String>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("probe") => return client("GET", &args[1..]),
        Some("post") => return client("POST", &args[1..]),
        _ => {}
    }
    let seeds = match parse_seeds(&args) {
        Ok(seeds) => seeds,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;
    let phases: [(&str, Phase); 4] = [
        ("slow", slow),
        ("queue-full", queue_full),
        ("journal-eio", journal_eio),
        ("drain-mid-sweep", drain_mid_sweep),
    ];
    for (name, phase) in phases {
        for seed in 1..=seeds {
            match phase(seed) {
                Ok(detail) => println!("ok   {name} seed {seed}: {detail}"),
                Err(why) => {
                    failures += 1;
                    println!("FAIL {name} seed {seed}: {why}");
                }
            }
        }
    }

    if failures == 0 {
        println!(
            "serve-chaos: {} loops over {seeds} seeds, all contracts held",
            4 * seeds
        );
        ExitCode::SUCCESS
    } else {
        println!("serve-chaos: {failures} contract violation(s)");
        ExitCode::FAILURE
    }
}

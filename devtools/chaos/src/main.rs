//! `ssdep-chaos`: seeded storage-fault torture harness for the
//! checkpoint journal, runnable as a standalone binary.
//!
//! Each seed drives the same loop as `crates/opt/tests/chaos.rs`, but as
//! an operator-facing tool with per-seed status lines: a partial run
//! checkpoints some work, the journal is damaged the way real storage
//! fails (torn tail, bit rot, garbage spans), salvage quarantines the
//! damage, and a resumed run must reach an answer identical to a
//! fault-free run without re-evaluating any surviving record. Two more
//! loops inject write-side faults (EIO / short writes, then persistent
//! ENOSPC) and assert the retry and degraded-mode contracts.
//!
//! Usage: `ssdep-chaos [--seeds N]` (default 8). Exits nonzero if any
//! seed violates a contract.

use ssdep_core::error::RetryPolicy;
use ssdep_opt::journal::{inspect_journal, read_journal, salvage_journal};
use ssdep_opt::sink::{flip_bits_in_file, FaultKind, IoFaultPlan, Lcg};
use ssdep_opt::supervisor::TaskRecord;
use ssdep_opt::{Supervisor, SupervisorConfig};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

const TASKS: u32 = 20;

/// Deterministic toy evaluation: cheap, but with an answer that exposes
/// any re-evaluation-with-drift bug.
fn eval(i: u32) -> u64 {
    u64::from(i) * u64::from(i) + 17
}

fn temp(name: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ssdep-chaos-bin-{name}-{seed}-{}.jsonl",
        std::process::id()
    ))
}

fn config(path: &Path) -> SupervisorConfig {
    SupervisorConfig {
        checkpoint: Some(path.to_path_buf()),
        resume: Some(path.to_path_buf()),
        sync_every: 1,
        ..SupervisorConfig::default()
    }
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(format!("{}.quarantine", path.display())).ok();
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(what.to_string())
    }
}

/// One torture loop: partial run, seeded damage, salvage, resume,
/// verify the answer and the no-re-evaluation contract.
fn torture(seed: u64, reference: &[(u32, u64)]) -> Result<String, String> {
    let items: Vec<u32> = (0..TASKS).collect();
    let mut rng = Lcg::new(seed);
    let path = temp("torture", seed);
    cleanup(&path);

    let k = 1 + rng.below(u64::from(TASKS) - 1) as usize;
    Supervisor::new(config(&path))
        .run(&items[..k], |&i: &u32| Ok(eval(i)))
        .map_err(|e| format!("partial run: {e}"))?;

    let damage = match rng.below(3) {
        0 => {
            let bytes = std::fs::read(&path).map_err(|e| format!("read: {e}"))?;
            let cut = (1 + rng.below(30) as usize).min(bytes.len() - 1);
            std::fs::write(&path, &bytes[..bytes.len() - cut]).map_err(|e| format!("tear: {e}"))?;
            format!("torn tail ({cut} bytes)")
        }
        1 => {
            let flips = 1 + rng.below(3) as usize;
            flip_bits_in_file(&path, seed, flips).map_err(|e| format!("flip: {e}"))?;
            format!("bit rot ({flips} flips)")
        }
        _ => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read: {e}"))?;
            let mut lines: Vec<&str> = text.lines().collect();
            let at = rng.below(lines.len() as u64) as usize;
            lines.insert(at, "v2:99:zzzzzzzz:{\"garbage\":true}");
            std::fs::write(&path, format!("{}\n", lines.join("\n")))
                .map_err(|e| format!("splice: {e}"))?;
            format!("garbage span at line {}", at + 1)
        }
    };

    salvage_journal(&path).map_err(|e| format!("salvage: {e}"))?;
    let report = inspect_journal(&path).map_err(|e| format!("inspect: {e}"))?;
    check(report.is_clean(), "journal still corrupt after salvage")?;

    let mut survivors: HashSet<u32> = HashSet::new();
    for record in
        read_journal::<TaskRecord<u32, u64>>(&path).map_err(|e| format!("read back: {e}"))?
    {
        match record {
            TaskRecord::Completed { item, outcome } => {
                check(
                    outcome == eval(item),
                    "salvaged record carries a wrong answer",
                )?;
                survivors.insert(item);
            }
            TaskRecord::Failed(_) => return Err("unexpected failure record".into()),
        }
    }

    let evaluated: Arc<Mutex<Vec<u32>>> = Arc::default();
    let log = Arc::clone(&evaluated);
    let resumed = Supervisor::new(config(&path))
        .run(&items, move |&i: &u32| {
            if let Ok(mut log) = log.lock() {
                log.push(i);
            }
            Ok(eval(i))
        })
        .map_err(|e| format!("resume: {e}"))?;
    check(
        resumed.completed == reference,
        "resumed answer differs from fault-free run",
    )?;
    check(
        resumed.provenance.resumed == survivors.len(),
        "resumed count disagrees with the salvaged journal",
    )?;
    let evaluated = evaluated
        .lock()
        .map_err(|_| "eval log poisoned".to_string())?;
    check(
        evaluated.len() == items.len() - survivors.len(),
        "resume re-evaluated a surviving task",
    )?;
    for i in evaluated.iter() {
        check(
            !survivors.contains(i),
            "resume re-evaluated a surviving task",
        )?;
    }
    cleanup(&path);
    Ok(format!(
        "{damage}; {} survived, {} re-evaluated",
        survivors.len(),
        evaluated.len()
    ))
}

/// Transient EIO / short writes through the sink seam: retries must
/// clear them with no degradation and a complete journal.
fn transient(seed: u64, reference: &[(u32, u64)]) -> Result<String, String> {
    let items: Vec<u32> = (0..TASKS).collect();
    let mut rng = Lcg::new(seed);
    let path = temp("transient", seed);
    cleanup(&path);
    let kind = if seed.is_multiple_of(2) {
        FaultKind::AppendEio
    } else {
        FaultKind::ShortWrite
    };
    let at = 1 + rng.below(u64::from(TASKS)) as usize;
    let mut cfg = config(&path);
    cfg.retry = RetryPolicy::immediate(2);
    cfg.journal_faults = Some(IoFaultPlan { kind, at, seed });
    let run = Supervisor::new(cfg)
        .run(&items, |&i: &u32| Ok(eval(i)))
        .map_err(|e| format!("run: {e}"))?;
    check(
        !run.provenance.journal_degraded,
        "retries failed to clear a transient fault",
    )?;
    check(
        run.completed == reference,
        "answer drifted under transient faults",
    )?;
    let records =
        read_journal::<TaskRecord<u32, u64>>(&path).map_err(|e| format!("read back: {e}"))?;
    check(
        records.len() == items.len(),
        "journal is incomplete after retries",
    )?;
    cleanup(&path);
    Ok(format!("{kind:?}@{at} retried cleanly"))
}

/// Persistent ENOSPC: the journal degrades, the run never does, and the
/// pre-fault prefix of the journal stays valid.
fn enospc(seed: u64, reference: &[(u32, u64)]) -> Result<String, String> {
    let items: Vec<u32> = (0..TASKS).collect();
    let mut rng = Lcg::new(seed);
    let path = temp("enospc", seed);
    cleanup(&path);
    let at = 1 + rng.below(u64::from(TASKS)) as usize;
    let mut cfg = config(&path);
    cfg.retry = RetryPolicy::immediate(1);
    cfg.journal_faults = Some(IoFaultPlan::new(FaultKind::AppendEnospc, at));
    let run = Supervisor::new(cfg)
        .run(&items, |&i: &u32| Ok(eval(i)))
        .map_err(|e| format!("run: {e}"))?;
    check(
        run.provenance.journal_degraded,
        "ENOSPC did not degrade the journal",
    )?;
    check(
        run.journal_error.is_some(),
        "degraded run carries no journal error",
    )?;
    check(run.completed == reference, "ENOSPC leaked into the results")?;
    let records =
        read_journal::<TaskRecord<u32, u64>>(&path).map_err(|e| format!("read back: {e}"))?;
    check(
        records.len() < items.len(),
        "journal claims more than fit on disk",
    )?;
    cleanup(&path);
    Ok(format!(
        "ENOSPC@{at} degraded the journal, {} records landed",
        records.len()
    ))
}

fn parse_seeds(args: &[String]) -> Result<u64, String> {
    let mut seeds = 8u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--seeds needs a value".to_string())?;
                seeds = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad --seeds value `{value}`"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
            }
            "--help" | "-h" => {
                return Err("usage: ssdep-chaos [--seeds N]".to_string());
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`; usage: ssdep-chaos [--seeds N]"
                ))
            }
        }
    }
    Ok(seeds)
}

/// One named torture phase: a check function run once per seed.
type Phase = fn(u64, &[(u32, u64)]) -> Result<String, String>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds = match parse_seeds(&args) {
        Ok(seeds) => seeds,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let items: Vec<u32> = (0..TASKS).collect();
    let reference = match Supervisor::default().run(&items, |&i: &u32| Ok(eval(i))) {
        Ok(run) => run.completed,
        Err(e) => {
            eprintln!("fault-free reference run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;
    let phases: [(&str, Phase); 3] = [
        ("torture", torture),
        ("transient", transient),
        ("enospc", enospc),
    ];
    for (name, phase) in phases {
        for seed in 1..=seeds {
            match phase(seed, &reference) {
                Ok(detail) => println!("ok   {name} seed {seed}: {detail}"),
                Err(why) => {
                    failures += 1;
                    println!("FAIL {name} seed {seed}: {why}");
                }
            }
        }
    }

    if failures == 0 {
        println!(
            "chaos: {} loops over {seeds} seeds, all contracts held",
            3 * seeds
        );
        ExitCode::SUCCESS
    } else {
        println!("chaos: {failures} contract violation(s)");
        ExitCode::FAILURE
    }
}

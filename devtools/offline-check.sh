#!/usr/bin/env bash
# Builds and tests the workspace with no network access by patching the
# registry dependencies (serde, serde_json, rand, proptest, criterion)
# to the compile-compatible stubs under devtools/stubs/. The committed
# manifests keep referencing the real crates; the patch is applied only
# through --config flags here, so CI with network is unaffected.
#
# Usage: devtools/offline-check.sh [cargo subcommand + args...]
#        (defaults to: test -q)
#
# The pseudo-subcommand `lint` builds ssdep-lint offline and runs the
# shared static-analysis gate (devtools/lint-gate.sh) with it. The
# pseudo-subcommand `chaos` builds the CLI and the torture harness
# offline and runs the storage-fault smoke test
# (devtools/chaos-smoke.sh).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
stubs="$repo/devtools/stubs"

config_args=()
for crate in serde serde_json rand proptest criterion; do
  config_args+=(--config "patch.crates-io.$crate.path=\"$stubs/$crate\"")
done

export CARGO_NET_OFFLINE=true

if [ "$#" -eq 0 ]; then
  set -- test -q
fi

# `lint` is not a cargo subcommand: build the lint binary offline, then
# hand it to the shared gate script.
if [ "$1" = "lint" ]; then
  cd "$repo"
  cargo build "${config_args[@]}" --release -p ssdep-lint
  exec "$repo/devtools/lint-gate.sh" "$repo/target/release/ssdep-lint"
fi

# `chaos` is not a cargo subcommand either: build the CLI and the
# torture harness offline, then hand both to the smoke script.
if [ "$1" = "chaos" ]; then
  cd "$repo"
  cargo build "${config_args[@]}" --release -p ssdep-cli -p ssdep-chaos
  exec "$repo/devtools/chaos-smoke.sh" "$repo/target/release/ssdep" \
    "$repo/target/release/ssdep-chaos"
fi

# `serve` builds the CLI (which embeds the daemon) and the service
# torture harness offline, then runs the daemon smoke test.
if [ "$1" = "serve" ]; then
  cd "$repo"
  cargo build "${config_args[@]}" --release -p ssdep-cli -p ssdep-chaos
  exec "$repo/devtools/serve-smoke.sh" "$repo/target/release/ssdep" \
    "$repo/target/release/ssdep-serve-chaos"
fi

# The --config flags go AFTER the subcommand: cargo does not forward
# pre-subcommand config to external subcommands (clippy, fmt), so
# `cargo --config ... clippy` would resolve without the stub patches.
subcommand="$1"
shift

cd "$repo"
exec cargo "$subcommand" "${config_args[@]}" "$@"

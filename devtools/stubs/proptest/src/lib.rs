//! Offline stand-in for `proptest` used only by
//! `devtools/offline-check.sh`.
//!
//! Implements the subset this workspace's tests use: random sampling
//! strategies (ranges, tuples, `Just`, `prop_map`, `prop_oneof!`), the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` / `prop_assume!` macros. No shrinking: failures
//! report the sampled case verbatim.

use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — resample, don't fail.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from any displayable message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Builds a rejection from any displayable message.
    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of an output type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.next_f64() * (hi - lo)) as $ty
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Runs one test's cases; used by the `proptest!` macro expansion.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut executed = 0u32;
    let mut rejected = 0u64;
    while executed < config.cases {
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                // Mirror proptest's global rejection cap loosely.
                if rejected > 65_536 {
                    panic!("{name}: too many prop_assume! rejections ({rejected})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {executed} failed: {msg}");
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Strategy combinators, mirroring `proptest::strategy`.
pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                let ($($arg,)+) =
                    ($($crate::strategy::Strategy::sample(&($strategy), __rng),)+);
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                __outcome
            });
        }
    )*};
}

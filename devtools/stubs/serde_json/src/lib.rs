//! Offline stand-in for `serde_json` used only by
//! `devtools/offline-check.sh`. Serializes the stub `serde` crate's
//! `Value` model to JSON text and parses it back.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a [`Value`] tree into `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from a JSON-ish literal — the subset of the real
/// `json!` macro this workspace's tests use (scalars, arrays, objects
/// with string-literal keys).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Obj(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        match $crate::to_value(&$other) {
            Ok(value) => value,
            Err(_) => $crate::Value::Null,
        }
    };
}

/// Parses a JSON document into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            // Like real serde_json: non-finite numbers become null, and
            // Rust's shortest-roundtrip `Display` preserves the value.
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                char::from(*c),
                self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let first = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                                } else {
                                    return Err(Error("lone leading surrogate".to_string()));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".to_string()))?,
                            );
                        }
                        _ => return Err(Error("invalid escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input came from a
                    // &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parses the four hex digits after `\u`, leaving `pos` on the last
    /// digit (the caller advances past it).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let text = std::str::from_utf8(digits).map_err(|_| Error("invalid \\u escape".to_string()))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

//! Offline stand-in for `serde_derive` used only by
//! `devtools/offline-check.sh`.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote`
//! available offline) and emits impls of the stub `serde` crate's
//! `Serialize`/`Deserialize` traits. Supports exactly what this
//! workspace uses: non-generic named/tuple structs, enums with
//! unit/tuple/struct variants (externally tagged), and the attributes
//! `transparent`, `default`, `skip_serializing_if`, and `rename`.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if ser {
                gen_ser(&item)
            } else {
                gen_de(&item)
            }
        }
        Err(msg) => return error(&msg),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => error(&format!("stub serde_derive generated invalid code: {e}")),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("a string literal always lexes")
}

#[derive(Default, Clone)]
struct Attrs {
    transparent: bool,
    default: bool,
    skip_if: Option<String>,
    rename: Option<String>,
}

struct Field {
    name: String,
    attrs: Attrs,
}

impl Field {
    fn key(&self) -> String {
        self.attrs.rename.clone().unwrap_or_else(|| self.name.clone())
    }
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    attrs: Attrs,
    shape: Shape,
}

impl Variant {
    /// The wire name: a `#[serde(rename = "...")]` override, or the
    /// variant name itself.
    fn key(&self) -> String {
        self.attrs.rename.clone().unwrap_or_else(|| self.name.clone())
    }
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Plain type-parameter names (`T`, `U`, ...); bounds are dropped.
    generics: Vec<String>,
    attrs: Attrs,
    body: Body,
}

impl Item {
    /// `"Name"` or `"Name<T, U>"` as used in the impl target.
    fn self_ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics.join(", "))
        }
    }

    /// `""` or `"<T: ::serde::Trait, ...>"` for the impl header.
    fn impl_generics(&self, trait_path: &str) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            let bounds: Vec<String> =
                self.generics.iter().map(|g| format!("{g}: {trait_path}")).collect();
            format!("<{}>", bounds.join(", "))
        }
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Applies the options inside one `#[...]` attribute group (if it is a
/// `serde` attribute) to `attrs`; other attributes are ignored.
fn apply_attr_group(group: &Group, attrs: &mut Attrs) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde = matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(inner)) = toks.get(1) else { return };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        let TokenTree::Ident(id) = &inner[i] else {
            i += 1;
            continue;
        };
        let key = id.to_string();
        let mut value = None;
        if matches!(inner.get(i + 1), Some(t) if is_punct(t, '=')) {
            if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                let raw = lit.to_string();
                value = Some(raw.trim_matches('"').to_string());
                i += 2;
            }
        }
        match (key.as_str(), value) {
            ("transparent", _) => attrs.transparent = true,
            ("default", _) => attrs.default = true,
            ("skip_serializing_if", Some(path)) => attrs.skip_if = Some(path),
            ("rename", Some(name)) => attrs.rename = Some(name),
            _ => {}
        }
        i += 1;
        if matches!(inner.get(i), Some(t) if is_punct(t, ',')) {
            i += 1;
        }
    }
}

/// Consumes any leading `#[...]` attributes at `i`, folding serde
/// options into a fresh `Attrs`.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while *i < toks.len() && is_punct(&toks[*i], '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            apply_attr_group(g, &mut attrs);
            *i += 1;
        }
    }
    attrs
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = Attrs::default();
    let mut kind: Option<String> = None;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    apply_attr_group(g, &mut attrs);
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                i += 1;
                if word == "struct" || word == "enum" {
                    kind = Some(word);
                    break;
                }
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("stub serde_derive: expected `struct` or `enum`")?;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("stub serde_derive: expected a type name".to_string()),
    };
    i += 1;
    let mut generics = Vec::new();
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        i += 1;
        let mut depth = 1i32;
        let mut at_param_start = true;
        while i < toks.len() && depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => at_param_start = true,
                    '\'' => {
                        return Err(format!(
                            "stub serde_derive: lifetimes on `{name}` are not supported"
                        ));
                    }
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    generics.push(id.to_string());
                    at_param_start = false;
                }
                _ => {}
            }
            i += 1;
        }
    }
    let body = if kind == "enum" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g)?)
            }
            _ => return Err(format!("stub serde_derive: expected enum body for `{name}`")),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g)?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(tuple_arity(g)))
            }
            Some(t) if is_punct(t, ';') => Body::Struct(Shape::Unit),
            _ => return Err(format!("stub serde_derive: expected struct body for `{name}`")),
        }
    };
    Ok(Item { name, generics, attrs, body })
}

fn parse_named_fields(group: &Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("stub serde_derive: expected a field name".to_string()),
        };
        i += 1;
        if !matches!(toks.get(i), Some(t) if is_punct(t, ':')) {
            return Err(format!("stub serde_derive: expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

/// Skips type tokens up to (and including) the next comma that sits
/// outside any `<...>` nesting.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn tuple_arity(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut ends_with_comma = false;
    for t in &toks {
        ends_with_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    ends_with_comma = true;
                }
                _ => {}
            }
        }
    }
    commas + usize::from(!ends_with_comma)
}

fn parse_variants(group: &Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("stub serde_derive: expected a variant name".to_string()),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g)?)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1;
        }
        variants.push(Variant { name, attrs, shape });
    }
    Ok(variants)
}

fn gen_ser(item: &Item) -> String {
    let name = &item.name;
    let self_ty = item.self_ty();
    let impl_generics = item.impl_generics("::serde::Serialize");
    let body = match &item.body {
        Body::Struct(Shape::Named(fields)) => {
            if item.attrs.transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let mut out = String::from(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    let push = format!(
                        "__fields.push((::std::string::String::from({key:?}), \
                         ::serde::Serialize::to_value(&self.{field})));",
                        key = f.key(),
                        field = f.name
                    );
                    if let Some(path) = &f.attrs.skip_if {
                        out.push_str(&format!("if !({path}(&self.{})) {{ {push} }}\n", f.name));
                    } else {
                        out.push_str(&push);
                        out.push('\n');
                    }
                }
                out.push_str("::serde::Value::Obj(__fields)");
                out
            }
        }
        Body::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Body::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let vkey = v.key();
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vkey:?})),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from({vkey:?}), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{0}: __{0}", f.name)).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({key:?}), \
                                     ::serde::Serialize::to_value(__{field}))",
                                    key = f.key(),
                                    field = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from({vkey:?}), \
                             ::serde::Value::Obj(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {self_ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Emits the expression for one named field during deserialization,
/// reading from the entry slice bound to `entries_var`.
fn de_named_field(type_name: &str, f: &Field, entries_var: &str) -> String {
    let missing = if f.attrs.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\
             \"{type_name}: missing field `{key}`\"))",
            key = f.key()
        )
    };
    format!(
        "{field}: match ::serde::obj_get({entries_var}, {key:?}) {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => {missing},\n}}",
        field = f.name,
        key = f.key()
    )
}

fn gen_de(item: &Item) -> String {
    let name = &item.name;
    let self_ty = item.self_ty();
    let impl_generics = item.impl_generics("::serde::Deserialize");
    let body = match &item.body {
        Body::Struct(Shape::Named(fields)) => {
            if item.attrs.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::from_value(__v)? }})",
                    fields[0].name
                )
            } else {
                let entries: Vec<String> =
                    fields.iter().map(|f| de_named_field(name, f, "__entries")).collect();
                format!(
                    "let __entries = ::serde::Value::as_obj(__v).ok_or_else(|| \
                     ::serde::DeError::custom(\"{name}: expected object, found another value\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    entries.join(",\n")
                )
            }
        }
        Body::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = ::serde::Value::as_arr(__v).ok_or_else(|| \
                 ::serde::DeError::custom(\"{name}: expected array\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"{name}: expected an array of {n} elements\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                let vkey = v.key();
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{vkey:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vkey:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => tagged_arms.push_str(&format!(
                        "{vkey:?} => {{\n\
                         let __items = ::serde::Value::as_arr(__inner).ok_or_else(|| \
                         ::serde::DeError::custom(\"{name}::{vname}: expected array\"))?;\n\
                         if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                         \"{name}::{vname}: expected an array of {n} elements\"));\n}}\n\
                         ::std::result::Result::Ok({name}::{vname}({args}))\n}}\n",
                        args = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                    Shape::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| de_named_field(&format!("{name}::{vname}"), f, "__ventries"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vkey:?} => {{\n\
                             let __ventries = ::serde::Value::as_obj(__inner).ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}::{vname}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{}\n}})\n}}\n",
                            entries.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\
                 \"{name}: unknown variant `{{}}`\", __other))),\n}},\n\
                 ::serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\
                 \"{name}: unknown variant `{{}}`\", __other))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"{name}: expected a variant string or single-key object\")),\n}}"
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {self_ty} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

//! Offline stand-in for `serde` used only by `devtools/offline-check.sh`.
//!
//! Models serialization as conversion through a single JSON-like
//! [`Value`] tree. The derive macros in the sibling `serde_derive` stub
//! generate impls of the [`Serialize`] / [`Deserialize`] traits below,
//! matching serde's externally-tagged data model closely enough for this
//! workspace's round-trip tests.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like value tree: the single intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            _ => None,
        }
    }

    /// Mutable array elements, if this is an array (mirrors
    /// `serde_json::Value::as_array_mut`).
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Looks up `key` in an object's entry list.
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

static NULL: Value = Value::Null;

// Mirrors `serde_json`'s Value indexing: `value["key"]` yields `Null`
// for missing keys / non-objects, `value[i]` panics out of bounds, and
// the mutable forms auto-vivify object entries (turning `Null` into an
// empty object first) exactly like the real crate — so tests that
// mutate serialized trees compile against both.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.as_obj()
            .and_then(|entries| obj_get(entries, key))
            .unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Obj(Vec::new());
        }
        let Value::Obj(entries) = self else {
            panic!("cannot index {} with a string key", self.kind());
        };
        if !entries.iter().any(|(k, _)| k == key) {
            entries.push((key.to_string(), Value::Null));
        }
        entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| unreachable!("entry was just inserted"))
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self.as_arr().and_then(|items| items.get(index)) {
            Some(item) => item,
            None => panic!("index {index} out of bounds of {}", self.kind()),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, index: usize) -> &mut Value {
        let kind = self.kind();
        match self.as_array_mut().and_then(|items| items.get_mut(index)) {
            Some(item) => item,
            None => panic!("index {index} out of bounds of {kind}"),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Mirror of `serde::de` for the subset this workspace uses. The stub's
/// [`Deserialize`] is already owned (no borrowed lifetimes), so
/// `DeserializeOwned` is the same trait.
pub mod de {
    pub use crate::{DeError, Deserialize as DeserializeOwned};
}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected boolean, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! float_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $ty).ok_or_else(|| {
                    DeError::custom(format!("expected number, found {}", v.kind()))
                })
            }
        }
    )*};
}

float_impl!(f32, f64);

macro_rules! uint_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match *v {
                    Value::U64(u) => <$ty>::try_from(u).ok(),
                    Value::I64(i) => u64::try_from(i).ok().and_then(|u| <$ty>::try_from(u).ok()),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::custom(format!(
                        "expected unsigned integer ({}), found {}",
                        stringify!($ty),
                        v.kind()
                    ))
                })
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 { Value::U64(wide as u64) } else { Value::I64(wide) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match *v {
                    Value::U64(u) => i64::try_from(u).ok().and_then(|i| <$ty>::try_from(i).ok()),
                    Value::I64(i) => <$ty>::try_from(i).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::custom(format!(
                        "expected integer ({}), found {}",
                        stringify!($ty),
                        v.kind()
                    ))
                })
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident . $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| {
                    DeError::custom(format!("expected array, found {}", v.kind()))
                })?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected an array of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A.0 ; 1)
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}

// Mirrors serde's `rc` feature: `Arc` serializes transparently as its
// contents (no sharing is preserved across a round-trip, exactly like
// the real crate).
#[cfg(feature = "rc")]
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(feature = "rc")]
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

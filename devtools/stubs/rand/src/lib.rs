//! Offline stand-in for `rand` 0.9 used only by
//! `devtools/offline-check.sh`. Provides the tiny slice of the API this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::random::<f64>()`, and
//! `Rng::random_range` over integer ranges — all deterministic.

use std::ops::Range;

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types with a standard (uniform) distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly sampleable over a half-open range.
pub trait UniformSample: Sized {
    /// Samples uniformly from `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_impl {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is acceptable for an offline test stub.
                range.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

uniform_impl!(u8, u16, u32, u64, usize);

/// Standard RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (SplitMix64 — not the real `StdRng`
    /// algorithm, but statistically adequate for tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble small consecutive seeds apart before streaming.
            let mut rng = StdRng { state: seed ^ 0x5851_f42d_4c95_7f2d };
            rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

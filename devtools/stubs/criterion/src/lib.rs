//! Offline stand-in for `criterion` used only by
//! `devtools/offline-check.sh`. Compiles the workspace benches; runs
//! each closure once instead of measuring.

use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    /// Registers a single benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_once(name, &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_once(&label, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_once(name: &str, f: &mut impl FnMut(&mut Bencher)) {
    let start = Instant::now();
    let mut bencher = Bencher {};
    f(&mut bencher);
    println!("bench {name}: one pass in {:?} (offline stub, unmeasured)", start.elapsed());
}

/// Passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {}

impl Bencher {
    /// Runs the routine once (no statistical sampling in the stub).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#!/bin/sh
# Static-analysis gate shared by ci.sh (networked CI) and
# offline-check.sh (network-restricted): the workspace must lint clean
# under --deny-warnings, the --json report must be byte-identical across
# two runs (CI diffs with cmp), and a deliberately-bad fixture must
# exit 2 so a silently-neutered lint binary cannot pass the gate.
#
# Usage: devtools/lint-gate.sh <path-to-ssdep-lint-binary>
set -eu

LINT=${1:?usage: lint-gate.sh <ssdep-lint binary>}
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

GATE_DIR=$(mktemp -d)
trap 'rm -rf "$GATE_DIR"' EXIT

"$LINT" --deny-warnings > /dev/null || {
    echo "lint-gate: the workspace has lint findings:" >&2
    "$LINT" >&2 || true
    exit 1
}

"$LINT" --json > "$GATE_DIR/lint1.json"
"$LINT" --json > "$GATE_DIR/lint2.json"
if ! cmp -s "$GATE_DIR/lint1.json" "$GATE_DIR/lint2.json"; then
    echo "lint-gate: --json output is not byte-stable across runs" >&2
    exit 1
fi

# Each known-bad fixture must exit 2 and report its own code — a
# silently-neutered rule cannot pass the gate.
for code in L002 L012 L013 L021 L022 L023; do
    lower=$(echo "$code" | tr 'A-Z' 'a-z')
    fixture="devtools/lint/tests/fixtures/bad_$lower.rs"
    set +e
    "$LINT" "$fixture" > "$GATE_DIR/bad.out" 2>&1
    BAD_STATUS=$?
    set -e
    if [ "$BAD_STATUS" -ne 2 ]; then
        echo "lint-gate: expected exit 2 on $fixture, got $BAD_STATUS" >&2
        cat "$GATE_DIR/bad.out" >&2
        exit 1
    fi
    grep -q "$code" "$GATE_DIR/bad.out" || {
        echo "lint-gate: $fixture did not report $code" >&2
        exit 1
    }
done

# The clean counterparts must stay silent: false-positive pressure on
# the concurrency lints fails the gate too.
for lower in l013 l021 l022 l023; do
    fixture="devtools/lint/tests/fixtures/clean_$lower.rs"
    "$LINT" --deny-warnings "$fixture" > /dev/null || {
        echo "lint-gate: false positives on $fixture:" >&2
        "$LINT" "$fixture" >&2 || true
        exit 1
    }
done

# The cross-file deadlock fixture workspace: the lock-order graph must
# find the cycle (exit 2, both sites named), and the consistent-order
# twin must pass.
set +e
"$LINT" --root devtools/lint/tests/fixtures/l020_cycle > "$GATE_DIR/cycle.out" 2>&1
CYCLE_STATUS=$?
set -e
if [ "$CYCLE_STATUS" -ne 2 ]; then
    echo "lint-gate: expected exit 2 on the l020_cycle workspace, got $CYCLE_STATUS" >&2
    cat "$GATE_DIR/cycle.out" >&2
    exit 1
fi
grep -q 'L020' "$GATE_DIR/cycle.out" || {
    echo "lint-gate: the l020_cycle workspace did not report L020" >&2
    exit 1
}
grep -q 'crates/serve/src/lib.rs' "$GATE_DIR/cycle.out" \
    && grep -q 'crates/opt/src/lib.rs' "$GATE_DIR/cycle.out" || {
    echo "lint-gate: the L020 finding must name both acquisition sites" >&2
    cat "$GATE_DIR/cycle.out" >&2
    exit 1
}
"$LINT" --deny-warnings --root devtools/lint/tests/fixtures/l020_clean > /dev/null || {
    echo "lint-gate: false positive on the consistent-order l020_clean workspace" >&2
    exit 1
}

# --explain must know every shipped code (smoke: one old, one new) and
# reject unknown ones.
"$LINT" --explain L002 > /dev/null
"$LINT" --explain L020 | grep -q 'lock-order' || {
    echo "lint-gate: --explain L020 did not print the catalog entry" >&2
    exit 1
}
set +e
"$LINT" --explain L999 > /dev/null 2>&1
EXPLAIN_STATUS=$?
set -e
if [ "$EXPLAIN_STATUS" -ne 2 ]; then
    echo "lint-gate: --explain on an unknown code must exit 2, got $EXPLAIN_STATUS" >&2
    exit 1
fi
echo "static analysis gate passed"

#!/bin/sh
# Static-analysis gate shared by ci.sh (networked CI) and
# offline-check.sh (network-restricted): the workspace must lint clean
# under --deny-warnings, the --json report must be byte-identical across
# two runs (CI diffs with cmp), and a deliberately-bad fixture must
# exit 2 so a silently-neutered lint binary cannot pass the gate.
#
# Usage: devtools/lint-gate.sh <path-to-ssdep-lint-binary>
set -eu

LINT=${1:?usage: lint-gate.sh <ssdep-lint binary>}
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

GATE_DIR=$(mktemp -d)
trap 'rm -rf "$GATE_DIR"' EXIT

"$LINT" --deny-warnings > /dev/null || {
    echo "lint-gate: the workspace has lint findings:" >&2
    "$LINT" >&2 || true
    exit 1
}

"$LINT" --json > "$GATE_DIR/lint1.json"
"$LINT" --json > "$GATE_DIR/lint2.json"
if ! cmp -s "$GATE_DIR/lint1.json" "$GATE_DIR/lint2.json"; then
    echo "lint-gate: --json output is not byte-stable across runs" >&2
    exit 1
fi

set +e
"$LINT" devtools/lint/tests/fixtures/bad_l002.rs > "$GATE_DIR/bad.out" 2>&1
BAD_STATUS=$?
set -e
if [ "$BAD_STATUS" -ne 2 ]; then
    echo "lint-gate: expected exit 2 on the known-bad fixture, got $BAD_STATUS" >&2
    cat "$GATE_DIR/bad.out" >&2
    exit 1
fi
grep -q 'L002' "$GATE_DIR/bad.out" || {
    echo "lint-gate: the known-bad fixture did not report L002" >&2
    exit 1
}

set +e
"$LINT" devtools/lint/tests/fixtures/bad_l012.rs > "$GATE_DIR/bad12.out" 2>&1
BAD12_STATUS=$?
set -e
if [ "$BAD12_STATUS" -ne 2 ]; then
    echo "lint-gate: expected exit 2 on the bounded-queue fixture, got $BAD12_STATUS" >&2
    cat "$GATE_DIR/bad12.out" >&2
    exit 1
fi
grep -q 'L012' "$GATE_DIR/bad12.out" || {
    echo "lint-gate: the bounded-queue fixture did not report L012" >&2
    exit 1
}
echo "static analysis gate passed"

//! Annualized risk profiles and sensitivity sweeps: availability
//! "nines", expected loss-hours per year, and how the outcome moves as
//! one design knob turns.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-opt --release --example risk_and_sweeps
//! ```

use ssdep_core::analysis::risk_profile;
use ssdep_opt::search::paper_scenarios;
use ssdep_opt::sweep;

fn main() -> Result<(), ssdep_core::Error> {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = paper_scenarios();

    println!("== Annualized risk profiles ==");
    for design in [
        ssdep_core::presets::baseline_design(),
        ssdep_core::presets::weekly_vault_daily_full_design(),
    ] {
        let profile = risk_profile(&design, &workload, &requirements, &scenarios)?;
        println!(
            "{:<24} availability {:.5} ({:.1} nines), E[downtime] {:.2} hr/yr, \
             E[loss] {:.0} hr/yr, E[cost] {}",
            design.name(),
            profile.availability,
            profile.nines(),
            profile.expected_annual_downtime.as_hours(),
            profile.expected_annual_loss.as_hours(),
            profile.expected_annual_cost,
        );
    }

    println!("\n== Sweep: vaulting interval (weeks) ==");
    let series =
        sweep::sweep_vault_interval(&[1.0, 2.0, 4.0, 8.0], &workload, &requirements, &scenarios);
    print_series(&series, "vault weeks");

    println!("== Sweep: WAN links under the batched mirror ==");
    let hw_only: Vec<_> = scenarios.iter().skip(1).cloned().collect();
    let series = sweep::sweep_mirror_links(&[1, 2, 4, 8, 16], &workload, &requirements, &hw_only);
    print_series(&series, "links");

    println!("== Sweep: full-backup interval (hours) ==");
    let series = sweep::sweep_backup_interval(
        &[24.0, 48.0, 96.0, 168.0],
        &workload,
        &requirements,
        &scenarios,
    );
    print_series(&series, "backup hours");
    Ok(())
}

fn print_series(series: &sweep::SweepSeries, axis: &str) {
    println!("{}", sweep::render(&series.points, axis));
    for broken in &series.broken {
        println!("!! {axis} = {}: {}", broken.value, broken.reason);
    }
}

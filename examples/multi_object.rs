//! Multi-object evaluation: several data objects protected by one
//! hierarchy, with dependency-aware restore scheduling (paper §3.1.1's
//! noted extension).
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-core --example multi_object
//! ```

use ssdep_core::multi::{evaluate_multi, MultiObjectWorkload, ObjectSpec};
use ssdep_core::prelude::*;
use ssdep_core::report::TextTable;

fn object(name: &str, gib: f64, update_kib: f64) -> Result<ObjectSpec, ssdep_core::Error> {
    Ok(ObjectSpec::new(
        Workload::builder(name)
            .data_capacity(Bytes::from_gib(gib))
            .avg_access_rate(Bandwidth::from_kib_per_sec(update_kib * 1.3))
            .avg_update_rate(Bandwidth::from_kib_per_sec(update_kib))
            .batch_rate(
                TimeDelta::from_hours(12.0),
                Bandwidth::from_kib_per_sec(update_kib * 0.4),
            )
            .build()?,
    ))
}

fn main() -> Result<(), ssdep_core::Error> {
    // A database: the redo log is small but carries the business; the
    // tablespace needs the log restored first; the archive is bulk.
    let multi = MultiObjectWorkload::new(vec![
        object("redo log", 40.0, 200.0)?
            .with_priority(1)
            .with_business_weight(0.6),
        object("tablespace", 600.0, 400.0)?
            .with_priority(10)
            .depends_on("redo log")
            .with_business_weight(0.3),
        object("archive", 700.0, 150.0)?
            .with_priority(50)
            .with_business_weight(0.1),
    ])?;

    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);

    let evaluation = evaluate_multi(&design, &multi, &requirements, &scenario)?;

    println!(
        "array failure: restore everything from `{}`, worst-case loss {}\n",
        evaluation.loss.source_level_name().unwrap_or("?"),
        evaluation.loss.worst_loss
    );

    let mut table = TextTable::new(["#", "Object", "Restore bytes", "Ready at", "Outage penalty"]);
    for outcome in &evaluation.objects {
        table.row([
            format!("{}", outcome.restore_position + 1),
            outcome.name.clone(),
            outcome.restore_bytes.to_string(),
            outcome.ready_at.to_string(),
            outcome.unavailability_penalty.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "last object usable after {}; total outage penalty {} + loss penalty {}",
        evaluation.total_recovery_time, evaluation.unavailability_penalty, evaluation.loss_penalty
    );
    println!(
        "\nthe redo log (60% of the business value, 3% of the bytes) is back in {},\n\
         which is why restore ordering is worth modeling.",
        evaluation.objects[0].ready_at
    );
    Ok(())
}

//! Degraded-mode exposure analysis (the paper's §5 future work): what
//! does each protection level's outage cost you if a failure strikes
//! while it is down?
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-core --example degraded_mode
//! ```

use ssdep_core::analysis::{degraded_exposure, DegradedOutcome};
use ssdep_core::prelude::*;
use ssdep_core::report::TextTable;

fn main() -> Result<(), ssdep_core::Error> {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();

    let scenarios = vec![
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ];

    let report = degraded_exposure(&design, &workload, &requirements, &scenarios)?;

    let mut table = TextTable::new([
        "Degraded level",
        "Object failure",
        "Array failure",
        "Site disaster",
    ]);
    for row in &report.rows {
        let mut cells = vec![row.level_name.clone()];
        for outcome in &row.outcomes {
            cells.push(match outcome {
                DegradedOutcome::Recoverable { extra_loss, .. } if extra_loss.is_zero() => {
                    "no change".to_string()
                }
                DegradedOutcome::Recoverable {
                    extra_loss,
                    evaluation,
                    ..
                } => format!(
                    "+{:.0} hr loss (via {})",
                    extra_loss.as_hours(),
                    evaluation.recovery.source_level_name
                ),
                DegradedOutcome::Unrecoverable => "UNRECOVERABLE".to_string(),
            });
        }
        table.row(cells);
    }

    println!(
        "== Exposure added by each level's outage ==\n{}",
        table.render()
    );
    if let Some(critical) = report.most_critical_level() {
        println!(
            "most critical technique: {} — lose it and a disaster somewhere in the \
             scenario set becomes unrecoverable or far lossier",
            critical.level_name
        );
    }
    Ok(())
}

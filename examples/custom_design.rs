//! Building a storage design from scratch with the public API: a
//! database server protected by hourly snapshots, nightly disk-to-disk
//! backup, and synchronous remote mirroring — then checking it against
//! an aggressive RTO/RPO.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-core --example custom_design
//! ```

use ssdep_core::device::{CostModel, DeviceKind, DeviceSpec, SpareSpec};
use ssdep_core::failure::Location;
use ssdep_core::hierarchy::{Level, RecoverySite};
use ssdep_core::prelude::*;
use ssdep_core::protection::{Backup, PrimaryCopy, RemoteMirror, VirtualSnapshot};
use ssdep_core::report;

fn main() -> Result<(), ssdep_core::Error> {
    // A write-heavy OLTP workload: 500 GiB, high overwrite locality.
    let workload = Workload::builder("oltp")
        .data_capacity(Bytes::from_gib(500.0))
        .avg_access_rate(Bandwidth::from_mib_per_sec(40.0))
        .avg_update_rate(Bandwidth::from_mib_per_sec(15.0))
        .burst_multiplier(4.0)
        .batch_rate(
            TimeDelta::from_minutes(1.0),
            Bandwidth::from_mib_per_sec(9.0),
        )
        .batch_rate(TimeDelta::from_hours(1.0), Bandwidth::from_mib_per_sec(3.0))
        .batch_rate(
            TimeDelta::from_hours(24.0),
            Bandwidth::from_mib_per_sec(0.4),
        )
        .build()?;

    let hq = Location::new("eu-west", "hq", "dc-1");
    let dr = Location::new("eu-east", "dr", "dc-1");

    let mut builder = StorageDesign::builder("oltp tiered protection");
    let primary = builder.add_device(
        DeviceSpec::builder("primary array", DeviceKind::disk_array(1.25))
            .location(hq.clone())
            .capacity_slots(96, Bytes::from_gib(300.0))
            .bandwidth_slots(96, Bandwidth::from_mib_per_sec(40.0))
            .enclosure_bandwidth(Bandwidth::from_mib_per_sec(1200.0))
            .cost(
                CostModel::builder()
                    .fixed(Money::from_dollars(60_000.0))
                    .per_gib(Money::from_dollars(9.0))
                    .build(),
            )
            .spare(SpareSpec::dedicated(TimeDelta::from_minutes(2.0), 1.0))
            .build()?,
    )?;
    let nearline = builder.add_device(
        DeviceSpec::builder("nearline array", DeviceKind::disk_array(1.25))
            .location(hq.clone())
            .capacity_slots(48, Bytes::from_gib(750.0))
            .bandwidth_slots(48, Bandwidth::from_mib_per_sec(25.0))
            .enclosure_bandwidth(Bandwidth::from_mib_per_sec(600.0))
            .cost(
                CostModel::builder()
                    .fixed(Money::from_dollars(25_000.0))
                    .per_gib(Money::from_dollars(2.5))
                    .build(),
            )
            .build()?,
    )?;
    let mirror_target = builder.add_device(
        DeviceSpec::builder("DR array", DeviceKind::disk_array(1.25))
            .location(dr.clone())
            .capacity_slots(96, Bytes::from_gib(300.0))
            .bandwidth_slots(96, Bandwidth::from_mib_per_sec(40.0))
            .enclosure_bandwidth(Bandwidth::from_mib_per_sec(1200.0))
            .cost(
                CostModel::builder()
                    .fixed(Money::from_dollars(60_000.0))
                    .per_gib(Money::from_dollars(9.0))
                    .build(),
            )
            .build()?,
    )?;
    let wan = builder.add_device(
        DeviceSpec::builder("metro DWDM x4", DeviceKind::NetworkLink)
            .location(dr.clone())
            .bandwidth_slots(4, Bandwidth::from_megabits_per_sec(622.0))
            .cost(
                CostModel::builder()
                    .per_mib_per_sec(Money::from_dollars(4_000.0))
                    .build(),
            )
            .build()?,
    )?;

    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        primary,
    ));
    builder.add_level(Level::new(
        "hourly snapshots",
        Technique::VirtualSnapshot(VirtualSnapshot::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(1.0))
                .propagation_window(TimeDelta::ZERO)
                .retention_count(24)
                .build()?,
        )),
        primary,
    ));
    builder.add_level(Level::new(
        "nightly disk backup",
        Technique::Backup(Backup::full_only(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(24.0))
                .propagation_window(TimeDelta::from_hours(4.0))
                .hold_window(TimeDelta::from_hours(0.5))
                .retention_count(14)
                .build()?,
        )?),
        nearline,
    ));
    builder.add_level(
        Level::new(
            "sync mirror",
            Technique::RemoteMirror(RemoteMirror::synchronous()),
            mirror_target,
        )
        .with_transports([wan]),
    );
    builder.recovery_site(RecoverySite {
        location: dr,
        provisioning_time: TimeDelta::from_hours(2.0),
        cost_factor: 0.3,
    });
    let design = builder.build()?;

    for warning in design.convention_warnings() {
        println!("warning: {warning}");
    }

    let requirements = BusinessRequirements::builder()
        .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(120_000.0))
        .loss_penalty_rate(MoneyRate::from_dollars_per_hour(200_000.0))
        .recovery_time_objective(TimeDelta::from_hours(1.0))
        .recovery_point_objective(TimeDelta::from_minutes(5.0))
        .build()?;

    let mut evaluations = Vec::new();
    for scenario in [
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_gib(2.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(3.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ] {
        let evaluation = evaluate(&design, &workload, &requirements, &scenario)?;
        println!(
            "{} failure: restore from `{}`, RT {}, DL {}, objectives {}",
            scenario.scope.name(),
            evaluation.recovery.source_level_name,
            evaluation.recovery.total_time,
            evaluation.loss.worst_loss,
            if evaluation.meets_objectives(&requirements) {
                "MET"
            } else {
                "MISSED"
            },
        );
        evaluations.push(evaluation);
    }

    println!(
        "\n== Utilization ==\n{}",
        report::render_utilization(&evaluations[0])
    );
    println!(
        "== Site-failure timeline ==\n{}",
        report::render_recovery_timeline(&evaluations[2])
    );
    Ok(())
}

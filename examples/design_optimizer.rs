//! Automated design exploration (the paper's §1/§5 optimization-loop
//! use case): rank hundreds of candidate designs by expected annual
//! cost, compare exhaustive search against hill climbing, and print the
//! outlay-versus-risk Pareto frontier.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-opt --release --example design_optimizer
//! ```

use ssdep_core::report::TextTable;
use ssdep_opt::pareto;
use ssdep_opt::search::{exhaustive, hill_climb, paper_scenarios};
use ssdep_opt::space::DesignSpace;

fn main() -> Result<(), ssdep_core::Error> {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios = paper_scenarios();
    let space = DesignSpace::broad();
    println!("searching {} coherent candidates...", space.len());

    let result = exhaustive(&space, &workload, &requirements, &scenarios)?;
    println!(
        "{} feasible, {} infeasible, {} evaluations\n",
        result.ranked.len(),
        result.infeasible.len(),
        result.evaluations
    );

    let mut table = TextTable::new([
        "Rank",
        "Design",
        "Outlays",
        "E[penalties]",
        "E[total]",
        "Worst RT",
        "Worst DL",
    ]);
    for (rank, outcome) in result.ranked.iter().take(10).enumerate() {
        table.row([
            format!("{}", rank + 1),
            outcome.label.clone(),
            outcome.outlays.to_string(),
            outcome.expected_penalties.to_string(),
            outcome.expected_total.to_string(),
            format!("{:.1} hr", outcome.worst_recovery_time.as_hours()),
            format!("{:.1} hr", outcome.worst_data_loss.as_hours()),
        ]);
    }
    println!("== Top 10 by expected annual cost ==\n{}", table.render());

    let climbed = hill_climb(&space, &workload, &requirements, &scenarios)?;
    if let (Some(best), Some(local)) = (result.best(), climbed.best()) {
        println!(
            "hill climb: {} evaluations (vs {}) -> {} at {} (global best: {} at {})\n",
            climbed.evaluations,
            result.evaluations,
            local.label,
            local.expected_total,
            best.label,
            best.expected_total
        );
    }

    let mut frontier = TextTable::new(["Design", "Outlays", "E[penalties]"]);
    for outcome in pareto::cost_risk_front(&result.ranked) {
        frontier.row([
            outcome.label.clone(),
            outcome.outlays.to_string(),
            outcome.expected_penalties.to_string(),
        ]);
    }
    println!(
        "== Outlay vs expected-penalty Pareto frontier ==\n{}",
        frontier.render()
    );
    Ok(())
}

//! Validating the analytic worst-case formulas against the
//! discrete-event simulator (the paper's stated future work, done with
//! simulation instead of a production testbed).
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-sim --release --example simulation_validation
//! ```

use ssdep_core::prelude::*;
use ssdep_core::report::TextTable;
use ssdep_sim::validate::{sample_grid, validate_scenario};
use ssdep_sim::{SimConfig, Simulation};

fn main() -> Result<(), ssdep_core::Error> {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let demands = design.demands(&workload)?;

    let horizon = TimeDelta::from_weeks(40.0);
    println!("simulating the baseline RP pipeline for {horizon}...");
    let report = Simulation::new(&design, &workload, SimConfig::new(horizon))?.run();
    for (index, level) in design.levels().iter().enumerate().skip(1) {
        println!(
            "  level {index} ({}): {} RPs completed, max {} retained",
            level.name(),
            report.completed_count(index),
            report.max_retained(index),
        );
    }

    let scenarios = [
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ];

    let grid = sample_grid(TimeDelta::from_weeks(10.0), horizon, 128);
    let mut table = TextTable::new([
        "Scenario",
        "Analytic DL",
        "Observed max DL",
        "Analytic RT",
        "Observed max RT",
        "Bounds hold",
    ]);
    for scenario in &scenarios {
        let outcome = validate_scenario(&design, &workload, &demands, &report, scenario, &grid)?;
        table.row([
            scenario.scope.name().to_string(),
            format!("{:.0} hr", outcome.analytic_loss.as_hours()),
            format!("{:.0} hr", outcome.observed_max_loss.as_hours()),
            format!("{:.2} hr", outcome.analytic_recovery.as_hours()),
            format!("{:.2} hr", outcome.observed_max_recovery.as_hours()),
            if outcome.bounds_hold() {
                "yes"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    println!("\n{}", table.render());
    println!("observed maxima must stay at or below the analytic worst cases,");
    println!("and approach them when the sample grid catches the bad instants.");

    // The staleness sawtooth at the backup level (Figure 3, executed):
    // sampled every 12 hours across two cycles, rendered as a sparkline.
    let from = TimeDelta::from_weeks(20.0).as_secs();
    let to = TimeDelta::from_weeks(22.0).as_secs();
    let series = report.staleness_series(2, from, to, 12.0 * 3600.0);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let max = series.iter().filter_map(|(_, s)| *s).fold(1.0f64, f64::max);
    let sparkline: String = series
        .iter()
        .map(|(_, s)| match s {
            Some(v) => glyphs[((v / max) * (glyphs.len() - 1) as f64).round() as usize],
            None => '?',
        })
        .collect();
    println!(
        "\nbackup-level staleness over weeks 20-22 (12-hour samples, peak {:.0} hr):\n[{sparkline}]",
        max / 3600.0
    );
    println!("the sawtooth resets each time a weekly backup completes.");
    Ok(())
}

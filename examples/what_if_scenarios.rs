//! The paper's §4.2 what-if exploration (Table 7): seven designs
//! compared under array and site failures.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-core --example what_if_scenarios
//! ```

use ssdep_core::prelude::*;
use ssdep_core::report::TextTable;

fn main() -> Result<(), ssdep_core::Error> {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();

    let mut table = TextTable::new([
        "Storage system design",
        "Outlays",
        "Array RT",
        "Array DL",
        "Array total",
        "Site RT",
        "Site DL",
        "Site total",
    ]);

    for design in ssdep_core::presets::what_if_designs() {
        let array = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        )?;
        let site = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        )?;
        table.row([
            design.name().to_string(),
            array.cost.total_outlays.to_string(),
            format!("{:.1} hr", array.recovery.total_time.as_hours()),
            format!("{:.2} hr", array.loss.worst_loss.as_hours()),
            array.cost.total_cost.to_string(),
            format!("{:.1} hr", site.recovery.total_time.as_hours()),
            format!("{:.2} hr", site.loss.worst_loss.as_hours()),
            site.cost.total_cost.to_string(),
        ]);
    }

    println!("== Table 7: what-if scenarios ==\n{}", table.render());
    println!("Highlights the paper calls out:");
    println!(" * weekly vaulting slashes site-disaster data loss (1429 -> ~253 hr);");
    println!(" * daily fulls cut array-failure loss to ~37 hr;");
    println!(" * batch mirroring reduces loss to minutes, trading transfer-bound recovery;");
    println!(" * the single-link mirror has the lowest total cost despite slow recovery.");
    Ok(())
}

//! Driving the framework from a trace file: export a synthetic trace as
//! CSV (standing in for a production write log), import it back, measure
//! a workload, and produce the full dependability dossier.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-workload --release --example trace_import
//! ```

use ssdep_core::report;
use ssdep_core::units::{Bandwidth, TimeDelta};
use ssdep_workload::{estimate, io, TraceGenerator};

fn main() -> Result<(), ssdep_core::Error> {
    // 1. A "production write log": here synthesized, in practice
    //    converted from blktrace or an array audit log.
    let trace = TraceGenerator::builder()
        .duration(TimeDelta::from_hours(24.0))
        .extent_count(1_392_640) // 1360 GiB at 1 MiB extents
        .updates_per_sec(0.8)
        .burst_multiplier(8.0)
        .locality(0.6, 150)
        .diurnal_amplitude(0.5)
        .seed(2026)
        .build()?
        .generate();

    let path = std::env::temp_dir().join("ssdep-example-trace.csv");
    let mut file = std::fs::File::create(&path)
        .map_err(|e| ssdep_core::Error::invalid("example.trace", e.to_string()))?;
    io::write_csv(&trace, &mut file)?;
    println!(
        "wrote {} update records ({}) to {}",
        trace.records().len(),
        trace.total_update_bytes(),
        path.display()
    );

    // 2. Import and measure.
    let file = std::fs::File::open(&path)
        .map_err(|e| ssdep_core::Error::invalid("example.trace", e.to_string()))?;
    let imported = io::read_csv(std::io::BufReader::new(file))?;
    let workload = estimate::workload_from_trace(
        "imported write log",
        &imported,
        Bandwidth::from_kib_per_sec(1100.0),
        &[
            TimeDelta::from_minutes(1.0),
            TimeDelta::from_hours(1.0),
            TimeDelta::from_hours(12.0),
        ],
        TimeDelta::from_secs(30.0),
    )?;
    println!(
        "measured: {} of data, {:.0} KiB/s updates, burst {:.1}x, \
         batchUpdR(12h) {:.0} KiB/s\n",
        workload.data_capacity(),
        workload.avg_update_rate().as_kib_per_sec(),
        workload.burst_multiplier(),
        workload
            .batch_update_rate(TimeDelta::from_hours(12.0))
            .as_kib_per_sec(),
    );

    // 3. The measured workload drives the full dossier.
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    println!(
        "{}",
        report::render_full_report(&design, &workload, &requirements)?
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}

//! Reproducing the paper's Table 2 pipeline: generate a synthetic
//! cello-like trace, *measure* its workload statistics, and compare them
//! to the published values — then feed the measured workload into the
//! dependability framework.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-workload --release --example workload_calibration
//! ```

use ssdep_core::prelude::*;
use ssdep_core::report::TextTable;
use ssdep_workload::cello;

fn main() -> Result<(), ssdep_core::Error> {
    let fit = cello::cello_fit();
    println!(
        "locality fit: {:.0}% of updates on a {}-extent hot set (rms error {:.1}%)\n",
        fit.hot_fraction * 100.0,
        fit.hot_extents,
        fit.rms_relative_error * 100.0
    );

    let duration = TimeDelta::from_days(4.0);
    println!("generating a {duration} synthetic trace...");
    let measured = cello::measured_cello_workload(duration, 42)?;

    let paper = ssdep_core::presets::cello_workload();
    let mut table = TextTable::new(["Statistic", "Paper (Table 2)", "Measured (synthetic)"]);
    table.row([
        "data capacity".to_string(),
        paper.data_capacity().to_string(),
        measured.data_capacity().to_string(),
    ]);
    table.row([
        "avg update rate".to_string(),
        format!("{:.0} KiB/s", paper.avg_update_rate().as_kib_per_sec()),
        format!("{:.0} KiB/s", measured.avg_update_rate().as_kib_per_sec()),
    ]);
    table.row([
        "burst multiplier".to_string(),
        format!("{:.0}x", paper.burst_multiplier()),
        format!("{:.1}x", measured.burst_multiplier()),
    ]);
    for window in [
        TimeDelta::from_minutes(1.0),
        TimeDelta::from_hours(12.0),
        TimeDelta::from_hours(24.0),
    ] {
        table.row([
            format!("batchUpdR({window})"),
            format!(
                "{:.0} KiB/s",
                paper.batch_update_rate(window).as_kib_per_sec()
            ),
            format!(
                "{:.0} KiB/s",
                measured.batch_update_rate(window).as_kib_per_sec()
            ),
        ]);
    }
    println!("\n{}", table.render());

    // The measured workload drops straight into the framework.
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let eval = evaluate(&design, &measured, &requirements, &scenario)?;
    println!(
        "baseline under array failure with the *measured* workload: RT {}, DL {}",
        eval.recovery.total_time, eval.loss.worst_loss
    );
    Ok(())
}

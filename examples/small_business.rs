//! An end-to-end design session for a small business: state the
//! workload and requirements, search the candidate space, inspect the
//! trade-off frontier, and sign off with the full dossier — the
//! "automated optimization loop" workflow the paper's introduction
//! motivates.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-opt --release --example small_business
//! ```

use ssdep_core::analysis::WeightedScenario;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::prelude::*;
use ssdep_core::report;
use ssdep_opt::{pareto, search, space::DesignSpace};

fn main() -> Result<(), ssdep_core::Error> {
    // 1. The business: a 400 GiB ERP system; an hour of downtime costs
    //    $20k, an hour of lost updates $80k; contractual RPO of 48 h.
    let workload = Workload::builder("erp")
        .data_capacity(Bytes::from_gib(400.0))
        .avg_access_rate(Bandwidth::from_kib_per_sec(600.0))
        .avg_update_rate(Bandwidth::from_kib_per_sec(350.0))
        .burst_multiplier(6.0)
        .batch_rate(
            TimeDelta::from_minutes(1.0),
            Bandwidth::from_kib_per_sec(320.0),
        )
        .batch_rate(
            TimeDelta::from_hours(12.0),
            Bandwidth::from_kib_per_sec(150.0),
        )
        .batch_rate(
            TimeDelta::from_hours(24.0),
            Bandwidth::from_kib_per_sec(120.0),
        )
        .build()?;
    let requirements = BusinessRequirements::builder()
        .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(20_000.0))
        .loss_penalty_rate(MoneyRate::from_dollars_per_hour(80_000.0))
        .recovery_point_objective(TimeDelta::from_hours(48.0))
        .build()?;

    // 2. The threats this business plans for: weekly fat-fingered
    //    deletions, an array loss per decade, a site disaster per
    //    half-century.
    let scenarios = vec![
        WeightedScenario::new(
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(64.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(12.0),
                },
            ),
            52.0,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            0.1,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            0.02,
        ),
    ];

    // 3. Search the candidate space.
    let space = DesignSpace::broad();
    println!("searching {} candidate designs...", space.len());
    let result = search::exhaustive(&space, &workload, &requirements, &scenarios)?;
    println!(
        "{} feasible; best overall: {} at {}/yr expected",
        result.ranked.len(),
        result.best().map(|b| b.label.as_str()).unwrap_or("-"),
        result
            .best()
            .map(|b| b.expected_total.to_string())
            .unwrap_or_default(),
    );

    // 4. The decision view: cheapest design meeting the RPO, and the
    //    outlay-vs-risk frontier around it.
    let chosen = result
        .best_meeting_objectives()
        .or_else(|| result.best())
        .ok_or_else(|| {
            ssdep_core::Error::invalid("smallBusiness.results", "no design in the sweep evaluated")
        })?;
    println!(
        "chosen (cheapest meeting the 48 h RPO): {} — outlays {}, E[penalties] {}\n",
        chosen.label, chosen.outlays, chosen.expected_penalties
    );
    println!("outlay vs expected-penalty frontier:");
    for outcome in pareto::cost_risk_front(&result.ranked).iter().take(6) {
        println!(
            "  {:<40} {:>9}  {:>9}",
            outcome.label,
            outcome.outlays.to_string(),
            outcome.expected_penalties.to_string()
        );
    }

    // 5. Sign-off: the full dossier for the chosen design.
    let design = chosen.candidate.materialize()?;
    println!(
        "\n{}",
        report::render_full_report(&design, &workload, &requirements)?
    );
    Ok(())
}

//! Quickstart: evaluate the paper's baseline design under the three
//! case-study failure scenarios and print Table 5/6-style reports.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-core --example quickstart
//! ```

use ssdep_core::prelude::*;
use ssdep_core::report;

fn main() -> Result<(), ssdep_core::Error> {
    // 1. Describe the workload being protected (the paper's measured
    //    *cello* workgroup file server; build your own with
    //    `Workload::builder`).
    let workload = ssdep_core::presets::cello_workload();

    // 2. Pick a storage system design: split mirrors + weekly tape
    //    backup + four-weekly vaulting.
    let design = ssdep_core::presets::baseline_design();

    // 3. State the business requirements: $50k/hour penalties for both
    //    outage and data loss.
    let requirements = ssdep_core::presets::paper_requirements();

    // 4. Evaluate under the failure scenarios that worry you.
    let scenarios = [
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ];

    let mut evaluations = Vec::new();
    for scenario in &scenarios {
        evaluations.push(evaluate(&design, &workload, &requirements, scenario)?);
    }

    println!("design: {}\nworkload: {}\n", design.name(), workload.name());
    println!(
        "== Normal mode utilization ==\n{}",
        report::render_utilization(&evaluations[0])
    );
    println!(
        "== Dependability per failure scenario ==\n{}",
        report::render_dependability(&evaluations)
    );
    for evaluation in &evaluations {
        println!(
            "== Costs under {} failure ==\n{}",
            evaluation.scenario.scope.name(),
            report::render_costs(evaluation)
        );
    }
    Ok(())
}

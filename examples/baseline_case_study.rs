//! The paper's §4.1 baseline case study, end to end: utilization
//! (Table 5), dependability (Table 6), recovery timeline (Figure 4), and
//! cost breakdown (Figure 5) — with the paper's reported values printed
//! alongside for comparison.
//!
//! Run with:
//! ```sh
//! cargo run -p ssdep-core --example baseline_case_study
//! ```

use ssdep_core::prelude::*;
use ssdep_core::report;

fn main() -> Result<(), ssdep_core::Error> {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();

    let object = evaluate(
        &design,
        &workload,
        &requirements,
        &FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
    )?;
    let array = evaluate(
        &design,
        &workload,
        &requirements,
        &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
    )?;
    let site = evaluate(
        &design,
        &workload,
        &requirements,
        &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    )?;

    println!("== Table 5: normal mode utilization ==");
    println!("{}", report::render_utilization(&array));
    println!("paper: array 2.4% bw / 87.4% cap; tape 3.4% / 3.4%; vault 2.6% cap\n");

    println!("== Table 6: worst-case recovery time and recent data loss ==");
    println!(
        "{}",
        report::render_dependability(&[object.clone(), array.clone(), site.clone()])
    );
    println!("paper: object 0.004 s / 12 hr; array 2.4 hr / 217 hr; site 26.4 hr / 1429 hr\n");

    println!("== Figure 4: site-disaster recovery timeline ==");
    println!("{}", report::render_recovery_timeline(&site));

    println!("== Figure 5: overall system cost ==");
    for evaluation in [&object, &array, &site] {
        println!(
            "-- {} failure --\n{}",
            evaluation.scenario.scope.name(),
            report::render_costs(evaluation)
        );
    }
    println!("paper: outlays ~$0.97M; array total $11.94M; site total $71.94M");
    Ok(())
}

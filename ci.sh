#!/bin/sh
# CI entry point: build, test, lint.
#
# In network-restricted environments, run the same sequence through the
# offline harness instead: `./devtools/offline-check.sh build --release`
# etc. (see the header of that script).
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace

#!/bin/sh
# CI entry point: build, test, lint, and a crash-resume smoke test.
#
# In network-restricted environments, run the same sequence through the
# offline harness instead: `./devtools/offline-check.sh build --release`
# etc. (see the header of that script).
set -eu

cargo fmt --all -- --check
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets
cargo bench --no-run --workspace

# Static-analysis gate: workspace lints clean, --json is byte-stable,
# and a known-bad fixture still trips the lint (see devtools/lint-gate.sh).
devtools/lint-gate.sh target/release/ssdep-lint

# Perf smoke gate: a quick candidate enumeration (a few thousand
# designs, best-of-3 per arm) must keep the supervised hot path within
# generous budgets — supervised jobs=1 within 2x of the plain driver,
# and jobs=4 within 1.5x of jobs=1 (on a single-core host parallelism
# cannot win; it must at least not regress). Catches reintroduced
# per-candidate overheads (serde fingerprints, per-attempt thread
# spawns, O(shard) cache evictions) without a long benchmark run.
target/release/bench_eval --gate

# Best-effort ThreadSanitizer stage: crates/serve carries the daemon's
# cross-thread lock traffic, so its tests run under TSan when the
# nightly toolchain is available with rust-src (which -Zbuild-std needs
# to instrument std itself). An unavailable toolchain or a failed
# *build* skips with a notice — but a data race found by a
# successfully-built run fails CI.
TSAN_HOST=$(rustc -vV | sed -n 's/^host: //p')
if rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src (installed)$'; then
    TSAN_LOG=$(mktemp)
    if RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q -p ssdep-serve \
        -Zbuild-std --target "$TSAN_HOST" --target-dir target/tsan \
        --no-run > "$TSAN_LOG" 2>&1; then
        RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q -p ssdep-serve \
            -Zbuild-std --target "$TSAN_HOST" --target-dir target/tsan || {
            echo "ci.sh: ThreadSanitizer found a data race in crates/serve" >&2
            exit 1
        }
        echo "thread sanitizer stage passed"
    else
        echo "ci.sh: notice: ThreadSanitizer build unavailable here; skipping the stage" >&2
        tail -3 "$TSAN_LOG" >&2 || true
    fi
    rm -f "$TSAN_LOG"
else
    echo "ci.sh: notice: nightly rust-src not installed; skipping the ThreadSanitizer stage" >&2
fi

# Crash-resume smoke test: run the supervised search to completion, then
# run it again with a crash injected after three journal appends, resume
# from the surviving checkpoint, and require the ranked output (from the
# "Rank" table header on; the provenance lines legitimately differ) to be
# identical to the uninterrupted run.
SSDEP=target/release/ssdep
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Preflight smoke test: every example spec must check clean; the
# intentionally-broken one must exit 2 with byte-stable --json output,
# and its --fix output must re-check without errors.
for spec in examples/specs/*.json; do
    case "$spec" in
    *broken*) continue ;;
    esac
    "$SSDEP" check "$spec" > /dev/null || {
        echo "ci.sh: expected $spec to check clean" >&2
        exit 1
    }
done

BROKEN=examples/specs/broken.json
set +e
"$SSDEP" check "$BROKEN" > /dev/null 2>&1
BROKEN_STATUS=$?
set -e
if [ "$BROKEN_STATUS" -ne 2 ]; then
    echo "ci.sh: expected exit 2 from check on $BROKEN, got $BROKEN_STATUS" >&2
    exit 1
fi
"$SSDEP" check --json "$BROKEN" > "$SMOKE_DIR/check1.json" || true
"$SSDEP" check --json "$BROKEN" > "$SMOKE_DIR/check2.json" || true
if ! cmp -s "$SMOKE_DIR/check1.json" "$SMOKE_DIR/check2.json"; then
    echo "ci.sh: check --json output is not stable across runs" >&2
    exit 1
fi
grep -q '"D020"' "$SMOKE_DIR/check1.json" || {
    echo "ci.sh: check --json lost the D020 diagnostic" >&2
    exit 1
}
"$SSDEP" check --fix "$BROKEN" > "$SMOKE_DIR/fixed.json"
"$SSDEP" check "$SMOKE_DIR/fixed.json" > /dev/null || {
    echo "ci.sh: check --fix output did not re-check clean" >&2
    exit 1
}
echo "preflight smoke test passed"

"$SSDEP" search --checkpoint "$SMOKE_DIR/full.jsonl" > "$SMOKE_DIR/full.out"

if SSDEP_CRASH_AFTER=3 "$SSDEP" search --checkpoint "$SMOKE_DIR/crash.jsonl" \
    > /dev/null 2>&1; then
    echo "ci.sh: expected the crash-injected search to die" >&2
    exit 1
fi
"$SSDEP" search --resume "$SMOKE_DIR/crash.jsonl" > "$SMOKE_DIR/resumed.out"

sed -n '/^Rank/,$p' "$SMOKE_DIR/full.out" > "$SMOKE_DIR/full.rank"
sed -n '/^Rank/,$p' "$SMOKE_DIR/resumed.out" > "$SMOKE_DIR/resumed.rank"
if ! cmp -s "$SMOKE_DIR/full.rank" "$SMOKE_DIR/resumed.rank"; then
    echo "ci.sh: resumed search output diverged from the full run:" >&2
    diff "$SMOKE_DIR/full.rank" "$SMOKE_DIR/resumed.rank" >&2 || true
    exit 1
fi
grep -q "3 resumed" "$SMOKE_DIR/resumed.out" || {
    echo "ci.sh: resumed run did not replay the journaled prefix" >&2
    exit 1
}
echo "crash-resume smoke test passed"

# Storage-fault smoke test: kill + corrupt + inspect/recover/resume
# round-trip, ENOSPC-degraded run, and the bounded seeded torture
# harness (see devtools/chaos-smoke.sh).
devtools/chaos-smoke.sh "$SSDEP" target/release/ssdep-chaos

# Daemon smoke test: start `ssdep serve`, probe /healthz, byte-stable
# /evaluate, streamed /sweep, SIGTERM drain, then the seeded service
# fault torture harness (see devtools/serve-smoke.sh).
devtools/serve-smoke.sh "$SSDEP" target/release/ssdep-serve-chaos

# Parallel-determinism smoke test: a supervised sweep must emit
# byte-identical --json output at any --jobs count (results land in
# input-order slots regardless of worker completion order).
"$SSDEP" sweep vault --json --jobs 1 > "$SMOKE_DIR/sweep-serial.json"
"$SSDEP" sweep vault --json --jobs 4 > "$SMOKE_DIR/sweep-parallel.json"
if ! cmp -s "$SMOKE_DIR/sweep-serial.json" "$SMOKE_DIR/sweep-parallel.json"; then
    echo "ci.sh: sweep --json output differs between --jobs 1 and --jobs 4:" >&2
    diff "$SMOKE_DIR/sweep-serial.json" "$SMOKE_DIR/sweep-parallel.json" >&2 || true
    exit 1
fi
grep -q '"provenance"' "$SMOKE_DIR/sweep-serial.json" || {
    echo "ci.sh: sweep --json lost its provenance section" >&2
    exit 1
}
echo "parallel-determinism smoke test passed"

# Composite-scenario smoke test: the new preset specs must pass the
# strict gate, and a composite evaluation must produce byte-stable
# --json output across runs.
for spec in examples/specs/correlated_disaster.json \
    examples/specs/human_error_drill.json examples/specs/k_out_of_n.json; do
    "$SSDEP" check "$spec" --deny-warnings > /dev/null || {
        echo "ci.sh: expected $spec to pass check --deny-warnings" >&2
        exit 1
    }
done
"$SSDEP" evaluate examples/specs/correlated_disaster.json \
    --scenario correlated:site+array@0.5 --json > "$SMOKE_DIR/composite1.json"
"$SSDEP" evaluate examples/specs/correlated_disaster.json \
    --scenario correlated:site+array@0.5 --json > "$SMOKE_DIR/composite2.json"
if ! cmp -s "$SMOKE_DIR/composite1.json" "$SMOKE_DIR/composite2.json"; then
    echo "ci.sh: composite evaluate --json output is not stable across runs" >&2
    exit 1
fi
grep -q '"recovery_inflation"' "$SMOKE_DIR/composite1.json" || {
    echo "ci.sh: composite evaluate --json lost the inflation factor" >&2
    exit 1
}
"$SSDEP" evaluate examples/specs/human_error_drill.json > /dev/null || {
    echo "ci.sh: expected the human-error drill spec to evaluate" >&2
    exit 1
}
echo "composite-scenario smoke test passed"
